"""Adaptive sizing of the micro-sliced pool — Algorithm 1 of the paper.

A timer-driven controller alternates between *profile* phases (short
10 ms intervals during which it varies the number of micro-sliced cores
and records urgent-event counts) and *run* phases (1 s with the chosen
configuration):

* no urgent events while at 0 cores → stay at 0 for a whole epoch;
* PLE- or IRQ-dominant load → one micro-sliced core suffices
  (early termination);
* IPI-dominant load (TLB shootdowns involve many vCPUs) → sweep the
  core count up to ``NUM_LIMIT_UCORES``, then keep the configuration
  that produced the fewest IPI yields.
"""

from ..errors import FaultError
from ..sim.time import ms

#: Default Algorithm-1 parameters (paper §4.3/§5).
PROFILE_INTERVAL = ms(10)
EPOCH_INTERVAL = ms(1000)
NUM_LIMIT_UCORES = 3
#: Events per profile interval below which the system counts as idle.
URGENT_THRESHOLD = 1
#: How many times a refused cpupool resize is retried (with doubling
#: backoff) before the controller gives up until its next decision.
RESIZE_RETRIES = 3


class AdaptiveController:
    """Faithful port of Algorithm 1 (AdaptiveMicroSlicedCores)."""

    def __init__(
        self,
        profile_interval=PROFILE_INTERVAL,
        epoch_interval=EPOCH_INTERVAL,
        limit=NUM_LIMIT_UCORES,
        urgent_threshold=URGENT_THRESHOLD,
    ):
        self.profile_interval = profile_interval
        self.epoch_interval = epoch_interval
        self.limit = limit
        self.urgent_threshold = urgent_threshold
        self.hv = None
        self.profile_mode = False
        self.num_ucores = 0
        self.ur_events = {}
        self.decisions = []   # (time, num_ucores) history for tests/plots
        #: Degraded-mode accounting (fault injection).
        self.failed_resizes = 0
        self.abandoned_resizes = 0
        self.stale_clamps = 0

    def start(self, hv):
        self.hv = hv
        hv.stats.mark_window()
        hv.sim.schedule(self.profile_interval, self._tick)

    # ------------------------------------------------------------------
    def _apply(self, count, events=None):
        """Resize the micro pool; ``events`` are the window deltas that
        drove the decision (the Algorithm-1 audit trail in the trace)."""
        prev = self.num_ucores
        self.num_ucores = count
        try:
            self.hv.set_micro_cores(count)
        except FaultError:
            # Refused (fault injection): keep the decision and retry it
            # with bounded backoff; Algorithm 1 proceeds undisturbed.
            self.failed_resizes += 1
            self._schedule_resize_retry(count, attempt=1)
        self.decisions.append((self.hv.sim.now, count))
        tracer = getattr(self.hv, "tracer", None)
        emit = tracer.want("adaptive_resize") if tracer is not None else None
        if emit is not None:
            events = events or {}
            emit(
                cores=count,
                prev_cores=prev,
                ipi=events.get("ipi", 0),
                ple=events.get("ple", 0),
                irq=events.get("irq", 0),
            )

    def _schedule_resize_retry(self, count, attempt):
        """Retry a refused resize after ``profile_interval/4 * 2^(n-1)``."""
        delay = (self.profile_interval // 4) << (attempt - 1)
        self.hv.sim.schedule(max(1, delay), self._retry_resize, (count, attempt))

    def _retry_resize(self, arg):
        count, attempt = arg
        if self.num_ucores != count:
            return  # superseded by a newer decision; nothing to repair
        try:
            self.hv.set_micro_cores(count)
        except FaultError:
            self.failed_resizes += 1
            if attempt >= RESIZE_RETRIES:
                self.abandoned_resizes += 1
                faults = getattr(self.hv, "faults", None)
                if faults is not None:
                    faults.count("resize_abandoned")
                    faults.warn_degraded(
                        "poolmove_fail",
                        "cpupool resize still refused after %d retries; "
                        "keeping the current micro-core count until the "
                        "next Algorithm-1 decision" % RESIZE_RETRIES,
                    )
                return
            self._schedule_resize_retry(count, attempt + 1)

    def _urgent(self, events):
        return (
            events["ipi"] >= self.urgent_threshold
            or events["ple"] >= self.urgent_threshold
            or events["irq"] >= self.urgent_threshold
        )

    def _find_best_ucore_count(self):
        """The profiled core count with the fewest IPI yields (ties go
        to fewer cores, preserving normal-pool capacity)."""
        best_count, best_ipis = 1, None
        for count in range(1, self.limit + 1):
            events = self.ur_events.get(count)
            if events is None:
                continue
            if best_ipis is None or events["ipi"] < best_ipis:
                best_count, best_ipis = count, events["ipi"]
        return best_count

    def _tick(self, _arg=None):
        hv = self.hv
        stats = hv.stats
        faults = getattr(hv, "faults", None)
        if faults is not None and faults.profile_stale:
            # Profile windows are reporting stale counts (fault
            # injection): resizing on garbage thrashes the pools, so
            # clamp — keep the current configuration for one epoch and
            # re-profile once the input is trustworthy again.
            self.stale_clamps += 1
            faults.count("stale_profile_clamps")
            faults.trace("fault_recover", "stale_profile", None, action="clamped")
            faults.warn_degraded(
                "stale_profile",
                "Algorithm-1 profile windows are stale; clamping the "
                "micro-core count instead of resizing on garbage",
            )
            self.profile_mode = False
            stats.mark_window()
            hv.sim.schedule(self.epoch_interval, self._tick)
            return
        if not self.profile_mode:
            # Initialise a profiling phase: observe one interval with no
            # micro-sliced cores.
            self.profile_mode = True
            self.ur_events = {}
            self._apply(0)
            interval = self.profile_interval
            stats.mark_window()
            hv.sim.schedule(interval, self._tick)
            return

        current = stats.window_events()
        self.ur_events[self.num_ucores] = current
        interval = self.profile_interval

        if self.num_ucores == 0:
            if not self._urgent(current):
                # Nothing urgent happened: skip this epoch entirely.
                self.profile_mode = False
                interval = self.epoch_interval
            else:
                self._apply(1, events=current)
                if current["ipi"] > current["ple"] or current["ipi"] > current["irq"]:
                    # IPI dominant: keep profiling core counts.
                    pass
                else:
                    # PLE/IRQ dominant: one core covers it (early
                    # termination).
                    self.profile_mode = False
                    interval = self.epoch_interval
        elif self.num_ucores < self.limit:
            self._apply(self.num_ucores + 1, events=current)
        else:
            self._apply(self._find_best_ucore_count(), events=current)
            self.profile_mode = False
            interval = self.epoch_interval

        stats.mark_window()
        hv.sim.schedule(interval, self._tick)
