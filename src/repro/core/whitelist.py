"""The critical-OS-service whitelist (Table 3 of the paper).

Maps guest kernel symbols to the class of critical service they belong
to. The detector resolves a preempted vCPU's instruction pointer to a
symbol and consults this table; a hit means the vCPU was suspended inside
a critical OS service and is a candidate for the micro-sliced pool.
"""


class CriticalClass:
    """Categories of critical services; the category decides the
    acceleration action (see §4.2 of the paper)."""

    IRQ = "irq"
    IPI = "ipi"
    TLB = "tlb"
    MM = "mm"
    SCHED = "sched"
    SPINLOCK = "spinlock"
    RWSEM = "rwsem"

    ALL = (IRQ, IPI, TLB, MM, SCHED, SPINLOCK, RWSEM)


#: Table 3, transcribed: module -> file -> operation -> class.
CRITICAL_SYMBOLS = {
    # irq module
    "irq_enter": CriticalClass.IRQ,
    "irq_exit": CriticalClass.IRQ,
    "handle_percpu_irq": CriticalClass.IRQ,
    # kernel/smp.c
    "smp_call_function_single": CriticalClass.IPI,
    "smp_call_function_many": CriticalClass.IPI,
    # mm/tlb.c
    "do_flush_tlb_all": CriticalClass.TLB,
    "flush_tlb_all": CriticalClass.TLB,
    "native_flush_tlb_others": CriticalClass.TLB,
    "flush_tlb_func": CriticalClass.TLB,
    "flush_tlb_current_task": CriticalClass.TLB,
    "flush_tlb_mm_range": CriticalClass.TLB,
    "flush_tlb_page": CriticalClass.TLB,
    "leave_mm": CriticalClass.TLB,
    # mm/page_alloc.c, mm/swap.c
    "get_page_from_freelist": CriticalClass.MM,
    "free_one_page": CriticalClass.MM,
    "release_pages": CriticalClass.MM,
    # kernel/sched/core.c
    "scheduler_ipi": CriticalClass.SCHED,
    "resched_curr": CriticalClass.SCHED,
    "kick_process": CriticalClass.SCHED,
    "sched_ttwu_pending": CriticalClass.SCHED,
    "ttwu_do_activate": CriticalClass.SCHED,
    "ttwu_do_wakeup": CriticalClass.SCHED,
    # spinlock release paths (a vCPU whose IP sits here is inside, or
    # leaving, a critical section)
    "__raw_spin_unlock": CriticalClass.SPINLOCK,
    "__raw_spin_unlock_irq": CriticalClass.SPINLOCK,
    "_raw_spin_unlock_irqrestore": CriticalClass.SPINLOCK,
    "_raw_spin_unlock_bh": CriticalClass.SPINLOCK,
    # rwsem wake paths
    "__rwsem_do_wake": CriticalClass.RWSEM,
    "rwsem_wake": CriticalClass.RWSEM,
}

#: Classes whose acceleration must also pull in preempted *siblings*
#: (one-to-many IPIs: every recipient has to run to acknowledge).
SIBLING_CLASSES = frozenset({CriticalClass.TLB, CriticalClass.IPI})


def classify(symbol_name):
    """Critical class for a symbol name, or ``None`` if not critical."""
    if symbol_name is None:
        return None
    return CRITICAL_SYMBOLS.get(symbol_name)


def is_critical(symbol_name):
    return symbol_name in CRITICAL_SYMBOLS
