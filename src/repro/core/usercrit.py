"""User-level critical sections — the paper's §4.4 extension.

The paper's mechanism only accelerates *kernel* critical services,
because only the kernel symbol table is available to the hypervisor.
§4.4 sketches the extension we implement here:

    "A new user-level interface can be added to describe the user-level
    critical sections, and make them accessible from the hypervisor.
    The hypervisor will be able to register the critical regions in its
    separate per-process symbol table, and accelerate those regions on
    the micro-sliced CPU pool."

Pieces:

* :class:`UserCriticalRegistry` — a per-domain table of user-space
  address ranges declared critical (the "per-process symbol table").
  Applications register regions by name; each gets a synthetic address
  range in user space, exactly parallel to the kernel ``System.map``.
* :class:`UserAwareDetector` — extends the IP detector: when the kernel
  table misses (user-space IP), consult the domain's user registry; a
  hit classifies as :data:`USER_CRITICAL`.
* Guest side: task programs mark critical bodies by computing at
  ``symbol="user:<region>"``; ``GuestKernel.addr_for`` materialises
  those into the registered ranges.

Workloads using plain user-space locks (futex-style: user spinlock,
sleep on contention) get the same LHP pathology as kernel locks; with
the extension the preempted holder is detected and accelerated.
"""

from ..errors import SymbolTableError
from .detection import CriticalServiceDetector, Detection

#: Criticality class for registered user regions (not part of Table 3).
USER_CRITICAL = "user_critical"

#: Registered regions live in their own user-space window, far from the
#: synthetic program text at USER_IP.
USER_CRIT_BASE = 0x00007F0000000000
USER_CRIT_REGION_SIZE = 0x1000


class UserCriticalRegistry:
    """Per-domain table of declared user-level critical regions."""

    def __init__(self):
        self._regions = {}       # name -> (start, end)
        self._ordered = []       # (start, end, name), sorted

    def register(self, name, size=USER_CRIT_REGION_SIZE):
        """Declare a region; returns its synthetic start address.
        Idempotent per name."""
        if name in self._regions:
            return self._regions[name][0]
        start = USER_CRIT_BASE + len(self._ordered) * USER_CRIT_REGION_SIZE
        end = start + min(size, USER_CRIT_REGION_SIZE)
        self._regions[name] = (start, end)
        self._ordered.append((start, end, name))
        return start

    def addr_of(self, name):
        try:
            return self._regions[name][0]
        except KeyError:
            raise SymbolTableError("unregistered user region %r" % name) from None

    def resolve(self, address):
        """Region name containing ``address``, or ``None``."""
        if address is None or not (
            USER_CRIT_BASE
            <= address
            < USER_CRIT_BASE + len(self._ordered) * USER_CRIT_REGION_SIZE
        ):
            return None
        index = (address - USER_CRIT_BASE) // USER_CRIT_REGION_SIZE
        start, end, name = self._ordered[index]
        return name if start <= address < end else None

    def __len__(self):
        return len(self._regions)

    def __contains__(self, name):
        return name in self._regions


class UserAwareDetector(CriticalServiceDetector):
    """IP detector that also consults per-domain user registries."""

    def inspect(self, vcpu):
        detection = super().inspect(vcpu)
        if detection.critical or detection.symbol is not None:
            return detection
        registry = getattr(vcpu.domain, "user_critical", None)
        if registry is None:
            return detection
        region = registry.resolve(vcpu.ip)
        if region is None:
            return detection
        self.hits += 1
        return Detection(vcpu, "user:%s" % region, USER_CRITICAL)


def enable_user_critical(domain):
    """Attach a user-critical registry to a domain (the guest exposing
    its per-process table to the hypervisor). Returns the registry."""
    registry = getattr(domain, "user_critical", None)
    if registry is None:
        registry = UserCriticalRegistry()
        domain.user_critical = registry
        domain.kernel.user_critical = registry
    return registry
