"""The paper's contribution: detection, micro-slicing, adaptive sizing."""

from .comparators import VTrsPolicy, VTurboPolicy
from .adaptive import EPOCH_INTERVAL, NUM_LIMIT_UCORES, PROFILE_INTERVAL, AdaptiveController
from .detection import CriticalServiceDetector, Detection
from .microslice import MicroSliceEngine
from .policy import BASELINE, DYNAMIC, STATIC, PolicySpec
from .usercrit import USER_CRITICAL, UserAwareDetector, UserCriticalRegistry, enable_user_critical
from .whitelist import CRITICAL_SYMBOLS, SIBLING_CLASSES, CriticalClass, classify, is_critical

__all__ = [
    "AdaptiveController",
    "VTrsPolicy",
    "VTurboPolicy",
    "BASELINE",
    "CRITICAL_SYMBOLS",
    "CriticalClass",
    "CriticalServiceDetector",
    "DYNAMIC",
    "Detection",
    "EPOCH_INTERVAL",
    "MicroSliceEngine",
    "NUM_LIMIT_UCORES",
    "PROFILE_INTERVAL",
    "PolicySpec",
    "SIBLING_CLASSES",
    "USER_CRITICAL",
    "UserAwareDetector",
    "UserCriticalRegistry",
    "STATIC",
    "classify",
    "enable_user_critical",
    "is_critical",
]
