"""Critical-OS-service detection (§4.1 of the paper).

The hypervisor is guest-agnostic: all it can see of a preempted vCPU is
its register state. The detector reads the vCPU's instruction pointer,
resolves it against that guest's kernel symbol table (``System.map``,
provided out of band), and checks the symbol against the Table-3
whitelist. A hit identifies a vCPU suspended inside a critical OS
service — a lock holder mid-critical-section, a TLB-shootdown
participant, an interrupt path — without any guest modification.

Degraded mode: the symbol table is an out-of-band input, so it can go
away (guest kexec, stale ``System.map``, management-plane hiccup —
modelled by the ``symbol_table`` fault kind). While a guest's
``kernel.symbol_fault`` is set the detector does not hard-fail:

* ``"miss"`` — resolution is unavailable. The detector falls back to
  the address ranges it *learned* from earlier healthy critical hits
  (IP-range matching needs no names), counting every consulted miss in
  ``symbol_misses`` and every rescue in ``fallback_hits``.
* ``"corrupt"`` — resolution succeeds but returns the neighbouring
  symbol, so classification misfires both ways (missed criticals and
  false positives). This models a skewed/stale map.
"""

from ..guest.symbols import KERNEL_TEXT_BASE
from .whitelist import SIBLING_CLASSES, classify


class Detection:
    """The result of classifying one vCPU."""

    __slots__ = ("vcpu", "symbol", "critical_class")

    def __init__(self, vcpu, symbol, critical_class):
        self.vcpu = vcpu
        self.symbol = symbol
        self.critical_class = critical_class

    @property
    def critical(self):
        return self.critical_class is not None

    def __repr__(self):
        return "<Detection %s %s -> %s>" % (
            self.vcpu.name,
            self.symbol,
            self.critical_class,
        )


class CriticalServiceDetector:
    """IP -> symbol -> criticality, per the whitelist."""

    def __init__(self, whitelist_classify=classify):
        self._classify = whitelist_classify
        self.inspections = 0
        self.hits = 0
        #: Degraded-mode accounting (symbol_table faults only).
        self.symbol_misses = 0
        self.fallback_hits = 0
        self._learned = {}        # kernel -> {(lo, hi): (name, class)}
        self._corrupt_maps = {}   # kernel -> {name: neighbouring name}

    def inspect(self, vcpu):
        """Classify one vCPU from its current instruction pointer."""
        self.inspections += 1
        kernel = vcpu.domain.kernel
        fault = getattr(kernel, "symbol_fault", None)
        if fault is None:
            found = kernel.symbols.lookup(vcpu.ip)
            symbol = found.name if found is not None else None
            critical_class = self._classify(symbol)
            if critical_class is not None:
                self.hits += 1
                self._learn(kernel, found, critical_class)
            return Detection(vcpu, symbol, critical_class)
        if fault == "miss":
            return self._inspect_without_table(vcpu, kernel)
        return self._inspect_corrupted(vcpu, kernel)

    def _inspect_without_table(self, vcpu, kernel):
        """Resolution unavailable: match the IP against address ranges
        learned from earlier healthy hits."""
        ip = vcpu.ip
        symbol = critical_class = None
        if ip is not None and ip >= KERNEL_TEXT_BASE:
            self.symbol_misses += 1
            for (lo, hi), (name, learned_class) in self._learned.get(
                kernel, {}
            ).items():
                if lo <= ip < hi:
                    symbol, critical_class = name, learned_class
                    break
        if critical_class is not None:
            self.hits += 1
            self.fallback_hits += 1
        return Detection(vcpu, symbol, critical_class)

    def _inspect_corrupted(self, vcpu, kernel):
        """Resolution 'works' but hands back the neighbouring symbol."""
        symbol = kernel.symbols.resolve_name(vcpu.ip)
        if symbol is not None:
            self.symbol_misses += 1
            symbol = self._neighbour(kernel, symbol)
        critical_class = self._classify(symbol)
        if critical_class is not None:
            self.hits += 1
        return Detection(vcpu, symbol, critical_class)

    def _learn(self, kernel, found, critical_class):
        """Remember the address range of a healthy critical hit so the
        ``miss`` fallback can keep classifying without names."""
        if found is None:
            return
        ranges = self._learned.setdefault(kernel, {})
        key = (found.address, found.end)
        if key not in ranges:
            ranges[key] = (found.name, critical_class)

    def _neighbour(self, kernel, name):
        """Deterministic wrong answer: the next symbol in address order
        (wrapping), the way an off-by-one-entry stale map resolves."""
        mapping = self._corrupt_maps.get(kernel)
        if mapping is None:
            names = [symbol.name for symbol in kernel.symbols]
            mapping = {
                current: names[(index + 1) % len(names)]
                for index, current in enumerate(names)
            }
            self._corrupt_maps[kernel] = mapping
        return mapping.get(name, name)

    def scan_preempted_siblings(self, vcpu):
        """Inspect the *preempted* (runnable but descheduled) siblings of
        ``vcpu``; returns the critical detections (Figure 1, steps 2-3)."""
        found = []
        for sibling in vcpu.domain.siblings_of(vcpu):
            if sibling.running or sibling.state != "runnable":
                continue
            detection = self.inspect(sibling)
            if detection.critical:
                found.append(detection)
        return found

    @staticmethod
    def needs_siblings(critical_class):
        """Does accelerating this class require pulling in the sibling
        vCPUs too (one-to-many IPI protocols)?"""
        return critical_class in SIBLING_CLASSES
