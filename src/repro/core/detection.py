"""Critical-OS-service detection (§4.1 of the paper).

The hypervisor is guest-agnostic: all it can see of a preempted vCPU is
its register state. The detector reads the vCPU's instruction pointer,
resolves it against that guest's kernel symbol table (``System.map``,
provided out of band), and checks the symbol against the Table-3
whitelist. A hit identifies a vCPU suspended inside a critical OS
service — a lock holder mid-critical-section, a TLB-shootdown
participant, an interrupt path — without any guest modification.
"""

from .whitelist import SIBLING_CLASSES, classify


class Detection:
    """The result of classifying one vCPU."""

    __slots__ = ("vcpu", "symbol", "critical_class")

    def __init__(self, vcpu, symbol, critical_class):
        self.vcpu = vcpu
        self.symbol = symbol
        self.critical_class = critical_class

    @property
    def critical(self):
        return self.critical_class is not None

    def __repr__(self):
        return "<Detection %s %s -> %s>" % (
            self.vcpu.name,
            self.symbol,
            self.critical_class,
        )


class CriticalServiceDetector:
    """IP -> symbol -> criticality, per the whitelist."""

    def __init__(self, whitelist_classify=classify):
        self._classify = whitelist_classify
        self.inspections = 0
        self.hits = 0

    def inspect(self, vcpu):
        """Classify one vCPU from its current instruction pointer."""
        self.inspections += 1
        table = vcpu.domain.kernel.symbols
        symbol = table.resolve_name(vcpu.ip)
        critical_class = self._classify(symbol)
        if critical_class is not None:
            self.hits += 1
        return Detection(vcpu, symbol, critical_class)

    def scan_preempted_siblings(self, vcpu):
        """Inspect the *preempted* (runnable but descheduled) siblings of
        ``vcpu``; returns the critical detections (Figure 1, steps 2-3)."""
        found = []
        for sibling in vcpu.domain.siblings_of(vcpu):
            if sibling.running or sibling.state != "runnable":
                continue
            detection = self.inspect(sibling)
            if detection.critical:
                found.append(detection)
        return found

    @staticmethod
    def needs_siblings(critical_class):
        """Does accelerating this class require pulling in the sibling
        vCPUs too (one-to-many IPI protocols)?"""
        return critical_class in SIBLING_CLASSES
