"""The micro-slice engine: the policy hooks the hypervisor calls.

This is the runtime half of the paper's contribution. It reacts to
three signals (§4.1-4.2):

* **yield events** (PLE exits and voluntary IPI-wait yields): inspect
  the yielding vCPU and its preempted siblings via the IP/symbol-table
  detector; migrate every vCPU found inside a critical service onto the
  micro-sliced pool. For IPI-class yields (TLB shootdowns, reschedule
  IPI waits) also wake-and-migrate the preempted/blocked recipients the
  initiator is waiting for — the hypervisor knows them because it
  relays the vIPIs.
* **vIPI relays**: before delivering a guest IPI to a preempted
  recipient, migrate the recipient so the handler runs promptly.
* **vIRQ injections**: same for I/O interrupts — this is the path that
  rescues mixed I/O+CPU vCPUs that BOOST cannot help.
"""

from .detection import CriticalServiceDetector


class MicroSliceEngine:
    """Installed as the hypervisor's policy by static/dynamic schemes."""

    active = True

    def __init__(self, detector=None, accelerate_virq=True, accelerate_vipi=True):
        self.detector = detector if detector is not None else CriticalServiceDetector()
        self.accelerate_virq = accelerate_virq
        self.accelerate_vipi = accelerate_vipi
        self.hv = None
        self.controller = None

    def start(self, hv):
        self.hv = hv
        if self.controller is not None:
            self.controller.start(hv)

    # ------------------------------------------------------------------
    # hypervisor hooks
    # ------------------------------------------------------------------
    def on_yield(self, vcpu, cause, detail):
        hv = self.hv
        if hv is None or not hv.micro_pool.pcpus:
            return
        # The yielding vCPU itself: critical iff its IP says so (a TLB
        # initiator yields inside smp_call_function_many -> accelerated;
        # a plain lock spinner yields in the qspinlock slowpath -> not).
        detection = self.detector.inspect(vcpu)
        if detection.critical:
            hv.accelerate(vcpu)
        # Preempted siblings holding critical state (e.g. the preempted
        # lock holder whose IP sits in a Table-3 critical section).
        for found in self.detector.scan_preempted_siblings(vcpu):
            hv.accelerate(found.vcpu)
        # IPI waits: the recipients must run to acknowledge; wake and
        # migrate the stragglers (the relay told us who they are).
        if cause == "ipi" and detail is not None and hasattr(detail, "pending"):
            # Walk the op's target tuple, not the pending *set*: set order
            # hashes object ids, which would make the acceleration order
            # (and hence micro-pool queueing) vary run to run.
            pending = detail.pending
            for target in detail.targets:
                if target in pending and not target.running:
                    hv.accelerate(target, wake=True)

    def on_vipi(self, src, dst, op):
        # Only the I/O wakeup path accelerates at relay time (§4.2): the
        # reschedule IPI towards the process consuming the data. TLB
        # shootdown recipients are pulled in by the initiator's yield —
        # migrating them on every relay would drag whole VMs through
        # 100 us slices.
        if not self.accelerate_vipi or self.hv is None:
            return
        if op.kind != "resched":
            return
        if not dst.running:
            self.hv.accelerate(dst, wake=False)

    def on_virq(self, vcpu):
        if not self.accelerate_virq or self.hv is None:
            return
        if not vcpu.running:
            self.hv.accelerate(vcpu, wake=False)
