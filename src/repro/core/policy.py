"""Micro-slicing policy configurations.

Three schemes appear throughout the evaluation:

* ``baseline`` — vanilla credit scheduler, no micro-sliced cores;
* ``static(n)`` — the engine with a fixed pool of ``n`` micro cores
  (the administrator-tuned mode, used for Figures 4/5 sweeps);
* ``dynamic`` — the engine plus the Algorithm-1 adaptive controller.
"""

from ..errors import ConfigError
from .adaptive import AdaptiveController
from .microslice import MicroSliceEngine
from .usercrit import UserAwareDetector

BASELINE = "baseline"
STATIC = "static"
DYNAMIC = "dynamic"


class PolicySpec:
    """Declarative policy choice, applied to a hypervisor at start."""

    def __init__(
        self, mode=BASELINE, micro_cores=0, adaptive_kwargs=None, user_critical=False
    ):
        if mode not in (BASELINE, STATIC, DYNAMIC):
            raise ConfigError("unknown policy mode %r" % mode)
        if mode == STATIC and micro_cores <= 0:
            raise ConfigError("static policy needs micro_cores >= 1")
        self.mode = mode
        self.micro_cores = micro_cores
        self.adaptive_kwargs = dict(adaptive_kwargs or {})
        #: §4.4 extension: also detect registered user-level critical
        #: regions through the per-process table.
        self.user_critical = user_critical

    @classmethod
    def baseline(cls):
        return cls(BASELINE)

    @classmethod
    def static(cls, micro_cores, user_critical=False):
        return cls(STATIC, micro_cores=micro_cores, user_critical=user_critical)

    @classmethod
    def dynamic(cls, user_critical=False, **adaptive_kwargs):
        return cls(DYNAMIC, adaptive_kwargs=adaptive_kwargs, user_critical=user_critical)

    def install(self, hv):
        """Wire the policy into ``hv`` (before ``hv.start()``)."""
        if self.mode == BASELINE:
            return None
        detector = UserAwareDetector() if self.user_critical else None
        engine = MicroSliceEngine(detector=detector)
        if self.mode == DYNAMIC:
            engine.controller = AdaptiveController(**self.adaptive_kwargs)
        hv.set_policy(engine)
        if self.mode == STATIC:
            hv.set_micro_cores(self.micro_cores)
        return engine

    def __repr__(self):
        if self.mode == STATIC:
            return "PolicySpec(static, %d cores)" % self.micro_cores
        return "PolicySpec(%s)" % self.mode
