"""Simplified models of the prior approaches the paper compares against
(Table 1). These exist to *quantify* Table 1's check-mark matrix: each
comparator helps the symptom it was designed for and misses the others.

* :class:`VTurboPolicy` — vTurbo [ATC'13]: statically dedicate turbo
  cores with a short slice and run the guests' I/O handling vCPUs there
  (the real system modifies the guest to separate I/O handling; we model
  the result by pinning each VM's IRQ vCPU). I/O interrupts are served
  promptly — but lock holders and TLB stragglers get no help, and the
  pinned vCPU's *user* work is stuck with 0.1 ms slices.
* :class:`VTrsPolicy` — vTRS [EuroSys'16]: classify whole vCPUs by
  their time-slice preference from runtime statistics, and run
  short-slice-class vCPUs on a short-slice pool. The classification
  granularity is the vCPU, so a mixed vCPU (iPerf + compute) is forced
  into one class — the case the paper's precise, service-granular
  selection wins.
* Fixed micro-slicing on all cores (Ahn et al. [MICRO'14]) needs no
  policy object: build a scenario with ``scheduler="shortslice"``
  (the repro.sched backend with a 100 µs slice on every core).
"""

from ..sim.time import ms
from .microslice import MicroSliceEngine


class VTurboPolicy:
    """Statically dedicate turbo cores to the VMs' I/O (IRQ) vCPUs."""

    active = True

    def __init__(self, turbo_cores=1):
        self.turbo_cores = turbo_cores
        self.hv = None

    def start(self, hv):
        self.hv = hv
        hv.set_micro_cores(self.turbo_cores)
        hv.sim.schedule(0, self._pin_io_vcpus)

    def _pin_io_vcpus(self, _arg=None):
        for domain in self.hv.domains:
            net = domain.kernel.net
            if net is not None:
                self.hv.make_micro_resident(net.irq_vcpu)

    # vTurbo has no dynamic hooks: the dedication is static and the
    # guest (not the hypervisor) decides what runs on the turbo core.
    def on_yield(self, vcpu, cause, detail):
        pass

    def on_vipi(self, src, dst, op):
        pass

    def on_virq(self, vcpu):
        pass


class VTrsPolicy:
    """Classify whole vCPUs by time-slice preference every epoch.

    A vCPU whose yield rate (PLE + voluntary IPI waits + vIRQ load)
    exceeds ``short_threshold`` events per epoch is classed
    short-slice and moved to the short-slice pool; it returns to the
    normal pool when its rate drops. Classification input is the same
    statistic vTRS derives from runtime profiling; the crucial
    difference from the paper's scheme is the granularity (vCPUs, not
    critical services) and the latency (epochs, not events).
    """

    active = True

    def __init__(self, pool_cores=2, epoch=None, short_threshold=50):
        self.pool_cores = pool_cores
        self.epoch = ms(30) if epoch is None else epoch
        self.short_threshold = short_threshold
        self.hv = None
        self._events = {}
        self.classifications = []  # (time, vcpu-name, class) history

    def start(self, hv):
        self.hv = hv
        hv.set_micro_cores(self.pool_cores)
        hv.sim.schedule(self.epoch, self._reclassify)

    # ------------------------------------------------------------------
    # profiling input
    # ------------------------------------------------------------------
    def _bump(self, vcpu, amount=1):
        self._events[vcpu] = self._events.get(vcpu, 0) + amount

    def on_yield(self, vcpu, cause, detail):
        self._bump(vcpu)

    def on_vipi(self, src, dst, op):
        self._bump(dst)

    def on_virq(self, vcpu):
        self._bump(vcpu)

    # ------------------------------------------------------------------
    def _reclassify(self, _arg=None):
        hv = self.hv
        slots = len(hv.micro_pool.pcpus) * 2  # one running + one queued
        ranked = sorted(self._events.items(), key=lambda kv: -kv[1])
        chosen = {
            vcpu
            for vcpu, count in ranked[:slots]
            if count >= self.short_threshold
        }
        for domain in hv.domains:
            for vcpu in domain.vcpus:
                if vcpu in chosen and not vcpu.micro_resident:
                    if hv.make_micro_resident(vcpu):
                        self.classifications.append((hv.sim.now, vcpu.name, "short"))
                elif vcpu.micro_resident and vcpu not in chosen:
                    hv.release_micro_resident(vcpu)
                    self.classifications.append((hv.sim.now, vcpu.name, "long"))
        self._events = {}
        hv.sim.schedule(self.epoch, self._reclassify)


def microsliced_policy(*args, **kwargs):
    """The paper's scheme, for symmetric imports in comparison code."""
    return MicroSliceEngine(*args, **kwargs)
