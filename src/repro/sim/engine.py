"""The discrete-event simulation core.

:class:`Simulator` owns the pending-event set and a monotonically
increasing clock in integer nanoseconds. On top of the raw callback
layer, :class:`Process` runs a Python generator as a cooperative
process: the generator yields :class:`~repro.sim.events.Event` objects
(usually :class:`~repro.sim.events.Timeout`) and is resumed with the
event's value. Processes can be interrupted out of a wait, which the
pCPU executors use to model preemption, lock hand-off, and interrupt
delivery with exact (non-polled) latency.

Hot-path design (see ``docs/performance.md`` for the measurements):

* Pending events live in a **two-level bucketed structure**: a
  zero-delay *now lane* (a plain FIFO for everything scheduled at the
  current instant — process-resume trampolines, event triggers) in
  front of a **far-term queue** holding every entry with a positive
  delay. Because a zero-delay entry always carries a larger sequence
  number than any same-time far entry (delays cannot land *on* the
  current instant), draining far-due entries first and then the lane in
  FIFO order reproduces the exact global ``(time, seq)`` order a single
  heap would give — byte-identical simulations, without paying O(log n)
  sifts (or a handle allocation) for the massed trampoline traffic.
* The far-term queue is pluggable (``REPRO_SIM_QUEUE``): a C-``heapq``
  backend (default — smallest constants at host-scale pending counts)
  or the calendar queue in :mod:`repro.sim.queues` whose bucket drains
  batch same-deadline expiry for fleet-scale runs. Both honour the same
  total order, so the choice can never change results.
* All same-timestamp far entries dispatch in one drain: the clock is
  advanced once per distinct timestamp, not once per event.
* Cancelled entries are dropped lazily but compacted whenever garbage
  exceeds half the pending set, so mass cancellation (the adaptive
  controller re-arming timers for hours of simulated time) cannot grow
  the queue unboundedly; a process interrupted out of a Timeout wait
  cancels the stale timer on the spot instead of letting it fire into
  the identity filter.
* Process event waits register a bound method, not a fresh closure per
  wait.
* A process may yield a bare ``int`` — a *handle-level timer wait* that
  skips the :class:`~repro.sim.events.Timeout` object, the trigger
  machinery and the waiter list entirely. It consumes exactly the same
  ``(time, seq)`` slots as ``yield sim.timeout(n)`` (one at arm, one at
  the fire-time trampoline), so the two spellings are byte-identical;
  the pCPU executors use it for the dominant fixed-delay event classes
  (charges, compute chunks, spin windows).
"""

import heapq
import os
import types
from collections import deque

from ..errors import SimulationError
from .events import Event, Interrupt, Timeout
from .queues import BACKENDS

#: Compaction kicks in once at least this many cancelled entries are
#: pending *and* they outnumber the live ones (garbage > half the
#: pending set).
_COMPACT_MIN_GARBAGE = 8


class _Scheduled:
    """Handle for a scheduled callback; supports O(1) cancellation.

    The handle no longer carries its own ``(time, seq)`` ordering key —
    that lives in the queue entry — so the object stays small and is
    never compared during sifts. Executed entries are flagged exactly
    like cancelled ones, which makes a late ``cancel()`` a no-op and
    keeps the simulator's garbage accounting exact.
    """

    __slots__ = ("sim", "callback", "arg", "cancelled")

    def __init__(self, sim, callback, arg):
        self.sim = sim
        self.callback = callback
        self.arg = arg
        self.cancelled = False

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        sim._garbage += 1
        if (
            sim._garbage >= _COMPACT_MIN_GARBAGE
            and sim._garbage * 2 > len(sim._queue) + len(sim._now_lane)
        ):
            sim._compact()


def _entry_live(entry):
    """Is this far-queue entry still live? Covers both entry kinds:
    handle-carrying ``(time, seq, _Scheduled)`` schedules and
    handle-free ``(time, seq, Process)`` timer waits (live while the
    process's arm token still matches the entry's seq)."""
    obj = entry[2]
    if obj.__class__ is _Scheduled:
        return not obj.cancelled
    return obj._timer_seq == entry[1]


class Simulator:
    """Event loop with an integer-nanosecond clock.

    ``far_queue`` selects the far-term backend: ``"heap"`` (default) or
    ``"calendar"``; ``None`` reads ``REPRO_SIM_QUEUE`` from the
    environment. The backend affects performance only — never results.
    """

    def __init__(self, far_queue=None):
        self._now = 0
        self._seq = 0
        if far_queue is None:
            far_queue = os.environ.get("REPRO_SIM_QUEUE", "heap")
        if far_queue not in BACKENDS:
            raise SimulationError(
                "unknown far-queue backend %r (available: %s)"
                % (far_queue, ", ".join(sorted(BACKENDS)))
            )
        self.far_queue = far_queue
        #: Far-term entries, (time, seq, handle) tuples. In heap mode
        #: this is a plain ``heapq`` list so the run loop can use the C
        #: functions directly; in calendar mode it is a
        #: :class:`~repro.sim.queues.CalendarQueue`.
        self._queue = [] if far_queue == "heap" else BACKENDS[far_queue]()
        #: The now lane: entries due at the current instant, FIFO.
        #: ``(seq, callback, arg, handle_or_None)`` — trampolines from
        #: :meth:`_schedule_now` carry no handle (they are never
        #: cancelled), public zero-delay schedules carry one.
        self._now_lane = deque()
        self._garbage = 0  # cancelled-but-unpopped entries (all levels)
        self._processes = []
        self.executed_events = 0

    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay, callback, arg=None):
        """Run ``callback(arg)`` after ``delay`` ns; returns a cancellable
        handle. Zero delays run after currently pending same-time events
        (FIFO within a timestamp)."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % delay)
        self._seq = seq = self._seq + 1
        handle = _Scheduled(self, callback, arg)
        if delay == 0:
            self._now_lane.append((seq, callback, arg, handle))
        elif type(self._queue) is list:
            heapq.heappush(self._queue, (self._now + delay, seq, handle))
        else:
            self._queue.push((self._now + delay, seq, handle))
        return handle

    def _schedule_now(self, callback, arg):
        """Internal zero-delay schedule without a cancellation handle:
        the trampoline lane for event triggers and process resumes.
        Ordering is identical to ``schedule(0, ...)``."""
        self._seq = seq = self._seq + 1
        self._now_lane.append((seq, callback, arg, None))

    def timeout(self, delay, value=None, name=""):
        """Create a :class:`Timeout` event firing after ``delay`` ns."""
        return Timeout(self, delay, value=value, name=name)

    def event(self, name=""):
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def process(self, generator, name=""):
        """Start ``generator`` as a simulation process."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def run(self, until=None):
        """Execute events until the queue is empty or the clock would pass
        ``until`` (ns). The clock is left at ``until`` if the limit was
        reached, else at the last executed event's time."""
        if type(self._queue) is list:
            now = self._run_heap(until)
        else:
            now = self._run_far(until)
        if until is not None and now < until:
            self._now = now = until
        return now

    def _run_heap(self, until):
        """The hot loop, specialised for the heapq far-term backend."""
        queue = self._queue
        lane = self._now_lane
        pop = heapq.heappop
        popleft = lane.popleft
        now = self._now
        if until is not None and until < now:
            return now
        executed = 0
        try:
            while True:
                # Far entries due at the current instant run first: they
                # were scheduled strictly earlier, so their sequence
                # numbers are smaller than anything in the now lane.
                while queue:
                    entry = queue[0]
                    handle = entry[2]
                    if handle.__class__ is not _Scheduled:
                        # Handle-free process timer wait: entry[1] (the
                        # arm seq) doubles as the validity token.
                        if handle._timer_seq != entry[1]:
                            pop(queue)  # stale (interrupted) timer
                            continue
                        if entry[0] > now:
                            break
                        pop(queue)
                        executed += 1
                        # Append the resume trampoline exactly where an
                        # Event.trigger would.
                        self._seq = seq = self._seq + 1
                        if lane or (queue and queue[0][0] <= now):
                            lane.append((seq, handle._timer_cb, None, None))
                            continue
                        # The trampoline is provably the next dispatch
                        # (lane empty, no far entry due): run it now,
                        # skipping the lane round trip. Same two events
                        # in the same order — only the buffering differs.
                        executed += 1
                        handle._timer_cb(None)
                        continue
                    if handle.cancelled:
                        pop(queue)
                        self._garbage -= 1
                        continue
                    if entry[0] > now:
                        break
                    pop(queue)
                    handle.cancelled = True  # consumed: late cancel() no-ops
                    executed += 1
                    handle.callback(handle.arg)
                if lane:
                    _seq, callback, arg, handle = popleft()
                    if handle is not None:
                        if handle.cancelled:
                            self._garbage -= 1
                            continue
                        handle.cancelled = True
                    executed += 1
                    callback(arg)
                    continue
                if not queue:
                    break
                time = queue[0][0]
                if until is not None and time > until:
                    break
                self._now = now = time
        finally:
            # Batched: one attribute RMW per run() call, not per event.
            self.executed_events += executed
        return now

    def _run_far(self, until):
        """Same loop against a queue-backend object (calendar mode)."""
        queue = self._queue
        lane = self._now_lane
        popleft = lane.popleft
        now = self._now
        if until is not None and until < now:
            return now
        executed = 0
        try:
            while True:
                while True:
                    entry = queue.peek()
                    if entry is None:
                        break
                    handle = entry[2]
                    if handle.__class__ is not _Scheduled:
                        if handle._timer_seq != entry[1]:
                            queue.pop()  # stale (interrupted) timer
                            continue
                        if entry[0] > now:
                            break
                        queue.pop()
                        executed += 1
                        self._seq = seq = self._seq + 1
                        nxt = queue.peek()
                        if lane or (nxt is not None and nxt[0] <= now):
                            lane.append((seq, handle._timer_cb, None, None))
                            continue
                        # Provably-next trampoline: direct dispatch (see
                        # the heap loop).
                        executed += 1
                        handle._timer_cb(None)
                        continue
                    if handle.cancelled:
                        queue.pop()
                        self._garbage -= 1
                        continue
                    if entry[0] > now:
                        break
                    queue.pop()
                    handle.cancelled = True
                    executed += 1
                    handle.callback(handle.arg)
                if lane:
                    _seq, callback, arg, handle = popleft()
                    if handle is not None:
                        if handle.cancelled:
                            self._garbage -= 1
                            continue
                        handle.cancelled = True
                    executed += 1
                    callback(arg)
                    continue
                entry = queue.peek()
                if entry is None:
                    break
                time = entry[0]
                if until is not None and time > until:
                    break
                self._now = now = time
        finally:
            self.executed_events += executed
        return now

    def pending(self):
        """Total queued entries (live + not-yet-released cancelled)."""
        return len(self._queue) + len(self._now_lane)

    def peek(self):
        """Time of the next pending event, or ``None`` if the queue is
        empty. Cancelled entries are skipped (and released)."""
        lane = self._now_lane
        while lane:
            handle = lane[0][3]
            if handle is not None and handle.cancelled:
                lane.popleft()
                self._garbage -= 1
                continue
            return self._now
        queue = self._queue
        if type(queue) is list:
            while queue:
                entry = queue[0]
                obj = entry[2]
                if obj.__class__ is _Scheduled:
                    if obj.cancelled:
                        heapq.heappop(queue)
                        self._garbage -= 1
                        continue
                elif obj._timer_seq != entry[1]:
                    heapq.heappop(queue)  # stale process timer
                    continue
                return entry[0]
            return None
        while True:
            entry = queue.peek()
            if entry is None:
                return None
            obj = entry[2]
            if obj.__class__ is _Scheduled:
                if obj.cancelled:
                    queue.pop()
                    self._garbage -= 1
                    continue
            elif obj._timer_seq != entry[1]:
                queue.pop()
                continue
            return entry[0]

    def _compact(self):
        """Drop every cancelled entry and restore queue invariants.
        O(live + garbage), amortised against the cancellations that
        triggered it.

        Compacts *in place*: :meth:`run` holds local aliases to the
        queue and the now lane while dispatching, and cancellations from
        inside a callback can trigger compaction mid-run — rebinding
        either container would leave the loop draining a stale structure
        and drop later-scheduled events.
        """
        queue = self._queue
        if type(queue) is list:
            queue[:] = [entry for entry in queue if _entry_live(entry)]
            heapq.heapify(queue)
        else:
            queue.compact()
        lane = self._now_lane
        if lane:
            live = [
                entry
                for entry in lane
                if entry[3] is None or not entry[3].cancelled
            ]
            if len(live) != len(lane):
                lane.clear()
                lane.extend(live)
        self._garbage = 0


#: Process states.
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"


class Process:
    """A generator running as a cooperative simulation process.

    The generator yields events; it is resumed with ``event.value`` when
    the event triggers. A process is itself waitable through
    :attr:`completed`, which carries the generator's return value.

    :meth:`interrupt` throws :class:`Interrupt` into the generator at the
    current time, cancelling whatever wait was in progress. Interrupts
    that land while a resume is already scheduled are coalesced into one
    :class:`Interrupt` carrying every cause.

    Stale wakeups (e.g. a timeout that fires after an interrupt already
    resumed us) are filtered by identity: the process remembers the one
    event it is blocked on in :attr:`_waiting_on`, and the single bound
    callback :meth:`_on_event` ignores anything else. This replaces a
    per-wait closure allocation on the hottest path in the engine. When
    the abandoned wait is a plain Timeout, the stale timer is cancelled
    outright so it never has to fire into the filter at all.

    **Handle-level timer waits**: yielding a bare non-negative ``int``
    sleeps for that many nanoseconds without constructing a Timeout (or
    any Event) at all — the process arms a raw engine timer whose fire
    callback rides the now lane exactly like an event trigger would.
    Ordering is provably identical to ``yield sim.timeout(n)``: both
    spellings consume one sequence number when the timer is armed and
    one when the fire-time trampoline is appended, and an interrupt
    cancels the armed timer in both. The resume value is always
    ``None``. This is the executors' fast path; rich waits (fan-out,
    values, names) still use Event objects.
    """

    __slots__ = (
        "sim",
        "name",
        "state",
        "completed",
        "error",
        "_gen",
        "_waiting_on",
        "_pending_interrupt",
        "_resume_scheduled",
        "_begun",
        "_timer_seq",
        "_timer_cb",
    )

    def __init__(self, sim, generator, name=""):
        if not isinstance(generator, types.GeneratorType):
            raise SimulationError("process target must be a generator, got %r" % (generator,))
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.state = RUNNING
        self.completed = Event(sim, name="%s.completed" % self.name)
        self.error = None
        self._gen = generator
        #: The event this process is currently blocked on; ``None`` when
        #: runnable or when the current wait has been invalidated.
        self._waiting_on = None
        self._pending_interrupt = None
        self._resume_scheduled = True
        self._begun = False
        #: Arm token of the in-flight handle-free timer wait (0 = none);
        #: the run loop fires the entry only while it matches entry[1].
        self._timer_seq = 0
        #: Prebound resume callback (avoids a method bind per fire).
        self._timer_cb = self._timer_resume
        sim._schedule_now(self._step, None)

    @property
    def alive(self):
        return self.state == RUNNING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        No-op on a finished process. Multiple interrupts before the
        process next runs are coalesced (all causes preserved).
        """
        if self.state != RUNNING:
            return
        if self._pending_interrupt is not None:
            self._pending_interrupt.add_cause(cause)
            return
        self._pending_interrupt = Interrupt(cause)
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None  # invalidate the current wait
            if waiting is self:
                # Handle-free timer wait: revoke the arm token; the
                # queue entry becomes stale and is skipped at pop (or
                # dropped by compaction). If the run loop already
                # consumed the entry, the fire-time trampoline finds
                # the wait invalidated instead.
                self._timer_seq = 0
            else:
                wcls = waiting.__class__
                if wcls is _Scheduled:
                    # Zero-delay timer wait: cancel the lane entry.
                    waiting.cancel()
                elif wcls is Timeout and not waiting.triggered:
                    # A plain timeout nobody else can be waiting on:
                    # cancel the timer instead of letting it fire as a
                    # stale wakeup.
                    waiting.cancel()
                    waiting.discard_callback(self._on_event)
        if not self._resume_scheduled:
            self._resume_scheduled = True
            self.sim._schedule_now(self._step, None)

    def _on_event(self, event):
        if event is not self._waiting_on or self.state != RUNNING:
            return
        self._waiting_on = None
        self._step(event.value)

    def _on_timer(self, _arg):
        """Fire callback of a handle-level timer wait: append the resume
        trampoline, exactly where :meth:`Event.trigger` would."""
        self.sim._schedule_now(self._timer_resume, None)

    def _timer_resume(self, _arg):
        # Between fire and trampoline only interrupt() can touch
        # _waiting_on (it nulls it), and the lane's FIFO order means no
        # newer wait can have been armed yet — so any non-None value
        # here is this wait's own handle.
        if self._waiting_on is None or self.state != RUNNING:
            return
        self._waiting_on = None
        self._step(None)

    def _step(self, value):
        self._resume_scheduled = False
        exc = self._pending_interrupt
        self._pending_interrupt = None
        if exc is not None and not self._begun:
            # A not-yet-started generator cannot catch a thrown
            # exception; start it first and deliver the interrupt at its
            # first yield point instead.
            self._pending_interrupt = exc
            exc = None
        try:
            self._begun = True
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(FINISHED, getattr(stop, "value", None))
            return
        except Interrupt as leaked:
            # The generator chose not to handle the interrupt; treat it as
            # a normal (non-error) termination — executors use this to
            # unwind cleanly.
            self._finish(FINISHED, leaked.cause)
            return
        except Exception as err:  # noqa: BLE001 - surfaced via .error
            self.error = err
            self._finish(FAILED, None)
            raise
        if target.__class__ is int:
            # Handle-level timer wait: arm a handle-free far-queue entry
            # (time, seq, self) — the arm consumes one sequence number,
            # exactly where a Timeout's schedule() call would consume
            # it, and the entry's seq doubles as the validity token an
            # interrupt revokes.
            sim = self.sim
            if target < 0:
                raise SimulationError(
                    "process %r yielded negative timer delay %r" % (self.name, target)
                )
            if self._pending_interrupt is not None:
                # Interrupted before the first yield: the wait is
                # stillborn. Consume the arm's sequence number (parity
                # with an armed-then-cancelled timer) but leave nothing
                # in the queue.
                sim._seq += 1
                if not self._resume_scheduled:
                    self._resume_scheduled = True
                    sim._schedule_now(self._step, None)
                return
            if target > 0:
                sim._seq = seq = sim._seq + 1
                self._timer_seq = seq
                queue = sim._queue
                if queue.__class__ is list:
                    heapq.heappush(queue, (sim._now + target, seq, self))
                else:
                    queue.push((sim._now + target, seq, self))
                self._waiting_on = self
            else:
                # Zero delay: ride the now lane with a cancellable
                # handle (same ordering as schedule(0, ...)).
                self._waiting_on = sim.schedule(0, self._on_timer, None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                "process %r yielded %r; processes must yield Event objects "
                "or int timer delays" % (self.name, target)
            )
        if self._pending_interrupt is not None:
            # An interrupt arrived before the generator's first yield;
            # deliver it now that there is a wait to break.
            if not self._resume_scheduled:
                self._resume_scheduled = True
                self.sim._schedule_now(self._step, None)
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _finish(self, state, value):
        self.state = state
        self._waiting_on = None
        if not self.completed.triggered:
            self.completed.trigger(value)

    def __repr__(self):
        return "<Process %s %s>" % (self.name, self.state)
