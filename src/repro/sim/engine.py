"""The discrete-event simulation core.

:class:`Simulator` owns a heap of ``(time, sequence, callback)`` entries
and a monotonically increasing clock in integer nanoseconds. On top of
the raw callback layer, :class:`Process` runs a Python generator as a
cooperative process: the generator yields :class:`~repro.sim.events.Event`
objects (usually :class:`~repro.sim.events.Timeout`) and is resumed with
the event's value. Processes can be interrupted out of a wait, which the
pCPU executors use to model preemption, lock hand-off, and interrupt
delivery with exact (non-polled) latency.
"""

import heapq
import types

from ..errors import SimulationError
from .events import Event, Interrupt, Timeout


class _Scheduled:
    """Handle for a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("time", "seq", "callback", "arg", "cancelled")

    def __init__(self, time, seq, callback, arg):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.arg = arg
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """Event loop with an integer-nanosecond clock."""

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._queue = []
        self._processes = []
        self.executed_events = 0

    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay, callback, arg=None):
        """Run ``callback(arg)`` after ``delay`` ns; returns a cancellable
        handle. Zero delays run after currently pending same-time events
        (FIFO within a timestamp)."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % delay)
        self._seq += 1
        entry = _Scheduled(self._now + delay, self._seq, callback, arg)
        heapq.heappush(self._queue, entry)
        return entry

    def timeout(self, delay, value=None, name=""):
        """Create a :class:`Timeout` event firing after ``delay`` ns."""
        return Timeout(self, delay, value=value, name=name)

    def event(self, name=""):
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def process(self, generator, name=""):
        """Start ``generator`` as a simulation process."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def run(self, until=None):
        """Execute events until the queue is empty or the clock would pass
        ``until`` (ns). The clock is left at ``until`` if the limit was
        reached, else at the last executed event's time."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry.cancelled:
                heapq.heappop(queue)
                continue
            if until is not None and entry.time > until:
                break
            heapq.heappop(queue)
            self._now = entry.time
            self.executed_events += 1
            entry.callback(entry.arg)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek(self):
        """Time of the next pending event, or ``None`` if the queue is
        empty. Cancelled entries are skipped."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time if queue else None


#: Process states.
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"


class Process:
    """A generator running as a cooperative simulation process.

    The generator yields events; it is resumed with ``event.value`` when
    the event triggers. A process is itself waitable through
    :attr:`completed`, which carries the generator's return value.

    :meth:`interrupt` throws :class:`Interrupt` into the generator at the
    current time, cancelling whatever wait was in progress. Interrupts
    that land while a resume is already scheduled are coalesced into one
    :class:`Interrupt` carrying every cause.
    """

    def __init__(self, sim, generator, name=""):
        if not isinstance(generator, types.GeneratorType):
            raise SimulationError("process target must be a generator, got %r" % (generator,))
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.state = RUNNING
        self.completed = Event(sim, name="%s.completed" % self.name)
        self.error = None
        self._gen = generator
        # Identifies the wait the process is currently blocked on; stale
        # event callbacks (e.g. a timeout that fires after an interrupt
        # already resumed us) compare against it and bail out.
        self._wait_id = 0
        self._pending_interrupt = None
        self._resume_scheduled = True
        self._begun = False
        sim.schedule(0, self._step, (None, None))

    @property
    def alive(self):
        return self.state == RUNNING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        No-op on a finished process. Multiple interrupts before the
        process next runs are coalesced (all causes preserved).
        """
        if not self.alive:
            return
        if self._pending_interrupt is not None:
            self._pending_interrupt.add_cause(cause)
            return
        self._pending_interrupt = Interrupt(cause)
        self._wait_id += 1  # invalidate the current wait
        if not self._resume_scheduled:
            self._resume_scheduled = True
            self.sim.schedule(0, self._step, (None, None))

    def _on_event(self, wait_id, event):
        if wait_id != self._wait_id or not self.alive:
            return
        self._wait_id += 1
        self._resume_scheduled = True
        self._step((event.value, None))

    def _step(self, payload):
        value, _ = payload
        self._resume_scheduled = False
        exc = self._pending_interrupt
        self._pending_interrupt = None
        if exc is not None and not self._begun:
            # A not-yet-started generator cannot catch a thrown
            # exception; start it first and deliver the interrupt at its
            # first yield point instead.
            self._pending_interrupt = exc
            exc = None
        try:
            self._begun = True
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(FINISHED, getattr(stop, "value", None))
            return
        except Interrupt as leaked:
            # The generator chose not to handle the interrupt; treat it as
            # a normal (non-error) termination — executors use this to
            # unwind cleanly.
            self._finish(FINISHED, leaked.cause)
            return
        except Exception as err:  # noqa: BLE001 - surfaced via .error
            self.error = err
            self._finish(FAILED, None)
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                "process %r yielded %r; processes must yield Event objects" % (self.name, target)
            )
        if self._pending_interrupt is not None:
            # An interrupt arrived before the generator's first yield;
            # deliver it now that there is a wait to break.
            self._wait_id += 1
            self._resume_scheduled = True
            self.sim.schedule(0, self._step, (None, None))
            return
        wait_id = self._wait_id
        target.add_callback(lambda event, w=wait_id: self._on_event(w, event))

    def _finish(self, state, value):
        self.state = state
        self._wait_id += 1
        if not self.completed.triggered:
            self.completed.trigger(value)

    def __repr__(self):
        return "<Process %s %s>" % (self.name, self.state)
