"""The discrete-event simulation core.

:class:`Simulator` owns a heap of ``(time, sequence, handle)`` entries
and a monotonically increasing clock in integer nanoseconds. On top of
the raw callback layer, :class:`Process` runs a Python generator as a
cooperative process: the generator yields :class:`~repro.sim.events.Event`
objects (usually :class:`~repro.sim.events.Timeout`) and is resumed with
the event's value. Processes can be interrupted out of a wait, which the
pCPU executors use to model preemption, lock hand-off, and interrupt
delivery with exact (non-polled) latency.

Hot-path notes: heap entries are plain ``(time, seq, handle)`` tuples so
``heapq`` compares ints in C instead of calling a Python ``__lt__``;
cancelled entries are dropped lazily but the heap is compacted whenever
garbage exceeds half the queue, so mass cancellation (the adaptive
controller re-arming timers for hours of simulated time) cannot grow
the queue unboundedly; process event waits register a bound method, not
a fresh closure per wait.
"""

import heapq
import types

from ..errors import SimulationError
from .events import Event, Interrupt, Timeout

#: Compaction kicks in once at least this many cancelled entries are
#: pending *and* they outnumber the live ones (garbage > half the heap).
_COMPACT_MIN_GARBAGE = 8


class _Scheduled:
    """Handle for a scheduled callback; supports O(1) cancellation.

    The handle no longer carries its own ``(time, seq)`` ordering key —
    that lives in the heap tuple — so the object stays small and is
    never compared during sifts. Executed entries are flagged exactly
    like cancelled ones, which makes a late ``cancel()`` a no-op and
    keeps the simulator's garbage accounting exact.
    """

    __slots__ = ("sim", "callback", "arg", "cancelled")

    def __init__(self, sim, callback, arg):
        self.sim = sim
        self.callback = callback
        self.arg = arg
        self.cancelled = False

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        sim._garbage += 1
        if (
            sim._garbage >= _COMPACT_MIN_GARBAGE
            and sim._garbage * 2 > len(sim._queue)
        ):
            sim._compact()


class Simulator:
    """Event loop with an integer-nanosecond clock."""

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._queue = []
        self._garbage = 0  # cancelled-but-unpopped heap entries
        self._processes = []
        self.executed_events = 0

    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay, callback, arg=None):
        """Run ``callback(arg)`` after ``delay`` ns; returns a cancellable
        handle. Zero delays run after currently pending same-time events
        (FIFO within a timestamp)."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % delay)
        self._seq = seq = self._seq + 1
        handle = _Scheduled(self, callback, arg)
        heapq.heappush(self._queue, (self._now + delay, seq, handle))
        return handle

    def timeout(self, delay, value=None, name=""):
        """Create a :class:`Timeout` event firing after ``delay`` ns."""
        return Timeout(self, delay, value=value, name=name)

    def event(self, name=""):
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def process(self, generator, name=""):
        """Start ``generator`` as a simulation process."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def run(self, until=None):
        """Execute events until the queue is empty or the clock would pass
        ``until`` (ns). The clock is left at ``until`` if the limit was
        reached, else at the last executed event's time."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _seq, handle = queue[0]
            if handle.cancelled:
                pop(queue)
                self._garbage -= 1
                continue
            if until is not None and time > until:
                break
            pop(queue)
            self._now = time
            self.executed_events += 1
            # Flag as consumed so a later cancel() cannot skew the
            # garbage accounting for an entry already off the heap.
            handle.cancelled = True
            handle.callback(handle.arg)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek(self):
        """Time of the next pending event, or ``None`` if the queue is
        empty. Cancelled entries are skipped (and released)."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._garbage -= 1
        return queue[0][0] if queue else None

    def _compact(self):
        """Drop every cancelled entry and re-heapify. O(live + garbage),
        amortised against the cancellations that triggered it.

        Compacts *in place*: :meth:`run` holds a local alias to the queue
        while dispatching, and cancellations from inside a callback can
        trigger compaction mid-run — rebinding ``self._queue`` would leave
        the loop draining a stale list and drop later-scheduled events.
        """
        self._queue[:] = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._garbage = 0


#: Process states.
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"


class Process:
    """A generator running as a cooperative simulation process.

    The generator yields events; it is resumed with ``event.value`` when
    the event triggers. A process is itself waitable through
    :attr:`completed`, which carries the generator's return value.

    :meth:`interrupt` throws :class:`Interrupt` into the generator at the
    current time, cancelling whatever wait was in progress. Interrupts
    that land while a resume is already scheduled are coalesced into one
    :class:`Interrupt` carrying every cause.

    Stale wakeups (e.g. a timeout that fires after an interrupt already
    resumed us) are filtered by identity: the process remembers the one
    event it is blocked on in :attr:`_waiting_on`, and the single bound
    callback :meth:`_on_event` ignores anything else. This replaces a
    per-wait closure allocation on the hottest path in the engine.
    """

    __slots__ = (
        "sim",
        "name",
        "state",
        "completed",
        "error",
        "_gen",
        "_waiting_on",
        "_pending_interrupt",
        "_resume_scheduled",
        "_begun",
    )

    def __init__(self, sim, generator, name=""):
        if not isinstance(generator, types.GeneratorType):
            raise SimulationError("process target must be a generator, got %r" % (generator,))
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.state = RUNNING
        self.completed = Event(sim, name="%s.completed" % self.name)
        self.error = None
        self._gen = generator
        #: The event this process is currently blocked on; ``None`` when
        #: runnable or when the current wait has been invalidated.
        self._waiting_on = None
        self._pending_interrupt = None
        self._resume_scheduled = True
        self._begun = False
        sim.schedule(0, self._step, None)

    @property
    def alive(self):
        return self.state == RUNNING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        No-op on a finished process. Multiple interrupts before the
        process next runs are coalesced (all causes preserved).
        """
        if self.state != RUNNING:
            return
        if self._pending_interrupt is not None:
            self._pending_interrupt.add_cause(cause)
            return
        self._pending_interrupt = Interrupt(cause)
        self._waiting_on = None  # invalidate the current wait
        if not self._resume_scheduled:
            self._resume_scheduled = True
            self.sim.schedule(0, self._step, None)

    def _on_event(self, event):
        if event is not self._waiting_on or self.state != RUNNING:
            return
        self._waiting_on = None
        self._step(event.value)

    def _step(self, value):
        self._resume_scheduled = False
        exc = self._pending_interrupt
        self._pending_interrupt = None
        if exc is not None and not self._begun:
            # A not-yet-started generator cannot catch a thrown
            # exception; start it first and deliver the interrupt at its
            # first yield point instead.
            self._pending_interrupt = exc
            exc = None
        try:
            self._begun = True
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(FINISHED, getattr(stop, "value", None))
            return
        except Interrupt as leaked:
            # The generator chose not to handle the interrupt; treat it as
            # a normal (non-error) termination — executors use this to
            # unwind cleanly.
            self._finish(FINISHED, leaked.cause)
            return
        except Exception as err:  # noqa: BLE001 - surfaced via .error
            self.error = err
            self._finish(FAILED, None)
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                "process %r yielded %r; processes must yield Event objects" % (self.name, target)
            )
        if self._pending_interrupt is not None:
            # An interrupt arrived before the generator's first yield;
            # deliver it now that there is a wait to break.
            if not self._resume_scheduled:
                self._resume_scheduled = True
                self.sim.schedule(0, self._step, None)
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _finish(self, state, value):
        self.state = state
        self._waiting_on = None
        if not self.completed.triggered:
            self.completed.trigger(value)

    def __repr__(self):
        return "<Process %s %s>" % (self.name, self.state)
