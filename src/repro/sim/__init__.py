"""Discrete-event simulation kernel (engine, processes, events, time)."""

from .engine import FAILED, FINISHED, RUNNING, Process, Simulator
from .events import Event, Interrupt, Timeout
from .rng import RngHub, derive_seed
from .time import FOREVER, MS, NS, SEC, US, fmt, ms, seconds, to_ms, to_seconds, to_us, us
from .trace import TraceRecord, Tracer

__all__ = [
    "FAILED",
    "FINISHED",
    "FOREVER",
    "MS",
    "NS",
    "RUNNING",
    "SEC",
    "US",
    "Event",
    "Interrupt",
    "Process",
    "RngHub",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "derive_seed",
    "fmt",
    "ms",
    "seconds",
    "to_ms",
    "to_seconds",
    "to_us",
    "us",
]
