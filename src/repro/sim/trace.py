"""Structured event tracing, in the spirit of ``xentrace``.

Tracing is off by default (a disabled tracer costs its caller one
attribute check). When enabled, every record is typed against the
schema in :mod:`repro.obs.schema`, carries a monotonically increasing
sequence number, and is counted per kind; the buffer exports losslessly
to JSONL (``repro analyze`` consumes that). ``capacity`` bounds the
in-memory ring for hot interactive runs — export-bound runs pass
``capacity=None`` so nothing is ever dropped.
"""

import json
from collections import deque

from ..errors import ConfigError, TraceError
from ..obs.schema import META_KINDS, RESERVED_KEYS, TRACE_SCHEMA
from .time import fmt


class TraceRecord:
    __slots__ = ("seq", "time", "kind", "detail")

    def __init__(self, seq, time, kind, detail):
        self.seq = seq
        self.time = time
        self.kind = kind
        self.detail = detail

    def as_dict(self):
        """Flat JSON-native form: reserved keys first, detail inline."""
        record = {"seq": self.seq, "t": self.time, "kind": self.kind}
        record.update(self.detail)
        return record

    def __repr__(self):
        return "[%s] #%d %s %s" % (fmt(self.time), self.seq, self.kind, self.detail)


class Tracer:
    """Bounded (or unbounded) trace buffer with schema validation,
    per-kind counters, and JSONL export."""

    def __init__(self, sim, enabled=False, capacity=100_000, kinds=None):
        self.sim = sim
        self.enabled = enabled
        self.kinds = set(kinds) if kinds else None
        self.capacity = capacity
        self.records = deque(maxlen=capacity)
        self.dropped = 0
        self.seq = 0
        self.counts = {}

    def _append(self, kind, detail):
        expected = TRACE_SCHEMA.get(kind)
        if expected is not None and set(detail) != expected:
            raise ConfigError(
                "trace record %r fields %s do not match schema %s"
                % (kind, sorted(detail), sorted(expected))
            )
        if self.records.maxlen is not None and len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.seq += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.records.append(TraceRecord(self.seq, self.sim.now, kind, detail))

    def emit(self, kind, **detail):
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self._append(kind, detail)

    def record_meta(self, kind, **detail):
        """Emit a metadata record that bypasses the kind filter (but not
        the enable switch): an exported trace must always carry its
        ``meta``/``runstate_final`` records or ``analyze`` cannot anchor
        durations and runstate tables."""
        if not self.enabled:
            return
        if kind not in META_KINDS:
            raise ConfigError("%r is not a meta trace kind" % (kind,))
        self._append(kind, detail)

    def find(self, kind):
        """All buffered records of ``kind``, oldest first."""
        return [r for r in self.records if r.kind == kind]

    def clear(self):
        """Drop buffered records and per-kind counts (warmup boundary).
        Sequence numbers keep increasing across clears — they are
        tracer-lifetime monotonic, which makes drops detectable."""
        self.records.clear()
        self.counts = {}
        self.dropped = 0

    def export(self):
        """Buffered records as a list of flat JSON-native dicts."""
        return [record.as_dict() for record in self.records]

    def write_jsonl(self, path, job=None):
        """Write the buffer to ``path`` as one JSON object per line
        (sorted keys — byte-stable for identical runs). ``job`` labels
        every record for multi-job trace files."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                write_record(handle, record.as_dict(), job=job)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def write_record(handle, record, job=None):
    """Append one exported record dict to an open JSONL handle."""
    if job is not None:
        record = dict(record)
        record["job"] = job
    handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
    handle.write("\n")


def write_jsonl(path, records_by_job):
    """Write ``{job_label: [record_dict, ...]}`` to one JSONL file."""
    with open(path, "w", encoding="utf-8") as handle:
        for job, records in records_by_job.items():
            for record in records:
                write_record(handle, record, job=job)


def load_jsonl(path):
    """Read a JSONL trace file back into a list of record dicts.

    Raises :class:`~repro.errors.TraceError` — with the offending line
    number — on unreadable files, malformed JSON (including the partial
    last line of a truncated export), non-object records, and records
    missing their ``kind``."""
    records = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as err:
        raise TraceError("cannot read trace %s: %s" % (path, err)) from None
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise TraceError(
                    "%s line %d: malformed JSON (truncated or corrupt "
                    "trace export?): %.80r" % (path, lineno, line)
                ) from None
            if not isinstance(record, dict):
                raise TraceError(
                    "%s line %d: trace record must be a JSON object, got %s"
                    % (path, lineno, type(record).__name__)
                )
            if "kind" not in record:
                raise TraceError(
                    "%s line %d: trace record has no 'kind' field" % (path, lineno)
                )
            records.append(record)
    return records


# Re-exported so emit sites and tests can reference the vocabulary
# without importing repro.obs directly.
__all__ = [
    "RESERVED_KEYS",
    "TRACE_SCHEMA",
    "TraceRecord",
    "Tracer",
    "load_jsonl",
    "write_jsonl",
    "write_record",
]
