"""Lightweight event tracing, in the spirit of ``xentrace``.

Tracing is off by default (a disabled tracer costs one attribute check
per emit). Tests and the CLI enable it to inspect scheduling decisions,
yields, migrations, and IRQ flow.
"""

from collections import deque

from .time import fmt


class TraceRecord:
    __slots__ = ("time", "kind", "detail")

    def __init__(self, time, kind, detail):
        self.time = time
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "[%s] %s %s" % (fmt(self.time), self.kind, self.detail)


class Tracer:
    """Bounded in-memory trace buffer with optional kind filtering."""

    def __init__(self, sim, enabled=False, capacity=100_000, kinds=None):
        self.sim = sim
        self.enabled = enabled
        self.kinds = set(kinds) if kinds else None
        self.records = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, kind, **detail):
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.records.append(TraceRecord(self.sim.now, kind, detail))

    def find(self, kind):
        """All buffered records of ``kind``, oldest first."""
        return [r for r in self.records if r.kind == kind]

    def clear(self):
        self.records.clear()
        self.dropped = 0

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
