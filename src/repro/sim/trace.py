"""Structured event tracing, in the spirit of ``xentrace``.

Tracing is off by default (a disabled tracer costs its caller one
attribute check). When enabled, every record carries a monotonically
increasing sequence number and is counted per kind; the buffer exports
losslessly to JSONL (``repro analyze`` consumes that). ``capacity``
bounds the in-memory ring for hot interactive runs — export-bound runs
pass ``capacity=None`` so nothing is ever dropped.

Hot-path contract (see ``docs/performance.md``): emit sites hoist a
per-kind handle with :meth:`Tracer.want` — ``None`` when this tracer
would never record the kind (disabled, or filtered out), else a bound
emitter whose call appends directly to the ring with no dispatch,
filter checks, or schema validation. Tracer configuration (``enabled``
and the kind filter) is fixed at construction, which is what makes
hoisting the handle safe. Schema validation against
:mod:`repro.obs.schema` is a *debug-mode* feature (``debug=True`` or
``REPRO_TRACE_DEBUG=1``) — the CI trace-smoke jobs run with it on, so
emit-site drift is still caught without taxing every hot run.

Drop accounting is tracer-lifetime exact: ``dropped + len(records) ==
seq`` always holds — records pushed out of a bounded ring *and*
records discarded by :meth:`Tracer.clear` both count as dropped, while
``seq`` never resets.
"""

import json
import os
from collections import deque

from ..errors import ConfigError, TraceError
from ..obs.schema import META_KINDS, RESERVED_KEYS, TRACE_SCHEMA
from .time import fmt


class TraceRecord:
    """Attribute view of one trace record.

    The ring itself stores bare ``(seq, time, kind, detail)`` tuples —
    the emit path is too hot for a Python-level ``__init__`` per record
    — and the accessors (``find``, iteration) materialize these views
    lazily."""

    __slots__ = ("seq", "time", "kind", "detail")

    def __init__(self, seq, time, kind, detail):
        self.seq = seq
        self.time = time
        self.kind = kind
        self.detail = detail

    def as_dict(self):
        """Flat JSON-native form: reserved keys first, detail inline."""
        record = {"seq": self.seq, "t": self.time, "kind": self.kind}
        record.update(self.detail)
        return record

    def __repr__(self):
        return "[%s] #%d %s %s" % (fmt(self.time), self.seq, self.kind, self.detail)


def export_records(entries):
    """``(seq, time, kind, detail)`` tuples → flat JSON-native dicts
    (the :meth:`Tracer.export` format)."""
    out = []
    append = out.append
    for seq, time_ns, kind, detail in entries:
        record = {"seq": seq, "t": time_ns, "kind": kind}
        record.update(detail)
        append(record)
    return out


def _schema_check(kind, detail):
    expected = TRACE_SCHEMA.get(kind)
    if expected is not None and set(detail) != expected:
        raise ConfigError(
            "trace record %r fields %s do not match schema %s"
            % (kind, sorted(detail), sorted(expected))
        )


class _Emitter:
    """Bound fast-path emitter for one trace kind (``Tracer.want``).

    The call body is the whole hot path: ring-overflow accounting, seq
    and per-kind count bump, append. Schema validation happens only
    when the owning tracer is in debug mode."""

    __slots__ = ("tracer", "kind", "validate", "sim", "records", "bounded", "count")

    def __init__(self, tracer, kind):
        self.tracer = tracer
        self.kind = kind
        self.validate = tracer.debug
        self.sim = tracer.sim
        self.records = tracer.records
        self.bounded = tracer.records.maxlen is not None
        #: Per-emitter record count, folded into ``Tracer.counts`` on
        #: read — a slot bump beats a dict update at emit rates.
        self.count = 0

    def __call__(self, **detail):
        kind = self.kind
        if self.validate:
            _schema_check(kind, detail)
        tracer = self.tracer
        records = self.records
        if self.bounded and len(records) == records.maxlen:
            tracer.dropped += 1
        tracer.seq = seq = tracer.seq + 1
        self.count += 1
        records.append((seq, self.sim._now, kind, detail))

    def __repr__(self):
        return "<trace emitter %r>" % (self.kind,)


class Tracer:
    """Bounded (or unbounded) trace buffer with per-kind counters,
    JSONL export, and debug-mode schema validation."""

    def __init__(self, sim, enabled=False, capacity=100_000, kinds=None, debug=None):
        self.sim = sim
        self.enabled = enabled
        self.kinds = set(kinds) if kinds else None
        self.capacity = capacity
        self.records = deque(maxlen=capacity)
        self.dropped = 0
        self.seq = 0
        self._counts = {}
        if debug is None:
            debug = os.environ.get("REPRO_TRACE_DEBUG", "") in ("1", "true", "yes")
        self.debug = debug
        self._emitters = {}

    @property
    def counts(self):
        """Per-kind record counts, tracer-lifetime since the last
        :meth:`clear` (records later pushed out of the ring still
        count). Aggregated lazily: hot emitters keep a local slot
        counter that is folded in here on read."""
        merged = dict(self._counts)
        for kind, emitter in self._emitters.items():
            if emitter.count:
                merged[kind] = merged.get(kind, 0) + emitter.count
        return merged

    def want(self, kind):
        """Precomputed emit handle for ``kind``: ``None`` if this tracer
        would never record it (disabled, or excluded by the kind
        filter), else a bound emitter callable taking the detail kwargs.

        Hot emit sites hoist the handle once (configuration is fixed at
        construction) and guard with ``if emit is not None`` — so a
        disabled or filtered kind costs one ``None`` check instead of a
        method call, filter lookups, and schema validation."""
        if not self.enabled:
            return None
        if self.kinds is not None and kind not in self.kinds:
            return None
        emitter = self._emitters.get(kind)
        if emitter is None:
            emitter = self._emitters[kind] = _Emitter(self, kind)
        return emitter

    def _append(self, kind, detail):
        if self.debug:
            _schema_check(kind, detail)
        if self.records.maxlen is not None and len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.seq += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.records.append((self.seq, self.sim.now, kind, detail))

    def emit(self, kind, **detail):
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self._append(kind, detail)

    def record_meta(self, kind, **detail):
        """Emit a metadata record that bypasses the kind filter (but not
        the enable switch): an exported trace must always carry its
        ``meta``/``runstate_final`` records or ``analyze`` cannot anchor
        durations and runstate tables."""
        if not self.enabled:
            return
        if kind not in META_KINDS:
            raise ConfigError("%r is not a meta trace kind" % (kind,))
        self._append(kind, detail)

    def find(self, kind):
        """All buffered records of ``kind``, oldest first."""
        return [
            TraceRecord(seq, time_ns, rkind, detail)
            for seq, time_ns, rkind, detail in self.records
            if rkind == kind
        ]

    def clear(self):
        """Drop buffered records and per-kind counts (warmup boundary).
        Sequence numbers keep increasing across clears — they are
        tracer-lifetime monotonic — and the discarded records count as
        dropped, so ``dropped + len(records) == seq`` stays exact."""
        self.dropped += len(self.records)
        self.records.clear()
        self._counts = {}
        for emitter in self._emitters.values():
            emitter.count = 0

    def export(self):
        """Buffered records as a list of flat JSON-native dicts."""
        return export_records(self.records)

    def write_jsonl(self, path, job=None):
        """Write the buffer to ``path`` as one JSON object per line
        (sorted keys — byte-stable for identical runs). ``job`` labels
        every record for multi-job trace files."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.export():
                write_record(handle, record, job=job)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return (TraceRecord(*entry) for entry in self.records)


def write_record(handle, record, job=None):
    """Append one exported record dict to an open JSONL handle."""
    if job is not None:
        record = dict(record)
        record["job"] = job
    handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
    handle.write("\n")


def write_jsonl(path, records_by_job):
    """Write ``{job_label: [record_dict, ...]}`` to one JSONL file."""
    with open(path, "w", encoding="utf-8") as handle:
        for job, records in records_by_job.items():
            for record in records:
                write_record(handle, record, job=job)


def load_jsonl(path):
    """Read a JSONL trace file back into a list of record dicts.

    Raises :class:`~repro.errors.TraceError` — with the offending line
    number — on unreadable files, malformed JSON (including the partial
    last line of a truncated export), non-object records, and records
    missing their ``kind``."""
    records = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as err:
        raise TraceError("cannot read trace %s: %s" % (path, err)) from None
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise TraceError(
                    "%s line %d: malformed JSON (truncated or corrupt "
                    "trace export?): %.80r" % (path, lineno, line)
                ) from None
            if not isinstance(record, dict):
                raise TraceError(
                    "%s line %d: trace record must be a JSON object, got %s"
                    % (path, lineno, type(record).__name__)
                )
            if "kind" not in record:
                raise TraceError(
                    "%s line %d: trace record has no 'kind' field" % (path, lineno)
                )
            records.append(record)
    return records


# Re-exported so emit sites and tests can reference the vocabulary
# without importing repro.obs directly.
__all__ = [
    "RESERVED_KEYS",
    "TRACE_SCHEMA",
    "TraceRecord",
    "Tracer",
    "export_records",
    "load_jsonl",
    "write_jsonl",
    "write_record",
]
