"""Deterministic named random streams.

Every stochastic model draws from its own named stream so that adding a
new consumer of randomness never perturbs the draws seen by existing
ones. Stream seeds are derived with SHA-256, so they are stable across
Python versions and interpreter hash randomisation.
"""

import hashlib
import random


def derive_seed(root_seed, name):
    """Derive a 64-bit child seed from ``(root_seed, name)``."""
    digest = hashlib.sha256(("%d:%s" % (root_seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def split_seeds(root_seed, names):
    """Derive one independent 64-bit child seed per name, verified
    pairwise distinct.

    This is the fleet-sharding primitive: every simulated host gets its
    own root seed (``split_seeds(fleet_seed, ["host:0", ...])``), so the
    per-host :class:`RngHub` namespaces can never overlap and the whole
    fleet stays byte-reproducible regardless of how host jobs are
    fanned out. A SHA-256 collision between two 64-bit child seeds is
    astronomically unlikely, but silent stream aliasing would be a
    correctness bug, so it raises instead of being assumed away.
    """
    seeds = {}
    owners = {}
    for name in names:
        seed = derive_seed(root_seed, name)
        clash = owners.get(seed)
        if clash is not None and clash != name:
            raise ValueError(
                "seed collision: %r and %r both derive %d from root %d"
                % (clash, name, seed, root_seed)
            )
        owners[seed] = name
        seeds[name] = seed
    return seeds


class RngHub:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name):
        """A new hub whose streams are independent of this hub's, derived
        from the child name (used to give each VM its own namespace)."""
        return RngHub(derive_seed(self.seed, "fork:%s" % name))
