"""Pending-event queue structures for the simulation engine.

The engine's contract is a total order over ``(time, seq, handle)``
entries: pop must always return the entry with the smallest
``(time, seq)``. Any structure honouring that contract produces
*byte-identical* simulations — which is what lets the far-term backend
be swapped freely and benchmarked honestly
(``benchmarks/test_queue_structures.py`` compares them on the real
event mix captured from a traced fig7 run).

Two backends live here:

:class:`HeapQueue`
    A thin wrapper over ``heapq`` (C-accelerated). O(log n) push/pop
    with tiny constants; the winner at this repo's typical pending
    counts (tens of entries per simulated host).

:class:`CalendarQueue`
    A classic two-level calendar / timer-wheel hybrid: a ring of
    fixed-width buckets for the near term (unsorted until activated,
    then sorted once and drained in one batch — same-deadline events
    cost one sort, not n sifts) plus a far-term overflow heap. O(1)
    amortised push; pop cost amortises the bucket scan. Pays off once
    thousands of timers are pending (fleet-scale simulation), loses to
    the heap below that — see ``docs/performance.md`` for the measured
    crossover.

:class:`~repro.sim.engine.Simulator` additionally keeps a zero-delay
"now lane" *in front of* whichever backend is selected; neither backend
ever sees same-instant trampoline traffic.
"""

import heapq
from bisect import insort


def _entry_live(entry):
    """Liveness predicate shared by both backends' ``compact()``.

    Entries are either ``(time, seq, handle)`` — dead once the handle is
    cancelled — or handle-free process timer waits ``(time, seq,
    process)``, dead once the process's arm token no longer matches the
    entry's seq (the process was interrupted out of the wait).
    """
    obj = entry[2]
    try:
        return not obj.cancelled
    except AttributeError:
        return obj._timer_seq == entry[1]

#: Default calendar geometry: 64 µs buckets × 1024 ≈ 65 ms horizon,
#: sized so one guest scheduling quantum (30 ms) plus slack fits in the
#: ring and micro-slice traffic (100 µs) lands a couple of buckets out.
DEFAULT_BUCKET_WIDTH = 64_000
DEFAULT_NUM_BUCKETS = 1024


class HeapQueue:
    """``heapq`` with the queue-backend protocol (push/peek/pop/...)."""

    __slots__ = ("_heap",)

    def __init__(self):
        self._heap = []

    def push(self, entry):
        heapq.heappush(self._heap, entry)

    def peek(self):
        """Smallest pending entry without consuming it (``None`` when
        empty). May return a cancelled entry — lazy cancellation is the
        caller's business."""
        heap = self._heap
        return heap[0] if heap else None

    def pop(self):
        return heapq.heappop(self._heap)

    def compact(self):
        """Drop cancelled entries in place; returns how many went."""
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if _entry_live(entry)]
        heapq.heapify(heap)
        return before - len(heap)

    def __len__(self):
        return len(self._heap)

    def __iter__(self):
        return iter(self._heap)


class CalendarQueue:
    """Bucketed two-level pending-event structure.

    Entries are ``(time, seq, handle)`` tuples. The near term is a ring
    of ``nbuckets`` buckets of ``width`` ns each; the *active* bucket
    (the one the cursor points at) is kept sorted and drained by index,
    so a same-deadline burst is one Timsort of a nearly-sorted list
    followed by sequential reads. Insertions into the active bucket
    (rare: only delays shorter than the bucket width) bisect into the
    undrained remainder. Everything past the ring horizon waits in an
    overflow heap and is pulled forward bucket-by-bucket as the cursor
    reaches it.
    """

    __slots__ = (
        "width",
        "nbuckets",
        "_buckets",
        "_cursor",
        "_active",
        "_apos",
        "_overflow",
        "_len",
    )

    def __init__(self, width=DEFAULT_BUCKET_WIDTH, nbuckets=DEFAULT_NUM_BUCKETS, start=0):
        if width <= 0 or nbuckets <= 0:
            raise ValueError("calendar queue needs positive width/nbuckets")
        self.width = width
        self.nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        #: Absolute bucket number the cursor is parked on; the ring
        #: covers bucket numbers (cursor, cursor + nbuckets].
        self._cursor = start // width
        self._active = []
        self._apos = 0
        self._overflow = []
        self._len = 0

    def push(self, entry):
        self._len += 1
        bucket = entry[0] // self.width
        cursor = self._cursor
        if bucket <= cursor:
            # Lands in the active (possibly part-drained) bucket: keep
            # the remainder sorted. entry[0] > now always holds, so the
            # insertion point is at or after the drain position.
            insort(self._active, entry, self._apos)
            return
        if bucket - cursor <= self.nbuckets:
            self._buckets[bucket % self.nbuckets].append(entry)
        else:
            heapq.heappush(self._overflow, entry)

    def _activate_next(self):
        """Advance the cursor to the next non-empty bucket and sort it
        (merging in any overflow entries that now fall inside it).
        Returns False when nothing is pending anywhere."""
        if self._len == 0:
            # Avoid an O(nbuckets) scan proving emptiness.
            self._active = []
            self._apos = 0
            return False
        buckets = self._buckets
        nb = self.nbuckets
        overflow = self._overflow
        cursor = self._cursor
        # The first non-empty ring bucket past the cursor is the ring's
        # earliest candidate; the overflow heap's head is the far one.
        ring_bucket = None
        for offset in range(1, nb + 1):
            if buckets[(cursor + offset) % nb]:
                ring_bucket = cursor + offset
                break
        target = ring_bucket
        if overflow:
            far_bucket = overflow[0][0] // self.width
            if target is None or far_bucket < target:
                target = far_bucket
        if target is None:
            return False
        self._cursor = cursor = target
        active = buckets[cursor % nb]
        buckets[cursor % nb] = []
        limit = (cursor + 1) * self.width
        while overflow and overflow[0][0] < limit:
            active.append(heapq.heappop(overflow))
        active.sort()
        self._active = active
        self._apos = 0
        return True

    def peek(self):
        while self._apos >= len(self._active):
            if not self._activate_next():
                return None
        return self._active[self._apos]

    def pop(self):
        entry = self.peek()
        if entry is None:
            raise IndexError("pop from empty CalendarQueue")
        self._apos += 1
        self._len -= 1
        return entry

    def compact(self):
        """Drop cancelled entries from every level, in place."""
        removed = 0
        active = self._active[self._apos :]
        before = len(active)
        active = [entry for entry in active if _entry_live(entry)]
        removed += before - len(active)
        self._active = active
        self._apos = 0
        for index, bucket in enumerate(self._buckets):
            before = len(bucket)
            bucket[:] = [entry for entry in bucket if _entry_live(entry)]
            removed += before - len(bucket)
        overflow = self._overflow
        before = len(overflow)
        overflow[:] = [entry for entry in overflow if _entry_live(entry)]
        heapq.heapify(overflow)
        removed += before - len(overflow)
        self._len -= removed
        return removed

    def __len__(self):
        return self._len

    def __iter__(self):
        yield from self._active[self._apos :]
        for bucket in self._buckets:
            yield from bucket
        yield from self._overflow


#: Queue-backend registry (``REPRO_SIM_QUEUE`` selects one by name).
BACKENDS = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}
