"""Time units for the simulator.

The engine counts **integer nanoseconds**. Integers keep event ordering
exact and make runs bit-reproducible; nanoseconds give enough headroom
that the microsecond-scale costs used throughout the models never need
fractions.
"""

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

#: Sentinel for "no deadline".
FOREVER = None


def us(value):
    """Convert a (possibly fractional) microsecond count to integer ns."""
    return int(value * US)


def ms(value):
    """Convert a (possibly fractional) millisecond count to integer ns."""
    return int(value * MS)


def seconds(value):
    """Convert a (possibly fractional) second count to integer ns."""
    return int(value * SEC)


def to_us(t_ns):
    """Express integer nanoseconds as float microseconds."""
    return t_ns / US


def to_ms(t_ns):
    """Express integer nanoseconds as float milliseconds."""
    return t_ns / MS


def to_seconds(t_ns):
    """Express integer nanoseconds as float seconds."""
    return t_ns / SEC


def fmt(t_ns):
    """Render a nanosecond timestamp with a readable unit.

    >>> fmt(1_500)
    '1.500us'
    >>> fmt(30_000_000)
    '30.000ms'
    """
    if t_ns is None:
        return "forever"
    if abs(t_ns) >= SEC:
        return "%.3fs" % (t_ns / SEC)
    if abs(t_ns) >= MS:
        return "%.3fms" % (t_ns / MS)
    if abs(t_ns) >= US:
        return "%.3fus" % (t_ns / US)
    return "%dns" % t_ns
