"""Waitable events for the generator-based process model.

An :class:`Event` is a one-shot trigger that processes can wait on by
yielding it. :class:`Timeout` is an event pre-armed to fire after a
delay. Both are deliberately minimal: richer synchronisation (locks,
IPIs, runqueues) is modelled explicitly by the hypervisor/guest layers
rather than hidden in the engine.

Hot-path notes: both classes use ``__slots__``; the waiter list is
stored lazily (``None`` → a bare callback → a list) because the
overwhelmingly common case is exactly one waiter — a process blocked on
its own timeout — and allocating a list per wait shows up at the
engine's event rates. Trigger fan-out rides the simulator's zero-delay
now lane (:meth:`Simulator._schedule_now <repro.sim.engine.Simulator>`)
so resuming a waiter costs a FIFO append, not a heap sift plus a
handle allocation.
"""

from ..errors import SimulationError

#: Event states.
PENDING = "pending"
TRIGGERED = "triggered"


class Event:
    """A one-shot waitable value.

    Processes wait by yielding the event; :meth:`trigger` resumes every
    waiter at the current simulation time with ``value``. Triggering an
    already-triggered event raises :class:`SimulationError` — silent
    double-triggers hide protocol bugs in the models above.
    """

    __slots__ = ("sim", "value", "_state", "_callbacks", "name")

    def __init__(self, sim, name=""):
        self.sim = sim
        self.value = None
        self.name = name
        self._state = PENDING
        #: None (no waiters), a single callback, or a list of them.
        self._callbacks = None

    @property
    def triggered(self):
        return self._state == TRIGGERED

    def trigger(self, value=None):
        """Fire the event, waking all waiters at the current time."""
        if self._state == TRIGGERED:
            raise SimulationError("event %r triggered twice" % (self.name,))
        self._state = TRIGGERED
        self.value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            schedule_now = self.sim._schedule_now
            if callbacks.__class__ is list:
                for callback in callbacks:
                    schedule_now(callback, self)
            else:
                schedule_now(callbacks, self)
        return self

    def add_callback(self, callback):
        """Register ``callback(event)``; runs immediately (as a scheduled
        zero-delay event) if the event already fired."""
        if self._state == TRIGGERED:
            self.sim._schedule_now(callback, self)
            return
        callbacks = self._callbacks
        if callbacks is None:
            self._callbacks = callback
        elif callbacks.__class__ is list:
            callbacks.append(callback)
        else:
            self._callbacks = [callbacks, callback]

    def discard_callback(self, callback):
        """Remove a registered callback if still pending."""
        callbacks = self._callbacks
        if callbacks is None:
            return
        if callbacks.__class__ is list:
            try:
                callbacks.remove(callback)
            except ValueError:
                pass
        elif callbacks == callback:
            self._callbacks = None

    def __repr__(self):
        return "<Event %s %s>" % (self.name or hex(id(self)), self._state)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay", "_handle")

    def __init__(self, sim, delay, value=None, name=""):
        if delay < 0:
            raise SimulationError("negative timeout delay %r" % (delay,))
        # Inlined Event.__init__ — this constructor runs once per
        # process wait, the hottest allocation site in the engine.
        self.sim = sim
        self.value = None
        self.name = name or "timeout"
        self._state = PENDING
        self._callbacks = None
        self.delay = delay
        self._handle = sim.schedule(delay, self._fire, value)

    def _fire(self, value):
        if self._state == PENDING:
            self.trigger(value)

    def cancel(self):
        """Prevent the timeout from firing (no-op if already fired)."""
        self._handle.cancel()


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` is the first interrupt cause; if several interrupts land
    before the process resumes they are coalesced and every cause is
    available in ``causes``.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
        self.causes = [cause]

    def add_cause(self, cause):
        self.causes.append(cause)

    def __repr__(self):
        return "Interrupt(%r)" % (self.cause,)
