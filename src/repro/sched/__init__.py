"""repro.sched — pluggable scheduler backends.

The normal cpupool's scheduler is a :class:`~repro.sched.base.Scheduler`
backend resolved by name through :mod:`repro.sched.registry`. ``credit``
(Xen credit1) is the default and the paper's baseline; the alternatives
model the VTD mitigations the paper compares against (see
``docs/schedulers.md`` and the ``baselines`` experiment):

========== ===========================================================
name       models
========== ===========================================================
credit     Xen credit1 (baseline; BOOST, yield flag, work stealing)
credit2    Xen credit2-style (global runqueues, no BOOST)
cosched    co-/gang scheduling (gang runs together, pCPUs gang-idle)
balance    balance scheduling, EuroSys'11 (sibling-disjoint placement)
shortslice short-slice-everywhere, MICRO'14 (100 us slice on all cores)
========== ===========================================================

The micro pool's :class:`~repro.sched.micro.MicroScheduler` is not a
registry backend: it always drives the micro pool, whatever the normal
pool runs.
"""

from .balance import BalanceScheduler
from .base import BOOST, OVER, PRIORITY_NAMES, UNDER, Scheduler
from .cosched import CoScheduler
from .credit import CreditScheduler
from .credit2 import Credit2Scheduler
from .micro import MicroScheduler
from .registry import available, describe, get, register
from .shortslice import ShortSliceScheduler

__all__ = [
    "BOOST",
    "UNDER",
    "OVER",
    "PRIORITY_NAMES",
    "Scheduler",
    "CreditScheduler",
    "Credit2Scheduler",
    "CoScheduler",
    "BalanceScheduler",
    "ShortSliceScheduler",
    "MicroScheduler",
    "register",
    "get",
    "available",
    "describe",
]
