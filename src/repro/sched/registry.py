"""Name → class registry for scheduler backends.

Backends self-register with the :func:`register` decorator; anything
that constructs a hypervisor resolves the configured name through
:func:`get`. An unknown name raises :class:`~repro.errors.ConfigError`
(a ``ReproError``, so the CLI reports it and exits 2).
"""

from ..errors import ConfigError

_BACKENDS = {}


def register(cls):
    """Class decorator: make ``cls`` selectable by its ``name``."""
    name = cls.name
    if not name:
        raise ConfigError("scheduler backend %r has no name" % cls.__name__)
    if name in _BACKENDS and _BACKENDS[name] is not cls:
        raise ConfigError(
            "scheduler backend name %r already registered by %r"
            % (name, _BACKENDS[name].__name__)
        )
    _BACKENDS[name] = cls
    return cls


def get(name):
    """Resolve a backend class by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigError(
            "unknown scheduler %r (available: %s)"
            % (name, ", ".join(sorted(_BACKENDS)))
        ) from None


def available():
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def describe():
    """``[(name, description), ...]`` for ``repro schedulers``."""
    return [(name, _BACKENDS[name].description) for name in sorted(_BACKENDS)]
