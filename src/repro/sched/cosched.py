"""Co-scheduling (gang scheduling) of a domain's sibling vCPUs.

The classic VTD mitigation (VMware's relaxed co-scheduling descends
from it): schedule *all* vCPUs of a domain in the same time window, so
no sibling ever spins on a lock whose holder is descheduled — lock
holders and IPI targets are always running while the gang is on. The
cost the paper's §2.3 points at is **CPU fragmentation**: when the gang
does not fill every pCPU (fewer runnable siblings than cores, or a
sibling is blocked), the leftover pCPUs sit idle rather than run
another domain. The model counts each such refusal (``gang_idles`` /
the ``gang_idle`` counter and trace kind).

Model: round-robin over domains. The active domain ("the gang") owns
every pCPU of the pool for one gang window; picks come only from the
gang's queue. Rotation preempts stragglers from the previous gang and
tickles idle pCPUs.
"""

from .base import OVER, UNDER, Scheduler
from .registry import register


@register
class CoScheduler(Scheduler):
    """Gang scheduler: one domain at a time owns the whole pool."""

    name = "cosched"
    description = (
        "co-scheduling: gang-schedule all sibling vCPUs of one domain "
        "per window, idling leftover pCPUs (cuts VTD, pays in "
        "fragmentation)"
    )

    def __init__(self, sim, **kwargs):
        super().__init__(sim, **kwargs)
        self._domq = {}       # domain -> FIFO of runnable vcpus
        self._order = []      # round-robin rotation order (discovery order)
        self._gang = None     # domain currently owning the pool
        self._gang_until = 0
        #: pCPU pick refusals while the gang had no runnable vCPU left
        #: but other domains had queued work — the fragmentation cost.
        self.gang_idles = 0

    # ------------------------------------------------------------------
    # gang rotation
    # ------------------------------------------------------------------
    def _running_members(self, domain):
        pool = self.pool
        if pool is None:
            return False
        for pcpu in pool.pcpus:
            current = pcpu.current
            if current is not None and current.domain is domain:
                return True
        return False

    def _gang_live(self, domain):
        return bool(self._domq.get(domain)) or self._running_members(domain)

    def _active_gang(self):
        gang = self._gang
        if gang is not None and self.sim.now < self._gang_until and self._gang_live(gang):
            return gang
        return self._rotate()

    def _rotate(self):
        """Advance the round-robin to the next domain with work; open a
        new gang window, preempting stragglers and waking idle pCPUs."""
        order = self._order
        if not order:
            return None
        start = 0
        previous = self._gang
        if previous in order:
            start = order.index(previous) + 1
        chosen = None
        for offset in range(len(order)):
            domain = order[(start + offset) % len(order)]
            if self._gang_live(domain):
                chosen = domain
                break
        if chosen is None:
            self._gang = None
            return None
        self._gang = chosen
        self._gang_until = self.sim.now + self.slice
        if chosen is not previous and self.pool is not None:
            for pcpu in self.pool.pcpus:
                current = pcpu.current
                if (
                    current is not None
                    and current.domain is not chosen
                    and not pcpu.preempt_requested
                ):
                    pcpu.request_preempt()
        for pcpu in list(self._idle):
            pcpu.tickle()
        return chosen

    # ------------------------------------------------------------------
    # scheduling entry points
    # ------------------------------------------------------------------
    def pick(self, pcpu):
        gang = self._active_gang()
        if gang is None:
            return None
        queue = self._domq.get(gang)
        vcpu = None
        if queue:
            vcpu = self.take_eligible(queue, lambda v: self._eligible(v, pcpu))
        if vcpu is not None:
            self.trace(
                "sched_switch",
                vcpu=vcpu.name,
                pcpu=pcpu.info.index,
                backend=self.name,
            )
            return vcpu
        # The gang has no runnable vCPU for this pCPU. If another domain
        # has queued work this is gang idling: the pCPU is deliberately
        # left empty rather than run a non-gang vCPU.
        for domain, waiting in self._domq.items():
            if domain is not gang and waiting:
                self.gang_idles += 1
                self.count("gang_idle")
                self.trace("gang_idle", pcpu=pcpu.info.index, domain=gang.name)
                break
        return None

    def enqueue(self, vcpu, boost=False, yielded=False):  # noqa: ARG002 (no BOOST)
        domain = vcpu.domain
        if domain not in self._domq:
            self._domq[domain] = []
            self._order.append(domain)
        vcpu.priority = UNDER if vcpu.credits > 0 else OVER
        vcpu.yield_flag = yielded
        vcpu.runq_pcpu = None
        self._domq[domain].append(vcpu)
        pcpu = self._claim_idle(vcpu)
        if pcpu is not None:
            pcpu.tickle()

    def remove(self, vcpu):
        for queue in self._domq.values():
            try:
                queue.remove(vcpu)
            except ValueError:
                continue
            return True
        return False

    def slice_for(self, vcpu):
        """Run until the gang window closes, so the whole gang is
        descheduled (and rotated) together."""
        if self._gang is not None and vcpu.domain is self._gang:
            return max(1, self._gang_until - self.sim.now)
        return self.slice

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queued(self):
        return [vcpu for queue in self._domq.values() for vcpu in queue]
