"""Balance scheduling (Sukwong & Kim, EuroSys'11).

Keep every vCPU of a domain on a *distinct* pCPU runqueue, without any
gang synchronisation: when siblings never share a runqueue, one sibling
being scheduled can never be the reason another sibling waits, so
self-inflicted lock-holder preemption (a sibling preempting the lock
holder it is spinning on) disappears and the likelihood that all
siblings run concurrently rises — probabilistically approximating
co-scheduling with none of its fragmentation.

The model: credit1 everywhere, except that *placement* avoids stacking
a vCPU onto a runqueue that already holds a sibling. Stacking arises in
practice from work stealing and idle-claim wake placement (both change
``last_pcpu``, so two siblings can end up sharing a home pCPU); once
stacked, a preempted shootdown responder or lock holder sits queued
behind its own sibling and every waiter pays. Two deliberate limits:

* **migration resistance** — a *running* sibling at the home pCPU is
  tolerated (it vacates within a slice; moving away would trade a
  transient overlap for a permanent cache-affinity loss). Only a
  *queued* sibling diverts placement.
* **work conservation** — when every eligible pCPU already involves a
  sibling the vCPU falls back to plain credit placement rather than
  waiting, so balance never idles a core (unlike cosched).

Stealing is intentionally left as credit1's: by the time a pCPU steals,
its own runqueue is empty and its ``current`` is gone, so a
steal-destination sibling check can never fire — the placement path is
where stacking is created and where it is prevented.
"""

from .credit import CreditScheduler
from .registry import register


@register
class BalanceScheduler(CreditScheduler):
    """credit1 with sibling-disjoint placement (balance scheduling)."""

    name = "balance"
    description = (
        "EuroSys'11 balance scheduling: spread each domain's vCPUs over "
        "distinct pCPUs (no sibling self-preemption, no gang idling)"
    )

    def _sibling_queued(self, vcpu, pcpu):
        """Is another vCPU of ``vcpu``'s domain *queued* at ``pcpu``?
        (A running sibling is tolerated at the home pCPU — it will
        vacate within a slice; migrating away from it costs affinity
        for little gain. Xen calls this migration resistance.)"""
        domain = vcpu.domain
        queues = self._runqs.get(pcpu)
        if queues is None:
            return False
        for queue in queues.values():
            for queued in queue:
                if queued is not vcpu and queued.domain is domain:
                    return True
        return False

    def _has_sibling(self, vcpu, pcpu):
        """Is another vCPU of ``vcpu``'s domain running on or queued at
        ``pcpu``?"""
        current = pcpu.current
        if current is not None and current is not vcpu and current.domain is vcpu.domain:
            return True
        return self._sibling_queued(vcpu, pcpu)

    def _place(self, vcpu, priority):
        """Prefer a sibling-free pCPU: last-ran first (cache affinity,
        kept unless a sibling is already queued there), else the
        shallowest fully sibling-free eligible runqueue; fall back to
        plain credit placement when every pCPU already has a sibling."""
        last = vcpu.last_pcpu
        if (
            last is not None
            and last in self._runqs
            and self._eligible(vcpu, last)
            and not self._sibling_queued(vcpu, last)
        ):
            self._runqs[last][priority].append(vcpu)
            vcpu.runq_pcpu = last
            return last
        target = None
        best_depth = None
        for pcpu in self._runqs:
            if not self._eligible(vcpu, pcpu) or self._has_sibling(vcpu, pcpu):
                continue
            depth = self._depth(pcpu)
            if best_depth is None or depth < best_depth:
                target, best_depth = pcpu, depth
        if target is not None:
            self._runqs[target][priority].append(vcpu)
            vcpu.runq_pcpu = target
            return target
        return super()._place(vcpu, priority)
