"""The default backend: a model of Xen's credit1 scheduler.

Faithful behaviours (the ones the paper's pathologies depend on):

* 30 ms default time slice;
* **per-pCPU runqueues**, priority-ordered (BOOST > UNDER > OVER), with
  work stealing only when a pCPU would otherwise idle — so in an
  overcommitted host a descheduled vCPU waits out the slice of whatever
  its local pCPU runs next;
* credits refilled every accounting period in proportion to domain
  weight; priority is UNDER while credits remain, OVER when exhausted;
* **BOOST**: a vCPU that wakes from blocked with credits left enters
  BOOST priority and may preempt a non-BOOST vCPU — but a vCPU that is
  *already runnable* (the mixed-workload case) gets no boost;
* **yield flag** (``csched_vcpu_yield``): a vCPU that yielded (PLE exit
  or voluntary hypercall) is passed over once in favour of anything else
  runnable, even lower priority — this is what makes every yield cost
  up to a full co-runner slice, the heart of the VTD problem;
* a small random slice perturbation models the desynchronisation that
  Xen's 100 Hz ticks and wakeup traffic produce (without it the two VMs
  run in artificial lockstep and no preemption ever lands mid-service).
"""

from ..errors import SchedulerError
from .base import _PRIORITIES, BOOST, OVER, PRIORITY_NAMES, UNDER, Scheduler
from .registry import register

__all__ = ["BOOST", "UNDER", "OVER", "PRIORITY_NAMES", "CreditScheduler"]


@register
class CreditScheduler(Scheduler):
    """Per-pCPU-runqueue credit scheduler for one cpupool."""

    name = "credit"
    description = (
        "Xen credit1: per-pCPU runqueues, 30 ms slice, BOOST on wake, "
        "one-shot yield flag (the paper's baseline)"
    )
    default_jitter = 0.10

    def __init__(self, sim, **kwargs):
        super().__init__(sim, **kwargs)
        self._runqs = {}        # pcpu -> {priority: list of vcpus}

    # ------------------------------------------------------------------
    # runqueue plumbing
    # ------------------------------------------------------------------
    def register_pcpu(self, pcpu):
        self._runqs.setdefault(pcpu, {p: [] for p in _PRIORITIES})

    def unregister_pcpu(self, pcpu):
        """Detach a pCPU, respreading its queued vCPUs."""
        self.remove_idle(pcpu)
        queues = self._runqs.pop(pcpu, None)
        if queues:
            for priority in _PRIORITIES:
                for vcpu in queues[priority]:
                    vcpu.runq_pcpu = None
                    self._place(vcpu, priority)
        return None

    def _depth(self, pcpu):
        queues = self._runqs[pcpu]
        return sum(len(queues[p]) for p in _PRIORITIES)

    def _place(self, vcpu, priority):
        """Insert ``vcpu`` into a pCPU runqueue: last-ran pCPU when
        eligible (cache affinity), else the shallowest eligible queue."""
        target = None
        last = vcpu.last_pcpu
        if last is not None and last in self._runqs and self._eligible(vcpu, last):
            target = last
        if target is None:
            best_depth = None
            for pcpu in self._runqs:
                if not self._eligible(vcpu, pcpu):
                    continue
                depth = self._depth(pcpu)
                if best_depth is None or depth < best_depth:
                    target, best_depth = pcpu, depth
            if target is None:
                raise SchedulerError(
                    "no pCPU in pool %r satisfies affinity of %s"
                    % (self.pool.name if self.pool else "?", vcpu.name)
                )
        self._runqs[target][priority].append(vcpu)
        vcpu.runq_pcpu = target
        return target

    # ------------------------------------------------------------------
    # scheduling entry points
    # ------------------------------------------------------------------
    def pick(self, pcpu):
        """Next vCPU for ``pcpu``: best priority from its own runqueue
        (yield-flagged vCPUs are passed over once), stealing from other
        runqueues only when the local one is empty."""
        vcpu = self._pick_from(pcpu, pcpu)
        if vcpu is not None:
            return vcpu
        # Local queue exhausted: steal rather than idle (work conserving).
        return self.steal(pcpu)

    def steal(self, pcpu):
        for other in self._runqs:
            if other is pcpu:
                continue
            vcpu = self._pick_from(other, pcpu)
            if vcpu is not None:
                self.steals += 1
                self.trace(
                    "sched_steal",
                    vcpu=vcpu.name,
                    from_pcpu=other.info.index,
                    to_pcpu=pcpu.info.index,
                )
                return vcpu
        return None

    def _pick_from(self, owner, runner):
        """Take the best eligible vCPU from ``owner``'s runqueue for
        ``runner`` to execute (yield flag honoured per priority class:
        a yielding vCPU defers to same-priority peers once, but still
        beats lower-priority vCPUs)."""
        queues = self._runqs.get(owner)
        if queues is None:
            return None
        for priority in _PRIORITIES:
            vcpu = self.take_eligible(
                queues[priority], lambda v: self._eligible(v, runner)
            )
            if vcpu is not None:
                return vcpu
        return None

    def enqueue(self, vcpu, boost=False, yielded=False):
        """Queue a runnable vCPU and tickle a pCPU for it."""
        # Xen boosts a waking vCPU whose priority is (still) UNDER; the
        # priority label is sticky between accounting points, so a vCPU
        # that slept before burning through its credits keeps its boost
        # eligibility even if the balance dipped to zero.
        eligible = vcpu.credits > 0 or vcpu.priority in (BOOST, UNDER)
        if boost and eligible:
            priority = BOOST
        else:
            priority = UNDER if vcpu.credits > 0 else OVER
        vcpu.priority = priority
        vcpu.yield_flag = yielded
        trace_on = self.trace_on
        # Prefer an idle pCPU outright (it can run us immediately).
        pcpu = self._claim_idle(vcpu)
        if pcpu is not None:
            self._runqs[pcpu][priority].append(vcpu)
            vcpu.runq_pcpu = pcpu
            if trace_on:
                if priority == BOOST:
                    self.trace("sched_boost", vcpu=vcpu.name, pcpu=pcpu.info.index)
                self.trace(
                    "sched_tickle", vcpu=vcpu.name, pcpu=pcpu.info.index, why="idle"
                )
            pcpu.tickle()
            return
        target = self._place(vcpu, priority)
        if trace_on and priority == BOOST:
            self.trace("sched_boost", vcpu=vcpu.name, pcpu=target.info.index)
        if priority == BOOST:
            current = target.current
            if (
                current is not None
                and not target.preempt_requested
                and current.priority is not None
                and current.priority > BOOST
            ):
                if trace_on:
                    self.trace(
                        "sched_tickle",
                        vcpu=vcpu.name,
                        pcpu=target.info.index,
                        why="boost_preempt",
                    )
                target.request_preempt()

    def remove(self, vcpu):
        """Pull a queued vCPU out (migration to the micro pool).

        Returns ``True`` when the vCPU was found in a runqueue.
        """
        owner = vcpu.runq_pcpu
        candidates = [owner] if owner in self._runqs else list(self._runqs)
        for pcpu in candidates:
            queues = self._runqs[pcpu]
            for priority in _PRIORITIES:
                try:
                    queues[priority].remove(vcpu)
                except ValueError:
                    continue
                vcpu.runq_pcpu = None
                return True
        return False

    def queued(self):
        return [
            vcpu
            for queues in self._runqs.values()
            for priority in _PRIORITIES
            for vcpu in queues[priority]
        ]

    def queue_depth(self):
        return sum(self._depth(pcpu) for pcpu in self._runqs)

    def best_waiting_priority(self, pcpu):
        """Best priority queued on ``pcpu``'s local runqueue; the tick
        uses it to preempt an OVER vCPU when something better waits."""
        queues = self._runqs.get(pcpu)
        if queues is None:
            return None
        for priority in _PRIORITIES:
            for vcpu in queues[priority]:
                if self._eligible(vcpu, pcpu):
                    return priority
        return None

    def on_tick(self, pcpu):
        """credit1's per-pCPU 10 ms tick: preempt an OVER vCPU when
        something better waits on the local runqueue."""
        current = pcpu.current
        if current is not None and not pcpu.preempt_requested:
            best = self.best_waiting_priority(pcpu)
            if (
                best is not None
                and current.priority is not None
                and current.priority > best
            ):
                pcpu.request_preempt()

    # ------------------------------------------------------------------
    # credit accounting
    # ------------------------------------------------------------------
    def account(self, domains, num_pcpus):
        super().account(domains, num_pcpus)
        self._rebucket_queued()

    def _rebucket_queued(self):
        """Refresh the priority class of queued vCPUs after an
        accounting refill (csched_acct updates every vCPU's priority,
        not just running ones -- otherwise a vCPU queued as OVER starves
        behind an UNDER co-runner forever)."""
        for queues in self._runqs.values():
            for priority in (UNDER, OVER):
                queue = queues[priority]
                for vcpu in list(queue):
                    wanted = UNDER if vcpu.credits > 0 else OVER
                    if wanted != priority:
                        queue.remove(vcpu)
                        queues[wanted].append(vcpu)
                        vcpu.priority = wanted
