"""Short-slice-everywhere: the MICRO'14 mitigation.

Identical to credit1 except the time slice is globally shortened to the
micro-slice (100 µs) on *every* core. Spinner symptoms shrink (a
preempted lock holder is rescheduled within micro-seconds), but every
workload — including throughput-oriented co-runners that want long
slices for cache warmth — now pays the context-switch and cache-refill
tax. The ``baselines`` experiment shows the corunner throughput cost
the paper's §2.3 argues against; the micro-sliced *pool* design keeps
short slices only where they help.

This backend subsumes the old ``normal_slice`` override hack that
``ablations.run_fixed_microslice`` used.
"""

from ..sim.time import us
from .credit import CreditScheduler
from .registry import register


@register
class ShortSliceScheduler(CreditScheduler):
    """credit1 with a 100 µs slice on every core (MICRO'14 design)."""

    name = "shortslice"
    description = (
        "credit1 with a 100 us slice everywhere (MICRO'14 "
        "short-slice-everywhere; cuts VTD but taxes all co-runners)"
    )
    default_slice = us(100)
