"""A credit2-style backend (Xen's successor scheduler).

The design points that distinguish it from credit1, as modelled here:

* **global (well, dual) runqueues** instead of per-pCPU ones — pCPUs
  with even/odd indices share a runqueue, approximating credit2's
  one-runqueue-per-L2/socket layout, so imbalance between individual
  pCPUs cannot strand a runnable vCPU behind one busy core;
* runqueues are **ordered by remaining credit** (most credit first)
  rather than by a 3-level priority band;
* **no BOOST**: a waking vCPU gets no special priority and never
  preempts mid-slice, which removes credit1's boost-driven preemption
  storms but also its I/O-latency advantage;
* **weighted burn** instead of weighted refill: every vCPU is refilled
  equally, but heavier domains burn credit more slowly
  (``runtime * 256 / weight``), which is how credit2 expresses weight.

The yield flag behaves as in credit1 (pass over once), so the VTD
pathologies the paper targets remain: a yield still donates the pCPU
for an arbitrary co-runner slice.
"""

from .base import OVER, UNDER, Scheduler
from .registry import register


@register
class Credit2Scheduler(Scheduler):
    """Dual global runqueues, credit-ordered, no BOOST."""

    name = "credit2"
    description = (
        "Xen credit2-style: dual global runqueues ordered by credit, "
        "weighted burn rate, no BOOST priority"
    )
    default_jitter = 0.10

    def __init__(self, sim, **kwargs):
        super().__init__(sim, **kwargs)
        self._queues = ([], [])   # two global runqueues (even/odd pCPUs)
        self._pcpus = []
        self._rr = 0              # round-robin for history-less placement

    # ------------------------------------------------------------------
    # pCPU membership
    # ------------------------------------------------------------------
    def register_pcpu(self, pcpu):
        if pcpu not in self._pcpus:
            self._pcpus.append(pcpu)

    def unregister_pcpu(self, pcpu):
        self.remove_idle(pcpu)
        if pcpu in self._pcpus:
            self._pcpus.remove(pcpu)
        return None

    def _queue_of(self, pcpu):
        return self._queues[pcpu.info.index % len(self._queues)]

    def _home_queue(self, vcpu):
        last = vcpu.last_pcpu
        if last is not None:
            return self._queues[last.info.index % len(self._queues)]
        self._rr += 1
        return self._queues[self._rr % len(self._queues)]

    @staticmethod
    def _insert(queue, vcpu):
        """Credit-ordered insert (most credit first; FIFO among equal)."""
        position = len(queue)
        for index, other in enumerate(queue):
            if other.credits < vcpu.credits:
                position = index
                break
        queue.insert(position, vcpu)
        vcpu.runq_pcpu = None

    # ------------------------------------------------------------------
    # scheduling entry points
    # ------------------------------------------------------------------
    def enqueue(self, vcpu, boost=False, yielded=False):  # noqa: ARG002 (no BOOST)
        vcpu.priority = UNDER if vcpu.credits > 0 else OVER
        vcpu.yield_flag = yielded
        self._insert(self._home_queue(vcpu), vcpu)
        pcpu = self._claim_idle(vcpu)
        if pcpu is not None:
            self.trace(
                "sched_tickle", vcpu=vcpu.name, pcpu=pcpu.info.index, why="idle"
            )
            pcpu.tickle()

    def pick(self, pcpu):
        vcpu = self.take_eligible(
            self._queue_of(pcpu), lambda v: self._eligible(v, pcpu)
        )
        if vcpu is None:
            vcpu = self.steal(pcpu)
        if vcpu is not None:
            self.trace(
                "sched_switch",
                vcpu=vcpu.name,
                pcpu=pcpu.info.index,
                backend=self.name,
            )
        return vcpu

    def steal(self, pcpu):
        mine = self._queue_of(pcpu)
        for queue in self._queues:
            if queue is mine:
                continue
            vcpu = self.take_eligible(queue, lambda v: self._eligible(v, pcpu))
            if vcpu is not None:
                self.steals += 1
                self.trace(
                    "sched_steal",
                    vcpu=vcpu.name,
                    from_pcpu=-1,  # global runqueue, no owning pCPU
                    to_pcpu=pcpu.info.index,
                )
                return vcpu
        return None

    def remove(self, vcpu):
        for queue in self._queues:
            try:
                queue.remove(vcpu)
            except ValueError:
                continue
            vcpu.runq_pcpu = None
            return True
        return False

    # ------------------------------------------------------------------
    # credit economy: equal refill, weighted burn
    # ------------------------------------------------------------------
    def charge(self, vcpu, runtime):
        vcpu.credits -= runtime * 256 // self._weight_of(vcpu)

    def account(self, domains, num_pcpus):
        total_vcpus = sum(len(d.vcpus) for d in domains)
        if not total_vcpus:
            return
        budget = self.period * num_pcpus
        per_vcpu = budget // total_vcpus
        for domain in domains:
            for vcpu in domain.vcpus:
                vcpu.credits = min(self.credit_cap, vcpu.credits + per_vcpu)
        self._resort()

    def _resort(self):
        """Restore credit order (and priority labels) after a refill."""
        for queue in self._queues:
            queue.sort(key=lambda v: -v.credits)   # stable: FIFO among equal
            for vcpu in queue:
                vcpu.priority = UNDER if vcpu.credits > 0 else OVER

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queued(self):
        return [vcpu for queue in self._queues for vcpu in queue]

    def best_waiting_priority(self, pcpu):
        for vcpu in self._queue_of(pcpu):
            if self._eligible(vcpu, pcpu):
                return vcpu.priority
        return None
