"""The scheduler-backend interface.

A :class:`Scheduler` drives one :class:`~repro.hypervisor.cpupool.CpuPool`:
pCPU executors call :meth:`pick`/:meth:`slice_for`, the hypervisor's
wake/deschedule paths call :meth:`enqueue`/:meth:`requeue`/:meth:`wake`/
:meth:`remove`, and the periodic loops call :meth:`account` and
:meth:`on_tick`. Concrete backends live in sibling modules and register
themselves in :mod:`repro.sched.registry`; the shared plumbing here —
idle-pCPU bookkeeping, the one-shot yield-flag pass-over, affinity
eligibility, credit refill, slice jitter, trace emission — used to be
copy-pasted between ``CreditScheduler`` and ``MicroScheduler`` and is
now written once.

Contract highlights (the cross-backend invariants the test suite
asserts for every registered backend):

* a runnable vCPU sits on exactly one runqueue — ``pick``/``remove``
  take it off, ``enqueue``/``requeue``/``wake`` put it back;
* :meth:`account` hands out at most one accounting period's worth of
  pCPU time per call, and never lifts a vCPU above ``credit_cap``;
* a vCPU queued with ``yielded=True`` is passed over exactly once in
  favour of another eligible vCPU, then competes normally;
* ``pick`` is work conserving (no pCPU idles while stealable work
  waits) unless the backend documents otherwise
  (:class:`~repro.sched.cosched.CoScheduler` gang-idles by design).
"""

from ..errors import SchedulerError
from ..sim.time import ms

#: Priorities, best first (credit1 vocabulary; backends that do not use
#: priority classes still label vCPUs UNDER/OVER for introspection).
BOOST = 0
UNDER = 1
OVER = 2

PRIORITY_NAMES = {BOOST: "boost", UNDER: "under", OVER: "over"}
_PRIORITIES = (BOOST, UNDER, OVER)


class Scheduler:
    """Base class for cpupool scheduler backends."""

    #: Registry name (None = not a selectable normal-pool backend).
    name = None
    #: One-line description shown by ``repro schedulers``.
    description = ""
    #: Defaults a subclass may override.
    default_slice = ms(30)
    default_jitter = 0.0

    def __init__(
        self,
        sim,
        slice_ns=None,
        period_ns=None,
        credit_cap_periods=2,
        rng=None,
        slice_jitter=None,
        tick_ns=None,
        tracer=None,
    ):
        self.sim = sim
        self.tracer = tracer
        self.slice = self.default_slice if slice_ns is None else slice_ns
        self.period = ms(30) if period_ns is None else period_ns
        #: Cadence of the hypervisor's per-pCPU tick loop (credit1 runs
        #: its scheduler at every 10 ms tick).
        self.tick = ms(10) if tick_ns is None else tick_ns
        self.credit_cap = credit_cap_periods * self.period
        self._rng = rng
        self.slice_jitter = self.default_jitter if slice_jitter is None else slice_jitter
        self.pool = None
        #: Optional :class:`~repro.hypervisor.stats.HvStats` hook; the
        #: hypervisor attaches its own so backend-specific events (gang
        #: idling, steals) land in the run's counters.
        self.stats = None
        self._idle = []
        self.steals = 0

    # ------------------------------------------------------------------
    # pCPU membership
    # ------------------------------------------------------------------
    def register_pcpu(self, pcpu):
        """A pCPU joined this scheduler's pool."""

    def unregister_pcpu(self, pcpu):
        """Detach a pCPU; returns a stranded pending vCPU, if any."""
        self.remove_idle(pcpu)
        return None

    # ------------------------------------------------------------------
    # scheduling entry points (executor / hypervisor facing)
    # ------------------------------------------------------------------
    def pick(self, pcpu):
        """Next vCPU for ``pcpu`` (dequeued), or None to idle."""
        raise NotImplementedError

    def enqueue(self, vcpu, boost=False, yielded=False):
        """Queue a runnable vCPU and tickle a pCPU for it."""
        raise NotImplementedError

    def requeue(self, vcpu, yielded=False):
        """Re-queue after a slice end or yield (no boost — boost is
        consumed by being scheduled once)."""
        self.enqueue(vcpu, boost=False, yielded=yielded)

    def wake(self, vcpu):
        """Queue a vCPU waking from blocked (the BOOST path where the
        backend has one)."""
        self.enqueue(vcpu, boost=True)

    def assign(self, vcpu):
        """Place a migrated vCPU directly (slot schedulers only)."""
        raise SchedulerError(
            "%s does not accept direct vCPU assignment" % type(self).__name__
        )

    def remove(self, vcpu):
        """Pull a queued vCPU out (e.g. migration to the micro pool).
        Returns ``True`` when the vCPU was found in a runqueue."""
        raise NotImplementedError

    def steal(self, pcpu):
        """Work stealing: take a vCPU queued elsewhere for ``pcpu`` to
        run. Backends without stealing return None."""
        return None

    # ------------------------------------------------------------------
    # periodic hooks (hypervisor loops)
    # ------------------------------------------------------------------
    def account(self, domains, num_pcpus):
        """Periodic credit refill (one accounting period's worth of pCPU
        time, split by domain weight, then evenly inside the domain)."""
        total_weight = sum(d.weight for d in domains) or 1
        budget = self.period * num_pcpus
        for domain in domains:
            share = budget * domain.weight // total_weight
            if not domain.vcpus:
                continue
            per_vcpu = share // len(domain.vcpus)
            for vcpu in domain.vcpus:
                vcpu.credits = min(self.credit_cap, vcpu.credits + per_vcpu)

    def on_tick(self, pcpu):
        """Per-pCPU scheduler tick (tick-granularity preemption where
        the backend wants it)."""

    def charge(self, vcpu, runtime):
        vcpu.credits -= runtime

    def slice_for(self, vcpu):
        if self._rng is None or not self.slice_jitter:
            return self.slice
        spread = 1.0 + self.slice_jitter * (2.0 * self._rng.random() - 1.0)
        return int(self.slice * spread)

    # ------------------------------------------------------------------
    # introspection (tests / invariants)
    # ------------------------------------------------------------------
    def queued(self):
        """Every vCPU currently sitting on a runqueue."""
        return []

    def queue_depth(self):
        return len(self.queued())

    def best_waiting_priority(self, pcpu):
        return None

    # ------------------------------------------------------------------
    # idling (shared bookkeeping — was copy-pasted per scheduler)
    # ------------------------------------------------------------------
    def add_idle(self, pcpu):
        if pcpu not in self._idle:
            self._idle.append(pcpu)

    def remove_idle(self, pcpu):
        try:
            self._idle.remove(pcpu)
        except ValueError:
            pass

    def _claim_idle(self, vcpu):
        """Pop and return the first idle pCPU eligible for ``vcpu``
        (it can run the vCPU immediately), or None."""
        for position, pcpu in enumerate(self._idle):
            if self._eligible(vcpu, pcpu):
                del self._idle[position]
                return pcpu
        return None

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _eligible(self, vcpu, pcpu):
        return vcpu.affinity is None or pcpu.info.index in vcpu.affinity

    @staticmethod
    def _weight_of(vcpu):
        return getattr(vcpu.domain, "weight", 256) or 1

    def take_eligible(self, queue, eligible):
        """Take the first eligible vCPU from ``queue`` (a list, best
        first), honouring the one-shot yield flag.

        Yield-flag semantics follow csched_vcpu_yield: a yielding vCPU
        defers to eligible peers in the same queue once — the flag is
        cleared the first time the vCPU is passed over (or when it runs
        because nothing else was eligible). A spinner therefore keeps
        burning its share in spin/yield cycles instead of silently
        donating it to the other VM.
        """
        flagged = None
        skipped = []
        for position, vcpu in enumerate(queue):
            if not eligible(vcpu):
                continue
            if vcpu.yield_flag:
                skipped.append(vcpu)
                if flagged is None:
                    flagged = vcpu
                continue
            del queue[position]
            vcpu.runq_pcpu = None
            # Same-queue vCPUs we passed over were "skipped once".
            for passed in skipped:
                passed.yield_flag = False
            return vcpu
        if flagged is not None:
            queue.remove(flagged)
            flagged.runq_pcpu = None
            flagged.yield_flag = False
            return flagged
        return None

    def trace(self, kind, **fields):
        """Emit a trace record when tracing is on (one attribute check
        when it is not)."""
        tracer = self.tracer
        if tracer is not None:
            emit = tracer.want(kind)
            if emit is not None:
                emit(**fields)

    @property
    def trace_on(self):
        tracer = self.tracer
        return tracer is not None and tracer.enabled

    def count(self, counter, amount=1):
        """Bump a hypervisor-wide counter when stats are attached (they
        are in every real run; unit tests may run detached)."""
        if self.stats is not None:
            self.stats.counters.inc(counter, amount)
