"""The micro-sliced pool's slot scheduler.

Per-pCPU runqueues capped at one vCPU (§5 of the paper),
sub-millisecond slice, no boosting, no load balancing, no credit
charging (a micro-sliced vCPU's credits are managed by the parent
pool's master, per the paper's implementation). Not a selectable
normal-pool backend — the micro pool always uses it; it subclasses
:class:`~repro.sched.base.Scheduler` so the CpuPool/executor machinery
is uniform across pools.
"""

from ..errors import SchedulerError
from .base import Scheduler


class MicroScheduler(Scheduler):
    """Micro-pool scheduler: one-vCPU slots, no boosting, no stealing."""

    name = None  # internal: not selectable via --scheduler
    description = "micro-sliced pool slot scheduler (one vCPU per pCPU)"

    def __init__(self, sim, slice_ns):
        super().__init__(sim, slice_ns=slice_ns, slice_jitter=0)
        self._slots = {}   # pcpu -> pending vcpu (not running yet)

    def register_pcpu(self, pcpu):
        self._slots.setdefault(pcpu, None)

    def unregister_pcpu(self, pcpu):
        """Drop a pCPU from the pool; returns any vCPU stranded in its
        slot so the caller can send it home."""
        self.remove_idle(pcpu)
        return self._slots.pop(pcpu, None)

    def has_free_slot(self):
        return any(v is None for v in self._slots.values())

    def free_slots(self):
        return sum(1 for v in self._slots.values() if v is None)

    def assign(self, vcpu):
        """Place a migrated vCPU into a free slot; returns ``False`` when
        every runqueue already holds its one allowed vCPU."""
        target = None
        for pcpu in self._idle:
            if self._slots.get(pcpu) is None:
                target = pcpu
                break
        if target is None:
            for pcpu, pending in self._slots.items():
                if pending is None and pcpu.current is None:
                    target = pcpu
                    break
        if target is None:
            for pcpu, pending in self._slots.items():
                if pending is None:
                    target = pcpu
                    break
        if target is None:
            return False
        self._slots[target] = vcpu
        if target in self._idle:
            self._idle.remove(target)
            target.tickle()
        return True

    def pick(self, pcpu):
        vcpu = self._slots.get(pcpu)
        if vcpu is not None:
            self._slots[pcpu] = None
        return vcpu

    def enqueue(self, vcpu, boost=False, yielded=False):  # noqa: ARG002
        raise SchedulerError("vCPUs cannot be enqueued directly on the micro pool")

    def remove(self, vcpu):
        for pcpu, pending in self._slots.items():
            if pending is vcpu:
                self._slots[pcpu] = None
                return True
        return False

    def charge(self, vcpu, runtime):
        # Credits are managed by the parent pool's master (per the
        # paper's implementation); the micro pool burns none.
        pass

    def queued(self):
        return [vcpu for vcpu in self._slots.values() if vcpu is not None]
