"""Declarative fault plans.

A :class:`FaultPlan` is a seed-deterministic, JSON-loadable description
of every failure a run should suffer: *what* breaks (the fault kind),
*when* (a simulation-time window or instant), and *how hard* (kind
parameters such as a drop probability or a pCPU index). Plans carry no
live state — the :class:`~repro.faults.inject.FaultInjector` compiles
one into DES events at scenario build time — so the same plan dict can
ride inside a :class:`~repro.runner.jobs.SimJob` spec, hash into the
result-cache key, and rebuild identically in a worker process.

Times are expressed in milliseconds in the human-facing JSON
(``at_ms``/``until_ms``) and normalised to integer nanoseconds here, so
a plan's canonical dict form is stable regardless of how it was
written.
"""

import dataclasses
import json

from ..errors import FaultError
from ..sim.time import ms, us

#: Known fault kinds and the parameter defaults each accepts. A spec
#: may override any default; unknown parameters are rejected so typos
#: in hand-written plans fail loudly instead of silently not injecting.
FAULT_KINDS = {
    # Guest symbol tables: IP classification degrades (§4.1 input).
    #   mode="miss"    -> resolution unavailable (detector falls back)
    #   mode="corrupt" -> resolution returns the wrong symbol
    "symbol_table": {"mode": "miss", "domain": None},
    # IPI transport: messages are dropped (and re-sent by the
    # hypervisor) or delayed on the wire.
    "ipi_drop": {"prob": 0.1, "max_resends": 3, "resend_ns": int(us(200))},
    "ipi_delay": {"prob": 1.0, "delay_ns": int(us(50))},
    # pCPU hotplug: a core leaves / rejoins the host.
    "pcpu_offline": {"pcpu": None},
    "pcpu_online": {"pcpu": None},
    # Algorithm-1 inputs: profile windows report stale event counts.
    "stale_profile": {},
    # PLE misconfiguration: the spin-budget window is overridden
    # (0 = PLE disabled, i.e. unbounded spinning).
    "ple_misconfig": {"window": 0},
    # cpupool management: set_micro_cores requests are refused.
    "poolmove_fail": {"prob": 1.0},
}

#: Kinds that describe an instant rather than a window (``until_ms`` is
#: meaningless for them).
INSTANT_KINDS = frozenset({"pcpu_offline", "pcpu_online"})


@dataclasses.dataclass
class FaultSpec:
    """One scheduled fault: kind, activation window, parameters."""

    kind: str
    at_ns: int
    until_ns: int = None  # None for instant kinds / open-ended windows
    params: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        defaults = FAULT_KINDS.get(self.kind)
        if defaults is None:
            raise FaultError(
                "unknown fault kind %r (known: %s)"
                % (self.kind, ", ".join(sorted(FAULT_KINDS)))
            )
        unknown = set(self.params) - set(defaults)
        if unknown:
            raise FaultError(
                "fault %r does not accept parameters %s"
                % (self.kind, sorted(unknown))
            )
        if self.at_ns <= 0:
            raise FaultError(
                "fault %r must activate at a strictly positive time "
                "(at_ns=%r)" % (self.kind, self.at_ns)
            )
        if self.until_ns is not None:
            if self.kind in INSTANT_KINDS:
                raise FaultError("fault %r is instantaneous; drop until_ms" % self.kind)
            if self.until_ns <= self.at_ns:
                raise FaultError(
                    "fault %r window is empty (at=%d until=%d)"
                    % (self.kind, self.at_ns, self.until_ns)
                )
        merged = dict(defaults)
        merged.update(self.params)
        self.params = merged

    def to_dict(self):
        payload = {"kind": self.kind, "at_ns": int(self.at_ns), "params": self.params}
        if self.until_ns is not None:
            payload["until_ns"] = int(self.until_ns)
        return payload


class FaultPlan:
    """A named, ordered collection of :class:`FaultSpec` entries."""

    def __init__(self, name, specs=(), description="", seed_salt=0):
        self.name = name
        self.description = description
        self.seed_salt = int(seed_salt)
        self.specs = list(specs)

    def add(self, kind, at_ns, until_ns=None, **params):
        self.specs.append(FaultSpec(kind, at_ns, until_ns, params))
        return self

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def empty(self):
        return not self.specs

    def to_dict(self):
        """Canonical JSON-native form — the cache-key identity."""
        return {
            "name": self.name,
            "description": self.description,
            "seed_salt": self.seed_salt,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def canonical(self):
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a plan from :meth:`to_dict` output or from the
        human-facing JSON schema (``at_ms``/``until_ms`` accepted)."""
        if not isinstance(payload, dict):
            raise FaultError("fault plan must be a JSON object, got %r" % type(payload))
        extra = set(payload) - {"name", "description", "seed_salt", "faults"}
        if extra:
            raise FaultError("unknown fault plan keys %s" % sorted(extra))
        plan = cls(
            payload.get("name", "unnamed"),
            description=payload.get("description", ""),
            seed_salt=payload.get("seed_salt", 0),
        )
        entries = payload.get("faults", [])
        if not isinstance(entries, list):
            raise FaultError("'faults' must be a list of fault entries")
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict) or "kind" not in entry:
                raise FaultError("fault entry %d is missing its 'kind'" % index)
            entry = dict(entry)
            kind = entry.pop("kind")
            at_ns = _take_time(entry, "at", index, required=True)
            until_ns = _take_time(entry, "until", index, required=False)
            # Parameters may be nested (canonical to_dict form) or flat
            # (hand-written JSON); both spell the same spec.
            params = entry.pop("params", {})
            if not isinstance(params, dict):
                raise FaultError("fault entry %d: 'params' must be an object" % index)
            params.update(entry)
            plan.add(kind, at_ns, until_ns, **params)
        return plan

    @classmethod
    def from_json(cls, text):
        try:
            payload = json.loads(text)
        except ValueError as err:
            raise FaultError("fault plan is not valid JSON: %s" % err) from None
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as err:
            raise FaultError("cannot read fault plan %s: %s" % (path, err)) from None
        return cls.from_json(text)

    def __repr__(self):
        return "<FaultPlan %s faults=%d>" % (self.name, len(self.specs))


def _take_time(entry, stem, index, required):
    """Pop ``<stem>_ns`` or ``<stem>_ms`` from a raw plan entry."""
    ns_key, ms_key = stem + "_ns", stem + "_ms"
    if ns_key in entry and ms_key in entry:
        raise FaultError(
            "fault entry %d gives both %s and %s" % (index, ns_key, ms_key)
        )
    if ns_key in entry:
        return int(entry.pop(ns_key))
    if ms_key in entry:
        return int(ms(entry.pop(ms_key)))
    if required:
        raise FaultError("fault entry %d needs %s or %s" % (index, ms_key, ns_key))
    return None
