"""Post-run invariant checking for (faulted) systems.

Fault injection is only trustworthy if the simulation remains *sane*
under it: a dropped IPI must degrade throughput, not wedge a vCPU
forever. This module asserts the conservation properties that must
survive every fault plan:

* **runstate conservation** — each vCPU's running/runnable/blocked/
  offline times sum exactly to its elapsed window (the PR-3 ledger);
* **no permanent runnable starvation** — no vCPU has been sitting
  runnable-but-not-running continuously for longer than the starvation
  bound (a stuck scheduler or a lost wakeup shows up here);
* **IPI completion accounting** — every relayed IPI op either
  completed (possibly via a forced timeout acknowledgement, which the
  injector counts as dropped) or is younger than the in-flight grace
  period;
* **pool membership consistency** — every pCPU is in exactly the pool
  it claims membership of, offline pCPUs are in none, and the pool
  census matches the host topology.

:func:`check_system` returns human-readable violation strings (empty
means all invariants hold); :func:`assert_invariants` raises
:class:`~repro.errors.FaultError` instead. Both work on healthy
systems too — the checks are properties of the simulator, not of the
fault subsystem.
"""

from ..errors import FaultError
from ..obs.runstate import validate
from ..sim.time import ms

#: A vCPU continuously runnable for longer than this many normal-pool
#: slices counts as starved (credit1's slice is 30 ms; 2:1 overcommit
#: queues are drained far faster than 10 slices).
STARVATION_SLICES = 10

#: Minimum absolute starvation bound, whatever the slice length.
STARVATION_FLOOR = ms(100)

def _slice_bound(hv):
    """The shared "permanently stuck" bound: several normal-pool slices.
    Under 2:1 overcommit a runnable vCPU — and therefore a delivered but
    not-yet-executed IPI handler — can legitimately wait a full credit
    slice behind the co-runner; only multiples of that indicate a wedge
    (the paper's premise is that one-slice IPI latencies are *normal*
    for the baseline, just disastrous for performance)."""
    return max(STARVATION_SLICES * hv.normal_pool.scheduler.slice, STARVATION_FLOOR)


def check_system(system, starvation_ns=None, ipi_grace_ns=None):
    """Run every invariant against a finished :class:`System`; returns
    a list of violation strings (empty = all invariants hold)."""
    hv = system.hv
    now = hv.sim.now
    violations = []
    violations.extend(_check_runstates(hv, now))
    violations.extend(_check_starvation(hv, now, starvation_ns))
    violations.extend(
        _check_ipis(hv, now, ipi_grace_ns if ipi_grace_ns is not None else _slice_bound(hv))
    )
    violations.extend(_check_pools(hv))
    return violations


def assert_invariants(system, **kwargs):
    """Like :func:`check_system` but raises :class:`FaultError` listing
    every violation."""
    violations = check_system(system, **kwargs)
    if violations:
        raise FaultError(
            "invariant check failed (%d violations):\n  %s"
            % (len(violations), "\n  ".join(violations))
        )


# ----------------------------------------------------------------------
def _check_runstates(hv, now):
    for domain in hv.domains:
        for vcpu in domain.vcpus:
            ok, diff = validate(vcpu.runstate.snapshot(now))
            if not ok:
                yield (
                    "runstate conservation: %s state times are off by %d ns"
                    % (vcpu.name, diff)
                )


def _check_starvation(hv, now, starvation_ns):
    if starvation_ns is None:
        starvation_ns = _slice_bound(hv)
    for domain in hv.domains:
        for vcpu in domain.vcpus:
            if vcpu.state != "runnable":
                continue
            waited = now - vcpu.runstate.since
            if waited > starvation_ns:
                yield (
                    "starvation: %s has been runnable for %.1f ms "
                    "(bound %.1f ms)" % (vcpu.name, waited / 1e6, starvation_ns / 1e6)
                )


def _check_ipis(hv, now, grace_ns):
    faults = hv.faults
    if faults is None:
        return
    for op, first_send in faults.pending_ipis.values():
        if op.complete:
            continue  # completed after registry insert but before removal
        age = now - first_send
        if age > grace_ns:
            yield (
                "ipi accounting: op#%d (%s) from %s still pending after %.1f ms "
                "(%d unacked targets)"
                % (
                    op.id,
                    op.kind,
                    op.initiator.name if op.initiator is not None else "?",
                    age / 1e6,
                    len(op.pending),
                )
            )


def _check_pools(hv):
    pools = (hv.normal_pool, hv.micro_pool)
    seen = 0
    for pcpu in hv.pcpus:
        homes = [pool.name for pool in pools if pcpu in pool.pcpus]
        if pcpu.offline:
            if homes:
                yield (
                    "pool membership: offline pcpu%d still listed in %s"
                    % (pcpu.info.index, ", ".join(homes))
                )
            continue
        seen += 1
        if len(homes) != 1:
            yield (
                "pool membership: pcpu%d belongs to %s (expected exactly one pool)"
                % (pcpu.info.index, homes or "no pool")
            )
        elif pcpu.pool is not None and pcpu.pool.name != homes[0]:
            yield (
                "pool membership: pcpu%d claims pool %s but is listed in %s"
                % (pcpu.info.index, pcpu.pool.name, homes[0])
            )
    census = sum(len(pool.pcpus) for pool in pools)
    if census != seen:
        yield (
            "pool membership: pools list %d pcpus but %d are online"
            % (census, seen)
        )
