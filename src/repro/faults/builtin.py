"""Built-in fault plans.

Each built-in is a factory parameterised by the run *horizon* (warmup +
measured duration): fault windows are placed at fixed fractions of the
horizon so the same named plan exercises a 20 ms smoke run and a
multi-second benchmark alike. ``repro faults`` lists these; ``--faults
NAME`` resolves them per job against that job's actual horizon.

All probabilistic parameters are deterministic per (plan, seed) — see
:class:`~repro.faults.inject.FaultInjector`.
"""

from ..errors import FaultError
from ..sim.time import ms, us
from .plan import FaultPlan

#: Default horizon used when listing plans without a concrete run.
DEFAULT_HORIZON = ms(620)


def _sym_outage(h):
    plan = FaultPlan(
        "symbol-outage",
        description="guest System.map unavailable mid-run; detector falls "
        "back to learned address ranges",
    )
    plan.add("symbol_table", int(0.35 * h), int(0.75 * h), mode="miss")
    return plan


def _sym_corrupt(h):
    plan = FaultPlan(
        "symbol-corrupt",
        description="symbol resolution returns neighbouring (wrong) symbols; "
        "classification misfires",
    )
    plan.add("symbol_table", int(0.35 * h), int(0.75 * h), mode="corrupt")
    return plan


def _lossy_ipi(h):
    plan = FaultPlan(
        "lossy-ipi",
        description="15% of vIPI messages dropped; hypervisor re-sends with "
        "bounded retries, then force-acks",
    )
    plan.add(
        "ipi_drop",
        int(0.30 * h),
        int(0.80 * h),
        prob=0.15,
        max_resends=3,
        resend_ns=int(us(200)),
    )
    return plan


def _slow_ipi(h):
    plan = FaultPlan(
        "slow-ipi",
        description="every vIPI delayed an extra 30 us on the wire",
    )
    plan.add("ipi_delay", int(0.30 * h), int(0.80 * h), prob=1.0, delay_ns=int(us(30)))
    return plan


def _hotplug(h):
    plan = FaultPlan(
        "cpu-hotplug",
        description="two pCPUs go offline mid-run and come back later",
    )
    plan.add("pcpu_offline", int(0.35 * h), pcpu=11)
    plan.add("pcpu_offline", int(0.40 * h), pcpu=10)
    plan.add("pcpu_online", int(0.70 * h), pcpu=11)
    plan.add("pcpu_online", int(0.75 * h), pcpu=10)
    return plan


def _stale_profile(h):
    plan = FaultPlan(
        "stale-profile",
        description="Algorithm-1 profile windows report stale counts; the "
        "controller clamps instead of resizing on garbage",
    )
    plan.add("stale_profile", int(0.30 * h), int(0.70 * h))
    return plan


def _ple_misconfig(h):
    plan = FaultPlan(
        "ple-misconfig",
        description="PLE disabled mid-run (window=0): spinners burn whole "
        "slices instead of trapping in microseconds",
    )
    plan.add("ple_misconfig", int(0.30 * h), int(0.70 * h), window=0)
    return plan


def _pool_flap(h):
    plan = FaultPlan(
        "pool-flap",
        description="70% of cpupool resize requests refused; the adaptive "
        "controller retries with bounded backoff",
    )
    plan.add("poolmove_fail", int(0.25 * h), int(0.75 * h), prob=0.7)
    return plan


_BUILTINS = {
    "symbol-outage": _sym_outage,
    "symbol-corrupt": _sym_corrupt,
    "lossy-ipi": _lossy_ipi,
    "slow-ipi": _slow_ipi,
    "cpu-hotplug": _hotplug,
    "stale-profile": _stale_profile,
    "ple-misconfig": _ple_misconfig,
    "pool-flap": _pool_flap,
}


def available():
    """Sorted built-in plan names."""
    return sorted(_BUILTINS)


def make(name, horizon_ns=DEFAULT_HORIZON):
    """Instantiate the built-in plan ``name`` against a run horizon."""
    factory = _BUILTINS.get(name)
    if factory is None:
        raise FaultError(
            "unknown built-in fault plan %r (available: %s)"
            % (name, ", ".join(available()))
        )
    return factory(int(horizon_ns))


def describe(name):
    return make(name).description


def resolve(request, horizon_ns=DEFAULT_HORIZON):
    """Resolve a CLI/runner fault request into a :class:`FaultPlan`.

    ``request`` may be a built-in name, a path to a plan JSON file, a
    plan dict, or an already-built plan.
    """
    if isinstance(request, FaultPlan):
        return request
    if isinstance(request, dict):
        return FaultPlan.from_dict(request)
    if isinstance(request, str):
        if request in _BUILTINS:
            return make(request, horizon_ns)
        if request.endswith(".json"):
            return FaultPlan.from_file(request)
        raise FaultError(
            "unknown fault plan %r: not a built-in (%s) and not a .json file"
            % (request, ", ".join(available()))
        )
    raise FaultError("cannot resolve fault plan from %r" % (request,))
