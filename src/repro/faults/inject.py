"""The fault injector: compiles a plan into DES events and carries the
runtime fault state the degradation hooks consult.

One :class:`FaultInjector` is created per built scenario (when a plan
was requested) and hung off the hypervisor as ``hv.faults``. Every hook
site in the hypervisor, detector, and adaptive controller does exactly
one ``is None`` check on the happy path — a run without a plan executes
the same instruction stream it always did, which is what keeps no-fault
results byte-identical.

Determinism: all probabilistic decisions draw from a single named
stream derived from ``(scenario seed, plan name, plan salt)`` via
:func:`repro.sim.rng.derive_seed`. Decisions are only drawn while the
corresponding fault window is active, so the stream's consumption
pattern — and therefore the whole faulted run — is a pure function of
(plan, seed).
"""

import random
import warnings

from ..errors import DegradedModeWarning, FaultError
from ..hw.ple import PleConfig
from ..sim.rng import derive_seed
from .plan import INSTANT_KINDS


class FaultInjector:
    """Runtime fault state + the scheduled injection events."""

    def __init__(self, plan, seed=0):
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(
            derive_seed(seed, "faults:%s:%d" % (plan.name, plan.seed_salt))
        )
        self.hv = None
        self.counters = {}
        #: Active-window state the hook sites read.
        self.ipi_drop = None        # params dict while an ipi_drop window is open
        self.ipi_delay = None       # params dict while an ipi_delay window is open
        self.poolmove = None        # params dict while a poolmove_fail window is open
        self.profile_stale = False  # True while a stale_profile window is open
        #: op id -> (op, first_send_ns): every IPI op relayed while the
        #: injector is installed; completion removes the entry, so what
        #: remains at check time is exactly the unfinished set.
        self.pending_ipis = {}
        self._saved_ple = None
        self._warned = set()

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, hv):
        """Attach to a built hypervisor and schedule every fault event.
        Must run before the simulation's first event executes."""
        self.hv = hv
        hv.faults = self
        for spec in self.plan:
            hv.sim.schedule(spec.at_ns, self._activate, spec)
            if spec.until_ns is not None:
                hv.sim.schedule(spec.until_ns, self._deactivate, spec)
        return self

    # ------------------------------------------------------------------
    # accounting / tracing
    # ------------------------------------------------------------------
    def count(self, name, delta=1):
        self.counters[name] = self.counters.get(name, 0) + delta

    def trace(self, kind, fault, target, action=None):
        tracer = self.hv.tracer if self.hv is not None else None
        emit = tracer.want(kind) if tracer is not None else None
        if emit is None:
            return
        if action is None:
            emit(fault=fault, target=target)
        else:
            emit(fault=fault, target=target, action=action)

    def warn_degraded(self, topic, message):
        """Emit one :class:`DegradedModeWarning` per topic per run."""
        if topic in self._warned:
            return
        self._warned.add(topic)
        warnings.warn(message, DegradedModeWarning, stacklevel=3)

    # ------------------------------------------------------------------
    # window activation
    # ------------------------------------------------------------------
    def _activate(self, spec):
        kind, params = spec.kind, spec.params
        self.count("injected_" + kind)
        self.trace("fault_inject", kind, _target_of(spec))
        if kind == "symbol_table":
            self._set_symbol_fault(params, params["mode"])
        elif kind == "ipi_drop":
            self.ipi_drop = params
        elif kind == "ipi_delay":
            self.ipi_delay = params
        elif kind == "poolmove_fail":
            self.poolmove = params
        elif kind == "stale_profile":
            self.profile_stale = True
        elif kind == "ple_misconfig":
            if self._saved_ple is None:
                self._saved_ple = self.hv.ple
            window = int(params["window"])
            self.hv.ple = PleConfig(enabled=window > 0, window=window or 1)
        elif kind == "pcpu_offline":
            self.hv.offline_pcpu(self._pcpu_index(spec))
        elif kind == "pcpu_online":
            self.hv.online_pcpu(self._pcpu_index(spec))

    def _deactivate(self, spec):
        kind, params = spec.kind, spec.params
        self.count("recovered_" + kind)
        self.trace("fault_recover", kind, _target_of(spec), action="restored")
        if kind == "symbol_table":
            self._set_symbol_fault(params, None)
        elif kind == "ipi_drop":
            self.ipi_drop = None
        elif kind == "ipi_delay":
            self.ipi_delay = None
        elif kind == "poolmove_fail":
            self.poolmove = None
        elif kind == "stale_profile":
            self.profile_stale = False
        elif kind == "ple_misconfig":
            if self._saved_ple is not None:
                self.hv.ple = self._saved_ple
                self._saved_ple = None

    def _set_symbol_fault(self, params, mode):
        name = params.get("domain")
        matched = False
        for domain in self.hv.domains:
            if name is None or domain.name == name:
                domain.kernel.symbol_fault = mode
                matched = True
        if not matched:
            raise FaultError("symbol_table fault targets unknown domain %r" % name)

    def _pcpu_index(self, spec):
        index = spec.params.get("pcpu")
        if index is None or not 0 <= int(index) < len(self.hv.pcpus):
            raise FaultError(
                "fault %r needs a valid pcpu index (got %r, host has %d)"
                % (spec.kind, index, len(self.hv.pcpus))
            )
        return int(index)

    # ------------------------------------------------------------------
    # hook-site queries (hot paths — called only when hv.faults is set)
    # ------------------------------------------------------------------
    def note_ipi_send(self, op):
        if op.id not in self.pending_ipis:
            self.pending_ipis[op.id] = (op, self.hv.sim.now)

    def note_ipi_complete(self, op):
        self.pending_ipis.pop(op.id, None)

    def ipi_decision(self, dst, attempt):
        """Transport verdict for one IPI message: ``("drop", resend_ns)``
        to drop and retry, ``("timeout", None)`` when the resend budget
        is exhausted, or ``("deliver", extra_delay_ns)``."""
        drop = self.ipi_drop
        if drop is not None and self.rng.random() < drop["prob"]:
            self.count("ipi_dropped")
            self.trace("fault_inject", "ipi_drop", dst.name)
            if attempt >= int(drop["max_resends"]):
                self.count("ipi_timeouts")
                return ("timeout", None)
            self.count("ipi_resends")
            return ("drop", int(drop["resend_ns"]))
        delay = self.ipi_delay
        if delay is not None and self.rng.random() < delay["prob"]:
            self.count("ipi_delayed")
            return ("deliver", int(delay["delay_ns"]))
        return ("deliver", 0)

    def poolmove_refused(self):
        """Whether this set_micro_cores call should fail."""
        params = self.poolmove
        if params is None or self.rng.random() >= params["prob"]:
            return False
        self.count("poolmove_refused")
        self.trace("fault_inject", "poolmove_fail", None)
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self):
        """JSON-native digest for :class:`~repro.experiments.results.RunResult`."""
        data = {
            "plan": self.plan.name,
            "counters": {key: self.counters[key] for key in sorted(self.counters)},
            "pending_ipis": len(self.pending_ipis),
        }
        policy = getattr(self.hv, "policy", None)
        detector = getattr(policy, "detector", None)
        if detector is not None:
            data["detector"] = {
                "symbol_misses": detector.symbol_misses,
                "fallback_hits": detector.fallback_hits,
            }
        controller = getattr(policy, "controller", None)
        if controller is not None:
            data["controller"] = {
                "failed_resizes": controller.failed_resizes,
                "abandoned_resizes": controller.abandoned_resizes,
                "stale_clamps": controller.stale_clamps,
            }
        return data


def _target_of(spec):
    """Best-effort target label for a spec's inject/recover records."""
    if spec.kind in INSTANT_KINDS:
        return spec.params.get("pcpu")
    if spec.kind == "symbol_table":
        return spec.params.get("domain")
    return None
