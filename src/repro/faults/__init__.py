"""``repro.faults`` — deterministic fault injection, graceful
degradation, and post-run invariant checking.

The subsystem has four parts:

* :mod:`~repro.faults.plan` — the declarative, JSON-loadable
  :class:`FaultPlan` (what breaks, when, how hard);
* :mod:`~repro.faults.inject` — the :class:`FaultInjector` that
  compiles a plan into DES events and carries the runtime fault state
  the degradation hooks consult (``hv.faults``);
* :mod:`~repro.faults.builtin` — named, horizon-scaled plans usable
  from ``--faults NAME`` and the ``resilience`` experiment;
* :mod:`~repro.faults.invariants` — conservation checks every faulted
  run must still satisfy.

See ``docs/faults.md`` for the plan schema and degradation semantics.
"""

from .builtin import available as builtin_plans
from .builtin import make as make_builtin
from .builtin import resolve as resolve_plan
from .inject import FaultInjector
from .invariants import assert_invariants, check_system
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "assert_invariants",
    "builtin_plans",
    "check_system",
    "make_builtin",
    "resolve_plan",
]
