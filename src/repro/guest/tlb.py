"""TLB shootdown protocol.

``munmap``/``mmap`` address-space changes require every CPU caching the
mm's translations to flush. The initiating vCPU (IP in
``native_flush_tlb_others`` / ``smp_call_function_many``) sends an IPI
to all *active* siblings — idle vCPUs sit in lazy-TLB mode
(``leave_mm``) and are skipped, as in Linux — then spins until everyone
acknowledges. A single preempted sibling therefore stalls the whole VM's
address-space operation, which is the dedup/vips pathology in the paper.

Latencies from initiation to last ack feed Table 4b.
"""

from ..metrics.latency import LatencyStat
from .ipi import KIND_TLB, IpiOp


class TlbManager:
    """Per-VM shootdown issue + latency accounting."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.sync_latency = LatencyStat(name="tlb_sync")
        self.issued = 0
        self.ipi_messages = 0

    def shootdown_targets(self, initiator):
        """Active (non-halted) sibling vCPUs that must flush."""
        return [
            vcpu
            for vcpu in self.kernel.vm.vcpus
            if vcpu is not initiator and not vcpu.lazy_tlb
        ]

    def start(self, initiator, now):
        """Create the shootdown op and deliver IPIs to every target.

        Returns the :class:`IpiOp`; an op with no targets is complete at
        birth (nothing to synchronise).
        """
        targets = self.shootdown_targets(initiator)
        op = IpiOp(
            KIND_TLB,
            initiator,
            targets,
            now,
            on_complete=self._record,
            op_id=self.kernel.hv.next_ipi_id(),
        )
        self.issued += 1
        if not targets:
            op.completed_at = now
            self.sync_latency.record(0)
            hv = self.kernel.hv
            if hv is not None:
                hv.histograms.record("tlb_sync", 0)
            return op
        for target in targets:
            self.ipi_messages += 1
            self.kernel.deliver_ipi(initiator, target, op)
        return op

    def _record(self, op):
        self.sync_latency.record(op.latency)
        hv = self.kernel.hv
        if hv is not None:
            hv.histograms.record("tlb_sync", op.latency)
