"""Guest tasks and execution contexts.

A :class:`GuestTask` is a thread/process inside a VM: a generator of
primitive actions pinned to a home vCPU. An :class:`ExecContext` wraps
any action generator (task programs, but also IRQ/softirq work) and
remembers the in-flight action so execution survives preemption.
"""

from ..errors import WorkloadError
from .actions import Action

#: Task states.
RUNNABLE = "runnable"
SLEEPING = "sleeping"
EXITED = "exited"


class ExecContext:
    """An action generator plus its current (possibly unfinished)
    action."""

    __slots__ = ("gen", "name", "current", "exhausted")

    def __init__(self, gen, name=""):
        self.gen = gen
        self.name = name
        self.current = None
        self.exhausted = False

    def peek(self):
        """The action to execute next, advancing the generator when the
        previous action finished. ``None`` once the generator is done."""
        if self.exhausted:
            return None
        if self.current is not None and not self.current.done:
            return self.current
        try:
            action = next(self.gen)
        except StopIteration:
            self.current = None
            self.exhausted = True
            return None
        if not isinstance(action, Action):
            raise WorkloadError(
                "context %r yielded %r; programs must yield Action objects" % (self.name, action)
            )
        self.current = action
        return action


class GuestTask:
    """One guest thread, pinned to a home vCPU."""

    def __init__(self, name, vcpu, program):
        """``program`` is a zero-argument callable returning the action
        generator (so a task can be described before its VM is built)."""
        self.name = name
        self.vcpu = vcpu
        self.state = RUNNABLE
        self.context = ExecContext(program(), name=name)
        self.sleeping_on = None
        #: ns of vCPU time consumed since the guest scheduler last
        #: rotated this task (round-robin accounting).
        self.ran_ns = 0
        #: Total vCPU time this task has consumed.
        self.total_ns = 0

    @property
    def runnable(self):
        return self.state == RUNNABLE

    def charge(self, ns):
        self.ran_ns += ns
        self.total_ns += ns

    def __repr__(self):
        return "<GuestTask %s %s on %s>" % (self.name, self.state, self.vcpu)
