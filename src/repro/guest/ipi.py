"""Inter-processor interrupt bookkeeping.

Two IPI shapes matter to the paper:

* one-to-many ``smp_call_function_many`` (TLB shootdowns) — the
  initiator spins until *every* recipient acknowledges;
* one-to-one reschedule IPIs (``smp_send_reschedule`` via
  ``kick_process``/ttwu) — the initiator may wait for the single ack.

Both are modelled by :class:`IpiOp`: a pending-set plus completion flag.
Recipients acknowledge by executing their IPI work item, which only
happens while their vCPU is on a pCPU — exactly the dependency that
creates the virtual-time-discontinuity stalls.
"""

#: IPI kinds (also used as hypervisor relay/classification labels).
KIND_TLB = "tlb"
KIND_RESCHED = "resched"
KIND_CALL = "call"


class IpiOp:
    """One logical IPI transaction (possibly multi-target).

    ``op_id`` should come from a per-host allocator
    (:meth:`Hypervisor.next_ipi_id`) so ids are deterministic per run —
    the class-level fallback is process-global and only suitable for
    unit tests that never export traces."""

    _next_id = 0

    def __init__(self, kind, initiator, targets, started_at, on_complete=None, op_id=None):
        if op_id is None:
            IpiOp._next_id += 1
            op_id = IpiOp._next_id
        self.id = op_id
        self.kind = kind
        self.initiator = initiator
        self.targets = tuple(targets)
        self.pending = set(self.targets)
        self.started_at = started_at
        self.completed_at = None
        self.on_complete = on_complete

    @property
    def complete(self):
        return not self.pending

    def ack(self, vcpu, now):
        """Recipient ``vcpu`` acknowledges; fires completion when the
        pending set drains. Idempotent per recipient."""
        if vcpu not in self.pending:
            return False
        self.pending.discard(vcpu)
        if not self.pending:
            self.completed_at = now
            if self.on_complete is not None:
                self.on_complete(self)
            # A running initiator is spinning on the ack counter; break
            # it out of the spin immediately.
            if self.initiator is not None:
                self.initiator.notify(("ipi_complete", self))
        return True

    @property
    def latency(self):
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def __repr__(self):
        return "<IpiOp#%d %s pending=%d/%d>" % (
            self.id,
            self.kind,
            len(self.pending),
            len(self.targets),
        )
