"""Reader-writer semaphore model (``rwsem``).

Table 3 lists the rwsem wake paths (``rwsem_wake``,
``__rwsem_do_wake``) among the critical services: a preempted vCPU
inside the wake path delays every queued reader/writer. The model is a
classic fair rwsem:

* any number of readers hold concurrently;
* a writer excludes everyone;
* waiters queue FIFO to prevent writer starvation — a queued writer
  blocks later readers;
* releases that empty the holder set wake the next batch (one writer,
  or the whole run of queued readers) through the guest scheduler —
  cross-vCPU wakes ride reschedule IPIs like any ``ttwu``.

Downgrades (the mmap_sem pattern: take for write, downgrade to read)
are supported because gmake-style address-space setup uses them.
"""

from collections import deque

from ..errors import GuestError
from .actions import Compute, Sleep, Wake
from .waitqueue import WaitQueue

READ = "read"
WRITE = "write"


class RwSemaphore:
    """A fair reader-writer semaphore for guest tasks."""

    def __init__(self, name, kernel=None):
        self.name = name
        self.kernel = kernel
        self.readers = set()
        self.writer = None
        self._waiters = deque()      # (task, mode, waitq)
        self.acquisitions = {READ: 0, WRITE: 0}
        self.contended = 0
        self.downgrades = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def held(self):
        return self.writer is not None or bool(self.readers)

    def held_by(self, task):
        return task is self.writer or task in self.readers

    def waiter_count(self):
        return len(self._waiters)

    def _can_grant(self, mode):
        if self._waiters:
            return False  # FIFO fairness: queue behind existing waiters
        if mode == READ:
            return self.writer is None
        return self.writer is None and not self.readers

    def _grant(self, task, mode):
        if mode == READ:
            self.readers.add(task)
        else:
            self.writer = task
        self.acquisitions[mode] += 1

    # ------------------------------------------------------------------
    # task program helpers (yield from these)
    # ------------------------------------------------------------------
    def acquire(self, task, mode):
        """Acquire in ``mode``; sleeps (rwsem waiters block, they do not
        spin) until a release hands the semaphore over."""
        if self.held_by(task):
            raise GuestError("task %s re-acquiring rwsem %s" % (task.name, self.name))
        if self._can_grant(mode):
            self._grant(task, mode)
            return
        self.contended += 1
        waitq = WaitQueue(name="%s.%s.%s" % (self.name, task.name, mode))
        self._waiters.append((task, mode, waitq))
        yield Sleep(waitq)

    def release(self, task):
        """Release and wake the next batch (the Table-3 critical wake
        path: IP sits in ``rwsem_wake`` while handing over)."""
        if task is self.writer:
            self.writer = None
        elif task in self.readers:
            self.readers.discard(task)
        else:
            raise GuestError(
                "task %s releasing rwsem %s it does not hold" % (task.name, self.name)
            )
        if self.held or not self._waiters:
            return
        yield Compute(500, symbol="rwsem_wake")
        for waitq in self._wake_batch():
            yield Compute(300, symbol="__rwsem_do_wake")
            yield Wake(waitq)

    def _wake_batch(self):
        """Grant to the head writer, or to the whole leading run of
        readers; returns their wait queues."""
        queues = []
        if not self._waiters:
            return queues
        head_task, head_mode, head_queue = self._waiters[0]
        if head_mode == WRITE:
            self._waiters.popleft()
            self._grant(head_task, WRITE)
            return [head_queue]
        while self._waiters and self._waiters[0][1] == READ:
            task, _mode, waitq = self._waiters.popleft()
            self._grant(task, READ)
            queues.append(waitq)
        return queues

    def downgrade(self, task):
        """Writer → reader without releasing (mmap_sem idiom); wakes the
        leading run of queued readers."""
        if task is not self.writer:
            raise GuestError("task %s downgrading rwsem %s it does not write-hold"
                             % (task.name, self.name))
        self.writer = None
        self.readers.add(task)
        self.downgrades += 1
        if self._waiters and self._waiters[0][1] == READ:
            yield Compute(300, symbol="__rwsem_do_wake")
            for waitq in self._wake_batch():
                yield Wake(waitq)

    # ------------------------------------------------------------------
    def read_section(self, task, body_ns, body_symbol=None):
        """Composite: acquire-read, run body, release."""
        yield from self.acquire(task, READ)
        yield Compute(body_ns, symbol=body_symbol)
        yield from self.release(task)

    def write_section(self, task, body_ns, body_symbol="do_mmap"):
        """Composite: acquire-write, run body, release."""
        yield from self.acquire(task, WRITE)
        yield Compute(body_ns, symbol=body_symbol)
        yield from self.release(task)

    def abandon(self, task):
        """Drop a queued waiter (task teardown)."""
        self._waiters = deque(
            (t, m, q) for (t, m, q) in self._waiters if t is not task
        )

    def __repr__(self):
        return "<RwSemaphore %s writer=%s readers=%d waiters=%d>" % (
            self.name,
            self.writer.name if self.writer else None,
            len(self.readers),
            len(self._waiters),
        )
