"""Guest kernel spinlocks.

The model follows the paravirtualised qspinlock that Linux >= 4.2 uses
in VMs (the paper's guests run Linux 4.4 with
``CONFIG_PARAVIRT_SPINLOCKS=y``):

* waiters queue FIFO and spin;
* a waiter whose spin exceeds the PLE window is descheduled (PLE exit,
  handled by the executor); after a few fruitless spin rounds it parks
  (``pv_wait`` — the vCPU halts);
* release hands the lock to the first waiter that is *actively spinning*
  (fast path), else to the queue head, kicking it if parked
  (``pv_kick`` → the hypervisor wakes and boosts it).

This keeps lock-waiter preemption mild — as the paper notes qspinlock
already does — while leaving **lock-holder preemption** fully exposed:
when the holder's vCPU is descheduled mid-critical-section, no amount of
queue discipline helps until the holder runs again. That is the
pathology the micro-sliced pool attacks.
"""

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import GuestError

#: Waiter states (executor-maintained).
SPINNING = "spinning"
WAITING = "waiting"   # descheduled after a PLE exit, still queued
PARKED = "parked"     # pv_wait: vCPU halted until kicked
FUTEX = "futex"       # user-level mutex: the *task* sleeps, vCPU stays free


@dataclass(frozen=True)
class LockClass:
    """A lock class: its lockstat label plus the symbols a vCPU's IP
    sits in while inside the critical section and on the unlock path
    (drawn from Table 3 for kernel locks; ``user:<region>`` names for
    §4.4 user-level mutexes). ``user_level`` locks block the *task*
    (futex) on contention instead of parking the vCPU; ``spin_symbol``
    is where the adaptive-spin phase's IP sits."""

    name: str
    cs_symbol: str
    unlock_symbol: str
    user_level: bool = False
    spin_symbol: str = "native_queued_spin_lock_slowpath"


#: The lock classes Table 4a reports for gmake, plus mmap_sem's spinlock
#: used by the mm workloads.
PAGE_ALLOC = LockClass("page_alloc", "get_page_from_freelist", "__raw_spin_unlock")
PAGE_RECLAIM = LockClass("page_reclaim", "release_pages", "_raw_spin_unlock_irqrestore")
DENTRY = LockClass("dentry", "__raw_spin_unlock", "__raw_spin_unlock")
RUNQUEUE = LockClass("runqueue", "_raw_spin_unlock_irqrestore", "_raw_spin_unlock_irqrestore")
FREELIST = LockClass("free_one_page", "free_one_page", "__raw_spin_unlock_irq")

STANDARD_CLASSES = (PAGE_ALLOC, PAGE_RECLAIM, DENTRY, RUNQUEUE, FREELIST)


class _Waiter:
    __slots__ = ("vcpu", "state", "granted", "task", "waitq")

    def __init__(self, vcpu):
        self.vcpu = vcpu
        self.state = SPINNING
        self.granted = False
        #: Set for FUTEX waiters (user-level mutexes).
        self.task = None
        self.waitq = None


class SpinLock:
    """One spinlock instance of some :class:`LockClass`."""

    def __init__(self, name, lock_class, kernel=None):
        self.name = name
        self.lock_class = lock_class
        self.kernel = kernel
        self.holder = None
        self._waiters = OrderedDict()  # vcpu -> _Waiter, FIFO
        self.acquisitions = 0
        self.contended = 0
        self.handoffs = 0

    @property
    def cs_symbol(self):
        return self.lock_class.cs_symbol

    @property
    def unlock_symbol(self):
        return self.lock_class.unlock_symbol

    @property
    def spin_symbol(self):
        return self.lock_class.spin_symbol

    @property
    def user_level(self):
        return self.lock_class.user_level

    @property
    def held(self):
        return self.holder is not None

    def owned_by(self, vcpu):
        return self.holder is vcpu

    def waiter_count(self):
        return len(self._waiters)

    def try_acquire(self, vcpu):
        """Uncontended fast path: take the lock iff free with no queue."""
        if self.holder is None and not self._waiters:
            self.holder = vcpu
            self.acquisitions += 1
            return True
        return False

    def add_waiter(self, vcpu):
        """Queue ``vcpu``; idempotent (re-entered after preemption)."""
        waiter = self._waiters.get(vcpu)
        if waiter is None:
            waiter = _Waiter(vcpu)
            self._waiters[vcpu] = waiter
            self.contended += 1
        return waiter

    def waiter(self, vcpu):
        return self._waiters.get(vcpu)

    def granted_to(self, vcpu):
        """Did a release hand the lock to ``vcpu`` while it was away?"""
        waiter = self._waiters.get(vcpu)
        return waiter is not None and waiter.granted

    def finish_grant(self, vcpu):
        """Called by the executor when the grantee observes the grant."""
        waiter = self._waiters.pop(vcpu, None)
        if waiter is None or not waiter.granted:
            raise GuestError("vCPU %r finishing a grant it never got on %s" % (vcpu, self.name))
        self.acquisitions += 1

    def abandon(self, vcpu):
        """Remove ``vcpu`` from the queue without acquiring (task torn
        down mid-wait)."""
        self._waiters.pop(vcpu, None)

    def release(self, vcpu):
        """Release and hand off.

        Returns the grantee vCPU (or ``None`` when uncontended). Running
        spinners are notified through ``vcpu.notify`` (the executor
        completes their acquire immediately); a parked grantee gets a
        pv-kick through the guest kernel's hypervisor interface.
        """
        if self.holder is not vcpu:
            raise GuestError(
                "vCPU %r releasing %s held by %r" % (vcpu, self.name, self.holder)
            )
        self.holder = None
        grantee = self._pick_grantee()
        if grantee is None:
            return None
        waiter = self._waiters[grantee]
        waiter.granted = True
        self.holder = grantee
        self.handoffs += 1
        if waiter.state == SPINNING:
            grantee.notify(("lock_granted", self))
        elif waiter.state == FUTEX:
            # User-level mutex: the unlocking *task* issues the futex
            # wake; the executor of the releaser handles it (it may need
            # a cross-vCPU reschedule IPI).
            pass
        elif self.kernel is not None:
            # Parked (pv_wait) or preempted mid-slowpath: kick through
            # the hypervisor. The kick is a no-op for a runnable grantee
            # (as in real Xen), but those windows are microseconds long
            # because waiters park on their first fruitless spin window.
            self.kernel.pv_kick(grantee)
        return grantee

    def _pick_grantee(self):
        """Grant preference: an actively SPINNING waiter (takes over in
        nanoseconds), else a PARKED one (pv_kick wakes it with BOOST),
        else the queue head. Preferring kickable waiters over
        preempted-mid-spin ones models pv-qspinlock's lock stealing and
        prevents handoff convoys through unkickable runnable vCPUs."""
        first = None
        kickable = None
        for vcpu, waiter in self._waiters.items():
            if first is None:
                first = vcpu
            if waiter.state == SPINNING:
                return vcpu
            if kickable is None and waiter.state in (PARKED, FUTEX):
                kickable = vcpu
        return kickable if kickable is not None else first

    def __repr__(self):
        return "<SpinLock %s holder=%r waiters=%d>" % (
            self.name,
            self.holder,
            len(self._waiters),
        )
