"""Guest-level wait queues.

A :class:`WaitQueue` is the blocking primitive tasks sleep on. Wakeups
are *banked*: waking an empty queue stores a token that the next sleeper
consumes without blocking, which closes the classic lost-wakeup race
between "producer delivered work" and "consumer about to sleep".
"""

from collections import deque


class WaitQueue:
    """FIFO wait queue with banked wakeups."""

    def __init__(self, name=""):
        self.name = name
        self._sleepers = deque()
        self._tokens = 0

    def try_consume(self):
        """Consume a banked wakeup if present (called instead of
        sleeping)."""
        if self._tokens > 0:
            self._tokens -= 1
            return True
        return False

    def add_sleeper(self, task):
        self._sleepers.append(task)

    def discard_sleeper(self, task):
        try:
            self._sleepers.remove(task)
        except ValueError:
            pass

    def pop_sleeper(self):
        """Take the longest-waiting sleeper, banking a token when there
        is none. Returns the task or ``None``."""
        if self._sleepers:
            return self._sleepers.popleft()
        self._tokens += 1
        return None

    def wake_all(self):
        """Drain all sleepers (used for barriers); banks nothing."""
        sleepers = list(self._sleepers)
        self._sleepers.clear()
        return sleepers

    @property
    def waiting(self):
        return len(self._sleepers)

    @property
    def banked(self):
        return self._tokens

    def __repr__(self):
        return "<WaitQueue %s waiting=%d banked=%d>" % (
            self.name,
            len(self._sleepers),
            self._tokens,
        )
