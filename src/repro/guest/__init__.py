"""Guest operating-system models (kernel services, tasks, net stack)."""

from .actions import Acquire, Action, Compute, Emit, GYield, Release, Shootdown, Sleep, Wake
from .ipi import KIND_CALL, KIND_RESCHED, KIND_TLB, IpiOp
from .kernel import GuestKernel
from .netstack import NetStack, Socket
from .rwsem import READ, WRITE, RwSemaphore
from .sched import GuestCpu
from .spinlock import (
    DENTRY,
    FREELIST,
    PAGE_ALLOC,
    PAGE_RECLAIM,
    PARKED,
    RUNQUEUE,
    SPINNING,
    STANDARD_CLASSES,
    WAITING,
    LockClass,
    SpinLock,
)
from .symbols import (
    DEFAULT_KERNEL_SYMBOLS,
    KERNEL_TEXT_BASE,
    USER_IP,
    Symbol,
    SymbolTable,
    build_table,
    default_guest_table,
)
from .task import EXITED, RUNNABLE, SLEEPING, ExecContext, GuestTask
from .tlb import TlbManager
from .waitqueue import WaitQueue

__all__ = [
    "Acquire",
    "Action",
    "Compute",
    "DEFAULT_KERNEL_SYMBOLS",
    "DENTRY",
    "EXITED",
    "Emit",
    "ExecContext",
    "FREELIST",
    "GYield",
    "GuestCpu",
    "GuestKernel",
    "GuestTask",
    "IpiOp",
    "KERNEL_TEXT_BASE",
    "KIND_CALL",
    "KIND_RESCHED",
    "KIND_TLB",
    "LockClass",
    "NetStack",
    "PAGE_ALLOC",
    "PAGE_RECLAIM",
    "PARKED",
    "RUNNABLE",
    "RUNQUEUE",
    "READ",
    "Release",
    "RwSemaphore",
    "SLEEPING",
    "SPINNING",
    "STANDARD_CLASSES",
    "Shootdown",
    "Sleep",
    "Socket",
    "SpinLock",
    "Symbol",
    "SymbolTable",
    "TlbManager",
    "USER_IP",
    "WAITING",
    "Wake",
    "WRITE",
    "WaitQueue",
    "build_table",
    "default_guest_table",
]
