"""The guest kernel facade.

One :class:`GuestKernel` per VM ties together the symbol table, the
lock registry, the TLB shootdown manager, the network stack, and the
(hypervisor-provided) IPI relay. Task programs only ever talk to this
facade and to the primitive actions.

The kernel never calls into hypervisor *scheduling* logic directly —
everything crosses through the small relay interface the hypervisor
installs at attach time, mirroring the real hypercall/VMEXIT boundary.
"""

from ..errors import GuestError
from ..metrics.lockstat import LockStat
from ..sim.time import us
from . import irqwork
from .actions import Acquire, Compute, Release
from .ipi import KIND_CALL, KIND_RESCHED, IpiOp
from .netstack import NetStack
from .rwsem import RwSemaphore
from .spinlock import STANDARD_CLASSES, LockClass, SpinLock
from .symbols import USER_IP, default_guest_table
from .tlb import TlbManager


class GuestKernel:
    """Kernel-side state of one VM."""

    def __init__(self, vm, costs, symbols=None):
        self.vm = vm
        self.costs = costs
        self.symbols = symbols if symbols is not None else default_guest_table()
        self.lockstat = LockStat()
        self.tlb = TlbManager(self)
        self.net = None
        self.hv = None
        #: Set by core.usercrit.enable_user_critical when the guest
        #: exposes a per-process user critical-region table (§4.4).
        self.user_critical = None
        #: Symbol-table fault mode (None | "miss" | "corrupt"), driven
        #: by the fault injector; read by the hypervisor-side detector.
        self.symbol_fault = None
        self._locks = {}
        self._rwsems = {}
        self._addr_cache = {}
        for lock_class in STANDARD_CLASSES:
            self.lock(lock_class)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_hypervisor(self, hv):
        self.hv = hv

    def attach_netstack(self, nic, **kwargs):
        """Bind a NIC to this guest (creates the RX stack)."""
        self.net = NetStack(self, nic, **kwargs)
        return self.net

    # ------------------------------------------------------------------
    # symbols
    # ------------------------------------------------------------------
    def addr_for(self, symbol_name):
        """Instruction-pointer address for a kernel symbol (``None`` →
        a plain user-space address; ``user:<region>`` → the registered
        user critical region, §4.4)."""
        if symbol_name is None:
            return USER_IP
        addr = self._addr_cache.get(symbol_name)
        if addr is None:
            if symbol_name.startswith("user:"):
                if self.user_critical is None:
                    return USER_IP
                addr = self.user_critical.addr_of(symbol_name[5:]) + 8
            else:
                addr = self.symbols.addr_of(symbol_name) + 0x10
            self._addr_cache[symbol_name] = addr
        return addr

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def lock(self, lock_class, instance=""):
        """Get (or create) the spinlock for ``lock_class``.

        ``lock_class`` may be a :class:`LockClass` or the name of an
        already-created lock. ``instance`` disambiguates multiple locks
        of the same class.
        """
        if isinstance(lock_class, LockClass):
            key = lock_class.name + (":" + instance if instance else "")
            lock = self._locks.get(key)
            if lock is None:
                lock = SpinLock(key, lock_class, kernel=self)
                self._locks[key] = lock
            return lock
        try:
            return self._locks[lock_class]
        except KeyError:
            raise GuestError("unknown lock %r" % lock_class) from None

    def all_locks(self):
        return list(self._locks.values())

    def rwsem(self, name):
        """Get (or create) the reader-writer semaphore called ``name``
        (e.g. ``mmap_sem``)."""
        sem = self._rwsems.get(name)
        if sem is None:
            sem = RwSemaphore(name, kernel=self)
            self._rwsems[name] = sem
        return sem

    def all_rwsems(self):
        return list(self._rwsems.values())

    def lock_section(self, lock, hold_ns):
        """Composite: acquire ``lock``, run its critical section for
        ``hold_ns``, release. The critical-section compute carries the
        lock class's Table-3 symbol so detection can spot a preempted
        holder."""
        yield Acquire(lock)
        yield Compute(hold_ns, symbol=lock.cs_symbol)
        yield Release(lock)

    # ------------------------------------------------------------------
    # IPI / hypervisor relay
    # ------------------------------------------------------------------
    def deliver_ipi(self, src_vcpu, dst_vcpu, op):
        """Send one TLB-shootdown IPI message (called by TlbManager)."""
        work = irqwork.tlb_flush_work(self, dst_vcpu, op)
        self.hv.relay_vipi(src_vcpu, dst_vcpu, op, work, name="tlb_flush")

    def send_resched_ipi(self, src_vcpu, task, now):
        """Cross-vCPU wakeup: reschedule-IPI the task's home vCPU.

        Returns the :class:`IpiOp` the initiator may spin on.
        """
        target = task.vcpu
        op = IpiOp(KIND_RESCHED, src_vcpu, [target], now, op_id=self.hv.next_ipi_id())
        work = irqwork.resched_ipi_work(self, target, op, task)
        self.hv.relay_vipi(src_vcpu, target, op, work, name="resched")
        return op

    def send_call_function(self, src_vcpu, dst_vcpu, now):
        """Synchronous cross-CPU call (``smp_call_function_single``)."""
        op = IpiOp(KIND_CALL, src_vcpu, [dst_vcpu], now, op_id=self.hv.next_ipi_id())
        work = irqwork.call_function_work(self, dst_vcpu, op)
        self.hv.relay_vipi(src_vcpu, dst_vcpu, op, work, name="call_single")
        return op

    def pv_kick(self, vcpu):
        """pv-qspinlock kick: wake a parked lock waiter through the
        hypervisor (wakes with BOOST, like a real event-channel kick)."""
        self.hv.kick_vcpu(vcpu)

    # ------------------------------------------------------------------
    # misc composite helpers
    # ------------------------------------------------------------------
    def syscall_overhead(self, cost_ns=None):
        """A trivial in-kernel stint (non-critical symbol)."""
        yield Compute(us(0.5) if cost_ns is None else cost_ns, symbol="do_syscall_64")

    def record_lock_wait(self, lock, wait_ns, vcpu=None):
        self.lockstat.record_wait(lock.lock_class.name, wait_ns)
        hv = self.hv
        if hv is not None:
            hv.histograms.record("spin_wait", wait_ns)
            tracer = hv.tracer
            emit = tracer.want("lock_acquired") if tracer is not None else None
            if vcpu is not None and emit is not None:
                emit(vcpu=vcpu.name, lock=lock.name, wait_ns=wait_ns)
