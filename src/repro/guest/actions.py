"""Primitive actions executed by a vCPU.

Guest tasks (and kernel work items such as IRQ handlers) are generators
that yield these actions; the pCPU executor in
:mod:`repro.hypervisor.executor` interprets them against shared
guest-kernel state. Each action carries the kernel symbol its
instruction pointer sits in while executing — that symbol (``None``
means user space) is what the hypervisor-side detector resolves.

Actions are mutable: a ``Compute`` interrupted mid-way remembers its
remaining work and resumes when the vCPU is rescheduled, which is how
preempted critical sections stay preempted until accelerated.
"""

from ..errors import WorkloadError


class Action:
    """Base class; ``done`` flips when the executor finishes the action."""

    __slots__ = ("done",)
    #: Kernel symbol the IP sits in; ``None`` = user space.
    symbol = None

    def __init__(self):
        self.done = False


class Compute(Action):
    """Burn CPU for ``duration`` ns.

    ``symbol is None`` models user-level execution (subject to the
    cache-warmth speed model); otherwise it is kernel execution at the
    named symbol, charged at full speed.
    """

    # ``symbol``/``user`` are plain slots, not properties: the executor
    # reads both once per compute chunk.
    __slots__ = ("total", "remaining", "symbol", "user")

    def __init__(self, duration, symbol=None):
        super().__init__()
        if duration < 0:
            raise WorkloadError("negative compute duration %r" % (duration,))
        self.total = duration
        self.remaining = duration
        self.symbol = symbol
        self.user = symbol is None

    def consume(self, amount):
        self.remaining = max(0, self.remaining - amount)
        if self.remaining == 0:
            self.done = True

    def __repr__(self):
        return "Compute(%d/%d, %s)" % (self.remaining, self.total, self.symbol or "user")


class Acquire(Action):
    """Take a guest spinlock, spinning (and possibly PLE-yielding) while
    it is held elsewhere. ``wait_started`` persists across preemptions so
    the recorded wait latency spans the whole acquisition."""

    __slots__ = ("lock", "wait_started", "spun")

    def __init__(self, lock):
        super().__init__()
        self.lock = lock
        self.wait_started = None
        self.spun = 0

    @property
    def symbol(self):
        return self.lock.spin_symbol

    def __repr__(self):
        return "Acquire(%s)" % self.lock.name


class Release(Action):
    """Release a held spinlock (hands off to the next eligible waiter)."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        super().__init__()
        self.lock = lock

    @property
    def symbol(self):
        return self.lock.unlock_symbol

    def __repr__(self):
        return "Release(%s)" % self.lock.name


class Shootdown(Action):
    """Initiate a TLB shootdown: IPI every active sibling and spin until
    all of them acknowledge. The live protocol state is attached by the
    executor on first execution and persists across preemptions."""

    __slots__ = ("op", "wait_started")

    def __init__(self):
        super().__init__()
        self.op = None
        self.wait_started = None

    @property
    def symbol(self):
        return "smp_call_function_many"

    def __repr__(self):
        return "Shootdown(op=%r)" % (self.op,)


class Sleep(Action):
    """Block the calling task on a wait queue until woken. Consumes a
    banked wakeup immediately if one is pending (level-triggered)."""

    __slots__ = ("waitq",)

    def __init__(self, waitq):
        super().__init__()
        self.waitq = waitq

    def __repr__(self):
        return "Sleep(%s)" % self.waitq.name


class Wake(Action):
    """Wake one sleeper of ``waitq`` (try-to-wake-up). A cross-vCPU wake
    sends a reschedule IPI; the default is fire-and-forget (the woken
    task only starts once the recipient vCPU processes the IPI), while
    ``sync=True`` makes the initiator spin for the acknowledgment (the
    ``smp_call_function_single`` wait behaviour), possibly yielding."""

    __slots__ = ("waitq", "sync", "ipi_op", "wait_started")

    def __init__(self, waitq, sync=False):
        super().__init__()
        self.waitq = waitq
        self.sync = sync
        self.ipi_op = None
        self.wait_started = None

    @property
    def symbol(self):
        return "ttwu_do_activate"

    def __repr__(self):
        return "Wake(%s, sync=%s)" % (self.waitq.name, self.sync)


class SmpCallSingle(Action):
    """A synchronous cross-CPU function call
    (``smp_call_function_single``): IPI one sibling vCPU and spin until
    its handler acknowledges (``csd_lock_wait``). The paper's §3.1
    identifies this wait as a major yield source."""

    __slots__ = ("target_index", "op", "wait_started")

    def __init__(self, target_index=None):
        super().__init__()
        self.target_index = target_index
        self.op = None
        self.wait_started = None

    @property
    def symbol(self):
        return "smp_call_function_single"

    def __repr__(self):
        return "SmpCallSingle(%r)" % (self.target_index,)


class GYield(Action):
    """Guest-level cooperative yield: let the in-guest scheduler pick
    another runnable task on this vCPU."""

    __slots__ = ()

    def __repr__(self):
        return "GYield()"


class Emit(Action):
    """Run a zero-duration side effect ``fn(now_ns)`` (metrics hooks,
    sending a network ack to the external client model, ...). ``cost``
    nanoseconds of kernel time are charged first."""

    __slots__ = ("fn", "cost", "symbol")

    def __init__(self, fn, cost=0, symbol=None):
        super().__init__()
        self.fn = fn
        self.cost = cost
        self.symbol = symbol

    def __repr__(self):
        return "Emit(cost=%d)" % self.cost
