"""Guest network receive stack.

Models the path the paper's §3.2 describes: NIC pIRQ → hypervisor →
vIRQ to a designated vCPU → guest hard-IRQ handler → softIRQ protocol
processing → socket delivery → ``ttwu`` wakeup of the waiting
application (possibly via a reschedule IPI to another vCPU).
"""

from collections import deque

from ..errors import GuestError
from ..sim.time import us
from .waitqueue import WaitQueue


class Socket:
    """A receive socket: buffered packets plus a reader wait queue."""

    def __init__(self, flow):
        self.flow = flow
        self.buffer = deque()
        self.waitq = WaitQueue(name="sock:%s" % flow)
        self.received_bytes = 0

    def deliver(self, packet):
        self.buffer.append(packet)
        self.received_bytes += packet.size

    def take(self, limit=None):
        """Pop up to ``limit`` buffered packets (all if ``None``)."""
        out = []
        while self.buffer and (limit is None or len(out) < limit):
            out.append(self.buffer.popleft())
        return out

    @property
    def pending(self):
        return len(self.buffer)


class NetStack:
    """Per-VM RX stack state and configuration."""

    def __init__(
        self,
        kernel,
        nic,
        irq_vcpu_index=0,
        irq_cost=None,
        per_packet_cost=None,
        napi_budget=None,
        sync_wake=False,
    ):
        self.kernel = kernel
        self.nic = nic
        self.irq_vcpu_index = irq_vcpu_index
        self.irq_cost = us(3) if irq_cost is None else irq_cost
        self.per_packet_cost = us(1.5) if per_packet_cost is None else per_packet_cost
        self.napi_budget = napi_budget
        self.sync_wake = sync_wake
        self._sockets = {}

    def socket(self, flow):
        """Get or create the socket bound to ``flow``."""
        sock = self._sockets.get(flow)
        if sock is None:
            sock = Socket(flow)
            self._sockets[flow] = sock
        return sock

    @property
    def irq_vcpu(self):
        return self.kernel.vm.vcpus[self.irq_vcpu_index]

    def deliver(self, packets):
        """Route drained packets into their sockets; returns the set of
        sockets that received data (their readers need waking)."""
        touched = []
        for packet in packets:
            sock = self._sockets.get(packet.flow)
            if sock is None:
                raise GuestError("packet for unbound flow %r" % packet.flow)
            sock.deliver(packet)
            if sock not in touched:
                touched.append(sock)
        return touched
