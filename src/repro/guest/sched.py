"""Per-vCPU guest task scheduler.

A miniature CFS-flavoured scheduler: round-robin among runnable tasks
with a guest time slice, plus wakeup preemption (a freshly woken task —
e.g. iPerf's server when data arrives — preempts a CPU-bound task at the
next action boundary, which is microseconds away). This layer is what
lets a single vCPU host *mixed* behaviour, the case Xen's BOOST cannot
help and the paper's Figure 9 targets.
"""

from collections import deque

from ..errors import GuestError
from ..sim.time import ms
from . import task as task_mod

#: Default guest scheduling granularity (Linux-ish).
DEFAULT_TIMESLICE = ms(6)


class GuestCpu:
    """Task scheduling state for one vCPU."""

    def __init__(self, vcpu, timeslice=DEFAULT_TIMESLICE):
        self.vcpu = vcpu
        self.timeslice = timeslice
        self.current = None
        self.runnable = deque()
        self.tasks = []
        self.need_resched = False
        self.switches = 0

    def add_task(self, task):
        """Register a task created on this vCPU (initially runnable)."""
        if task.vcpu is not self.vcpu:
            raise GuestError("task %s belongs to %s, not %s" % (task.name, task.vcpu, self.vcpu))
        self.tasks.append(task)
        self.runnable.append(task)

    @property
    def has_runnable(self):
        return self.current is not None or bool(self.runnable)

    def pick(self):
        """The task that should run now, or ``None`` (vCPU goes idle).

        Applies wakeup preemption (``need_resched``) and round-robin
        rotation when the current task exhausted its guest slice. Returns
        a ``(task, switched)`` pair so the executor can charge the guest
        context-switch cost.
        """
        current = self.current
        if (
            current is not None
            and not self.runnable
            and current.state == task_mod.RUNNABLE
        ):
            # Fast path (the common case in the executor's action loop):
            # one runnable task, empty queue — no rotation or preemption
            # decision to make.
            self.need_resched = False
            return current, False
        switched = False
        if current is not None and current.state != task_mod.RUNNABLE:
            current = None
        rotate = False
        if current is not None and self.runnable:
            if self.need_resched or current.ran_ns >= self.timeslice:
                rotate = True
        if current is None or rotate:
            if rotate:
                current.ran_ns = 0
                self.runnable.append(current)
            nxt = self.runnable.popleft() if self.runnable else None
            if nxt is not current and nxt is not None:
                switched = True
                self.switches += 1
            current = nxt
            if current is not None:
                current.ran_ns = 0
        self.need_resched = False
        self.current = current
        return current, switched

    def enqueue(self, task, preempt=True):
        """Make ``task`` runnable on this vCPU (wakeup path)."""
        if task.state == task_mod.RUNNABLE and (task is self.current or task in self.runnable):
            return
        task.state = task_mod.RUNNABLE
        task.sleeping_on = None
        if task is not self.current and task not in self.runnable:
            self.runnable.append(task)
        if preempt and self.current is not None and task is not self.current:
            self.need_resched = True

    def sleep(self, task, waitq):
        """Block ``task`` on ``waitq`` (unless a wakeup is banked)."""
        if waitq.try_consume():
            return False
        task.state = task_mod.SLEEPING
        task.sleeping_on = waitq
        waitq.add_sleeper(task)
        if task is self.current:
            self.current = None
        else:
            try:
                self.runnable.remove(task)
            except ValueError:
                pass
        return True

    def yield_current(self):
        """Cooperative yield: rotate the current task to the queue
        tail."""
        if self.current is not None and self.runnable:
            self.current.ran_ns = 0
            self.runnable.append(self.current)
            self.current = None
            self.need_resched = False
