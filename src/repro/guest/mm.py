"""Memory-management composite operations.

``mmap``/``munmap`` are the system calls dedup/vips/memclone hammer
(shared address-space management, per Clements et al. [8] as cited by
the paper). Each is a short critical section under an mm lock;
``munmap`` additionally requires a TLB shootdown across all active
sibling vCPUs. These helpers are ``yield from``-able inside task
programs.
"""

from ..sim.time import us
from .actions import Compute, Shootdown
from .rwsem import READ, WRITE
from .spinlock import PAGE_ALLOC, PAGE_RECLAIM


def mmap(kernel, hold_ns=None, setup_ns=None):
    """Allocate/map memory: page-allocator lock critical section."""
    lock = kernel.lock(PAGE_ALLOC)
    hold = us(3) if hold_ns is None else hold_ns
    setup = us(1) if setup_ns is None else setup_ns
    yield Compute(setup, symbol="do_mmap")
    yield from kernel.lock_section(lock, hold)


def munmap(kernel, hold_ns=None, flush=True):
    """Unmap memory: page-reclaim critical section + TLB shootdown."""
    lock = kernel.lock(PAGE_RECLAIM)
    hold = us(2) if hold_ns is None else hold_ns
    yield Compute(us(1), symbol="do_munmap")
    yield from kernel.lock_section(lock, hold)
    if flush:
        yield Compute(us(1), symbol="native_flush_tlb_others")
        yield Shootdown()


def mmap_locked(kernel, task, hold_ns=None, setup_ns=None):
    """``mmap`` under ``mmap_sem`` held for write — the real syscall's
    locking (address-space layout changes exclude page faults)."""
    sem = kernel.rwsem("mmap_sem")
    yield from sem.acquire(task, WRITE)
    yield from mmap(kernel, hold_ns=hold_ns, setup_ns=setup_ns)
    yield from sem.release(task)


def munmap_locked(kernel, task, hold_ns=None, flush=True):
    """``munmap`` under ``mmap_sem`` for write, with the TLB shootdown
    issued while still holding it (as ``unmap_region`` does)."""
    sem = kernel.rwsem("mmap_sem")
    yield from sem.acquire(task, WRITE)
    yield from munmap(kernel, hold_ns=hold_ns, flush=flush)
    yield from sem.release(task)


def page_fault(kernel, task, service_ns=None):
    """A minor page fault: ``mmap_sem`` for read plus a page-allocator
    critical section."""
    sem = kernel.rwsem("mmap_sem")
    yield Compute(us(0.5), symbol="page_fault")
    yield from sem.acquire(task, READ)
    lock = kernel.lock(PAGE_ALLOC)
    yield from kernel.lock_section(lock, us(1.5) if service_ns is None else service_ns)
    yield from sem.release(task)
