"""Kernel work items executed in IRQ context.

These generators are queued on a vCPU (``vcpu.post_kernel_work``) when
an IPI or vIRQ is delivered to it; the executor runs them *before* any
task context, modelling interrupt priority. Crucially they can only run
while the vCPU holds a pCPU — a preempted vCPU's queued work is exactly
the "delayed critical OS service" of the paper.
"""

from .actions import Compute, Emit, Wake


def tlb_flush_work(kernel, vcpu, op):
    """Handle a TLB-shootdown IPI: run the flush callback and ack."""
    costs = kernel.costs
    yield Compute(costs.ipi_handle, symbol="flush_tlb_func")
    yield Compute(costs.tlb_flush_local, symbol="do_flush_tlb_all")
    yield Emit(lambda now: op.ack(vcpu, now), symbol="irq_exit")


def resched_ipi_work(kernel, vcpu, op, task):
    """Handle a reschedule IPI: activate the woken task locally, ack."""
    costs = kernel.costs

    def _activate(now):
        vcpu.guest_cpu.enqueue(task)
        op.ack(vcpu, now)

    yield Compute(costs.ipi_handle, symbol="scheduler_ipi")
    yield Emit(_activate, symbol="sched_ttwu_pending")


def call_function_work(kernel, vcpu, op):
    """Handle a cross-CPU function call IPI: run the callback, ack."""
    costs = kernel.costs
    yield Compute(costs.ipi_handle, symbol="scheduler_ipi")
    yield Emit(lambda now: op.ack(vcpu, now), symbol="irq_exit")


def net_rx_work(kernel, vcpu, nic, raised_at=None):
    """Handle a NIC vIRQ: hard-IRQ entry, then the softirq drain of the
    RX ring, delivery into sockets, and reader wakeups.

    ``raised_at`` is the injection timestamp; the zero-cost Emit below
    observes raise-to-handler latency (VTD's vIRQ delivery delay)
    without perturbing timing."""
    net = kernel.net
    costs = kernel.costs
    if raised_at is not None:
        hv = kernel.hv
        yield Emit(
            lambda now: hv.histograms.record("virq_delivery", now - raised_at),
            symbol="handle_percpu_irq",
        )
    yield Compute(net.irq_cost, symbol="handle_percpu_irq")
    packets = nic.drain(net.napi_budget)
    if not packets:
        return
    # softIRQ (net_rx_action): per-packet protocol processing.
    yield Compute(net.per_packet_cost * len(packets), symbol="irq_exit")
    touched = net.deliver(packets)
    for socket in touched:
        yield Compute(costs.guest_ctx_switch // 2, symbol="ttwu_do_wakeup")
        yield Wake(socket.waitq, sync=net.sync_wake)
