"""Guest kernel symbol tables.

The paper's detector never asks the guest anything at runtime: it reads
the preempted vCPU's instruction pointer and resolves it against the
guest's ``System.map`` (provided once, out of band). We reproduce that
mechanism literally: every VM carries a :class:`SymbolTable` with
synthetic-but-realistic addresses, vCPU models expose an ``ip`` register,
and the hypervisor-side detector resolves ``ip -> symbol`` with a binary
search, exactly like an address-ordered ``System.map`` lookup.

The table can be serialised to and parsed from the ``System.map`` text
format (``<hex addr> <type> <name>``) so the guest-transparency story is
testable end to end.
"""

import bisect

from ..errors import SymbolTableError

#: Where the synthetic kernel text section starts (x86-64 convention).
KERNEL_TEXT_BASE = 0xFFFFFFFF81000000

#: Bytes of text assigned to each synthetic symbol.
DEFAULT_SYMBOL_SIZE = 0x400

#: Addresses below the kernel base model user-space execution.
USER_IP = 0x0000000000400000


class Symbol:
    """One kernel symbol: a name bound to a half-open address range."""

    __slots__ = ("name", "address", "size", "module")

    def __init__(self, name, address, size=DEFAULT_SYMBOL_SIZE, module=""):
        self.name = name
        self.address = address
        self.size = size
        self.module = module

    @property
    def end(self):
        return self.address + self.size

    def __repr__(self):
        return "<Symbol %s @%#x>" % (self.name, self.address)


class SymbolTable:
    """Address-ordered kernel symbol table with ``System.map`` I/O."""

    def __init__(self, symbols=None):
        self._by_name = {}
        self._addresses = []
        self._symbols = []
        for symbol in symbols or []:
            self.add(symbol)

    def add(self, symbol):
        if symbol.name in self._by_name:
            raise SymbolTableError("duplicate symbol %r" % symbol.name)
        index = bisect.bisect_left(self._addresses, symbol.address)
        if index < len(self._symbols) and self._symbols[index].address < symbol.end:
            raise SymbolTableError("overlapping symbol %r" % symbol.name)
        if index > 0 and self._symbols[index - 1].end > symbol.address:
            raise SymbolTableError("overlapping symbol %r" % symbol.name)
        self._addresses.insert(index, symbol.address)
        self._symbols.insert(index, symbol)
        self._by_name[symbol.name] = symbol

    def __len__(self):
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    def __contains__(self, name):
        return name in self._by_name

    def addr_of(self, name):
        """Start address of ``name`` (raises if unknown)."""
        try:
            return self._by_name[name].address
        except KeyError:
            raise SymbolTableError("unknown symbol %r" % name) from None

    def lookup(self, address):
        """Resolve an instruction pointer to the symbol containing it, or
        ``None`` for user-space / unmapped addresses."""
        if address is None or address < KERNEL_TEXT_BASE:
            return None
        index = bisect.bisect_right(self._addresses, address) - 1
        if index < 0:
            return None
        symbol = self._symbols[index]
        if symbol.address <= address < symbol.end:
            return symbol
        return None

    def resolve_name(self, address):
        """Like :meth:`lookup` but returns the name (or ``None``)."""
        symbol = self.lookup(address)
        return symbol.name if symbol is not None else None

    def to_system_map(self):
        """Render the table in ``System.map`` text format."""
        lines = ["%016x T %s" % (s.address, s.name) for s in self._symbols]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_system_map(cls, text, symbol_size=DEFAULT_SYMBOL_SIZE):
        """Parse ``System.map`` text (address, type, name per line).

        Sizes are inferred from the gap to the next symbol, capped at
        ``symbol_size`` — the same inference a real resolver performs.
        """
        entries = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise SymbolTableError("malformed System.map line %d: %r" % (lineno, raw))
            addr_text, _type, name = parts
            try:
                address = int(addr_text, 16)
            except ValueError:
                raise SymbolTableError(
                    "bad address on System.map line %d: %r" % (lineno, raw)
                ) from None
            entries.append((address, name))
        entries.sort()
        table = cls()
        for index, (address, name) in enumerate(entries):
            if index + 1 < len(entries):
                size = min(symbol_size, entries[index + 1][0] - address)
            else:
                size = symbol_size
            table.add(Symbol(name, address, size=size))
        return table


def build_table(names, base=KERNEL_TEXT_BASE, size=DEFAULT_SYMBOL_SIZE):
    """Lay out ``names`` contiguously from ``base`` into a fresh table.

    Deterministic: the same name list always yields the same addresses,
    so traces and tests can reference addresses stably.
    """
    table = SymbolTable()
    for index, name in enumerate(names):
        table.add(Symbol(name, base + index * size, size=size))
    return table


#: Kernel functions present in the synthetic guest image. The critical
#: ones (Table 3 of the paper) are interleaved with non-critical noise
#: symbols so that detection genuinely discriminates.
DEFAULT_KERNEL_SYMBOLS = (
    "do_syscall_64",
    "irq_enter",
    "irq_exit",
    "handle_percpu_irq",
    "net_rx_action",
    "e1000_intr",
    "copy_user_generic",
    "smp_call_function_single",
    "smp_call_function_many",
    "native_queued_spin_lock_slowpath",
    "do_flush_tlb_all",
    "flush_tlb_all",
    "native_flush_tlb_others",
    "flush_tlb_func",
    "flush_tlb_current_task",
    "flush_tlb_mm_range",
    "flush_tlb_page",
    "leave_mm",
    "get_page_from_freelist",
    "free_one_page",
    "release_pages",
    "vfs_read",
    "vfs_write",
    "scheduler_ipi",
    "resched_curr",
    "kick_process",
    "sched_ttwu_pending",
    "ttwu_do_activate",
    "ttwu_do_wakeup",
    "schedule",
    "__raw_spin_unlock",
    "__raw_spin_unlock_irq",
    "_raw_spin_unlock_irqrestore",
    "_raw_spin_unlock_bh",
    "_raw_spin_lock",
    "__rwsem_do_wake",
    "rwsem_wake",
    "page_fault",
    "do_mmap",
    "do_munmap",
    "default_idle",
)


def default_guest_table():
    """The symbol table every synthetic guest image ships with."""
    return build_table(DEFAULT_KERNEL_SYMBOLS)
