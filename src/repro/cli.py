"""Command-line interface.

Examples::

    repro list                      # experiments and workloads
    repro run table2                # regenerate one paper table/figure
    repro run fig9 --seed 7
    repro run fig7 --progress       # live per-job status line on stderr
    repro telemetry                 # runner/pool/cache metrics, JSON
    repro telemetry --format prom   # Prometheus text exposition
    repro corun gmake --policy static:1 --duration-ms 250
    repro solo exim
"""

import argparse
import json
import sys

from .core.policy import PolicySpec
from .errors import FaultError, ReproError
from .experiments import common, corun_scenario, registry, solo_scenario
from .metrics.report import render_table
from .sched import registry as sched_registry
from .sim.time import ms
from .workloads import registry as workload_registry


def _parse_policy(text):
    """Parse ``baseline`` / ``static:N`` / ``dynamic``."""
    if text == "baseline":
        return PolicySpec.baseline()
    if text == "dynamic":
        return common.dynamic_policy()
    if text.startswith("static:"):
        return PolicySpec.static(int(text.split(":", 1)[1]))
    raise ReproError("unknown policy %r (baseline | static:N | dynamic)" % text)


def _trace_request(args):
    """``--trace``/``--trace=KINDS``/``--trace-kinds KINDS`` -> a job
    trace request dict (or None when tracing was not asked for)."""
    trace = getattr(args, "trace", None)
    trace_kinds = getattr(args, "trace_kinds", None)
    if trace is None and trace_kinds is None:
        return None
    raw = trace_kinds if trace_kinds is not None else trace
    kinds = [kind for kind in raw.split(",") if kind]
    return {"kinds": kinds or None}


def _cmd_list(_args):
    from .faults import builtin_plans
    from .fleet import placement as fleet_placement

    print("experiments: " + ", ".join(registry.available()))
    print("workloads:   " + ", ".join(workload_registry.available()))
    print("schedulers:  " + ", ".join(sched_registry.available()))
    print("fault plans: " + ", ".join(builtin_plans()))
    print("placements:  " + ", ".join(fleet_placement.available()))
    return 0


def _cmd_schedulers(_args):
    rows = [[name, description] for name, description in sched_registry.describe()]
    print(render_table(
        ["backend", "description"], rows,
        title="scheduler backends (use: --scheduler NAME; default: credit)",
    ))
    return 0


def _experiment_name(text):
    """Validate one ``repro run`` experiment argument."""
    if text not in registry.available():
        raise argparse.ArgumentTypeError(
            "unknown experiment %r (available: %s)"
            % (text, ", ".join(registry.available()))
        )
    return text


def _parse_workers(text):
    """``--workers`` argument: a positive integer or ``auto`` (one
    worker per CPU). Raises ``argparse``-friendly errors."""
    if text.strip().lower() == "auto":
        import os

        return max(1, os.cpu_count() or 1)
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a positive integer or 'auto', got %r" % text
        )
    if value < 1:
        raise argparse.ArgumentTypeError("worker count must be >= 1")
    return value


class _ProgressLine:
    """Renders executor progress events as a live status line.

    On a TTY the line is rewritten in place (carriage return, padded to
    the previous width); on a pipe every *finished* job prints one
    plain line and the noisy ``start`` events are suppressed, so CI
    logs stay readable. Events arrive as ``(event, tag, done, total)``
    straight from :class:`repro.runner.executor.Progress`.
    """

    _VERBS = {"hit": "cache hit", "start": "running  ", "done": "done     "}

    def __init__(self, stream=None):
        self.stream = sys.stderr if stream is None else stream
        self.tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._width = 0

    def __call__(self, event, tag, done, total):
        text = "[%*d/%d] %s %s" % (len(str(total)), done, total,
                                   self._VERBS.get(event, event), tag)
        if self.tty:
            self.stream.write("\r" + text + " " * max(0, self._width - len(text)))
            self._width = len(text)
        elif event != "start":
            self.stream.write(text + "\n")
        self.stream.flush()

    def close(self):
        if self.tty and self._width:
            self.stream.write("\n")
            self.stream.flush()


def _cmd_run(args):
    names = list(args.experiment)
    if args.all:
        names = registry.available()
    elif not names:
        raise ReproError("specify at least one experiment (or --all)")
    progress = _ProgressLine() if args.progress else None
    try:
        outcome = registry.run_many(
            names,
            workers=args.workers,
            cache=False if args.no_cache else None,
            trace=_trace_request(args),
            trace_out=args.trace_out,
            faults=getattr(args, "faults", None),
            scheduler=getattr(args, "scheduler", None),
            progress=progress,
            seed=args.seed,
            scale_override=args.scale,
        )
    finally:
        if progress is not None:
            progress.close()
    for index, name in enumerate(outcome):
        if len(outcome) > 1:
            if index:
                print()
            print("=== %s ===" % name)
        print(outcome[name][1])
    if args.trace_out:
        print("\ntrace written to %s" % args.trace_out)
    return 0


def _cmd_fleet(args):
    from .experiments import fleet as fleet_experiment
    from .fleet import placement as fleet_placement

    if args.policies is None:
        policies = fleet_placement.available()
    else:
        policies = [name for name in args.policies.split(",") if name]
    progress = _ProgressLine() if args.progress else None
    try:
        results = fleet_experiment.drive(
            workers=args.workers,
            cache=False if args.no_cache else None,
            progress=progress,
            seed=args.seed,
            scale_override=args.scale,
            scheduler=args.scheduler,
            policies=policies,
            hosts=args.hosts,
            epochs=args.epochs,
            rate=args.rate,
            overcommit=args.overcommit,
            migration_cost_ms=args.migration_cost_ms,
        )
    finally:
        if progress is not None:
            progress.close()
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        print(fleet_experiment.format_result(results))
    return 0


def _cmd_serve(args):
    import asyncio

    from .serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=False if args.no_cache else None,
        max_queue_depth=args.max_queue_depth,
        max_inflight=args.max_inflight,
    )
    return asyncio.run(serve_forever(config))


def _cmd_analyze(args):
    from .obs import analyze

    if args.diff:
        if args.json:
            print(json.dumps(analyze.diff_dict(args.file, args.diff),
                             indent=2, sort_keys=True))
        else:
            print(analyze.diff_files(args.file, args.diff))
    elif args.json:
        print(json.dumps(analyze.report_dict(analyze.analyze_file(args.file)),
                         indent=2, sort_keys=True))
    else:
        print(analyze.format_report(analyze.analyze_file(args.file)))
    return 0


def _cmd_telemetry(args):
    from .obs import telemetry

    if args.file:
        snap, where = telemetry.load_persisted(path=args.file), args.file
    else:
        snap, where = telemetry.load_persisted(), telemetry.snapshot_path()
    if snap is None:
        raise ReproError(
            "no telemetry snapshot at %s (run an experiment first, e.g. "
            "'repro run fig7')" % where
        )
    if args.format == "prom":
        sys.stdout.write(telemetry.render_prom(snap))
    else:
        print(json.dumps(snap, indent=2, sort_keys=True))
    return 0


def _summarise(result, duration_ns):
    rows = []
    for key, workload in sorted(result.workloads.items()):
        extra = ""
        if workload.extra:
            extra = " ".join(
                "%s=%.4g" % (k, v) for k, v in sorted(workload.extra.items())
                if isinstance(v, (int, float))
            )
        rows.append([key, "%.0f" % workload.rate, extra])
    print(render_table(["workload", "rate (units/s)", "details"], rows))
    print()
    causes = []
    for domain, yields in sorted(result.domain_yields.items()):
        causes.append([domain] + [yields.get(c, 0) for c in ("ipi", "spinlock", "halt", "other")])
    print(render_table(["domain", "ipi", "spinlock", "halt", "other"], causes,
                       title="yields by cause"))
    if result.micro_cores or result.adaptive_decisions:
        print("\nmicro-sliced cores at end: %d" % result.micro_cores)


def _cmd_sweep(args):
    from .sim.time import ms as _ms

    duration = _ms(args.duration_ms)
    warmup = _ms(min(args.duration_ms // 2, 120))
    rows = []
    base_rate = None
    for cores in range(0, args.max_cores + 1):
        policy = PolicySpec.baseline() if cores == 0 else PolicySpec.static(cores)
        result = corun_scenario(args.workload, policy=policy, seed=args.seed).build().run(
            duration, warmup_ns=warmup
        )
        rate = result.rate(args.workload)
        if base_rate is None:
            base_rate = rate
        rows.append([
            cores,
            "%.0f" % rate,
            "%.2fx" % (rate / base_rate if base_rate else 0),
            "%.0f" % result.rate("swaptions"),
            result.total_yields("vm1"),
        ])
    print(render_table(
        ["micro cores", "%s/s" % args.workload, "vs baseline", "swaptions/s", "yields"],
        rows,
        title="Micro-sliced core sweep: %s + swaptions" % args.workload,
    ))
    return 0


def _cmd_compare(args):
    from .sim.time import ms as _ms

    duration = _ms(args.duration_ms)
    warmup = _ms(min(args.duration_ms // 2, 120))
    rows = []
    base_rate = None
    for label, policy in (
        ("baseline", PolicySpec.baseline()),
        ("static:%d" % args.cores, PolicySpec.static(args.cores)),
        ("dynamic", common.dynamic_policy()),
    ):
        result = corun_scenario(args.workload, policy=policy, seed=args.seed).build().run(
            duration, warmup_ns=warmup
        )
        rate = result.rate(args.workload)
        if base_rate is None:
            base_rate = rate
        rows.append([
            label,
            "%.0f" % rate,
            "%.2fx" % (rate / base_rate if base_rate else 0),
            result.hv_counters.get("migrations", 0),
            result.micro_cores,
        ])
    print(render_table(
        ["policy", "%s/s" % args.workload, "vs baseline", "migrations", "final cores"],
        rows,
        title="Policy comparison: %s + swaptions" % args.workload,
    ))
    return 0


def _cmd_scenario(args, builder):
    scenario = builder(args.workload, policy=_parse_policy(args.policy), seed=args.seed)
    scheduler = getattr(args, "scheduler", None)
    if scheduler is not None:
        sched_registry.get(scheduler)  # unknown name -> ConfigError, exit 2
        scenario.scheduler = scheduler
    trace = _trace_request(args)
    if trace is not None:
        scenario.trace = True
        scenario.trace_kinds = tuple(trace["kinds"]) if trace["kinds"] else None
        if args.trace_out:
            scenario.trace_capacity = None  # lossless when exporting
    duration = ms(args.duration_ms)
    faults_request = getattr(args, "faults", None)
    if faults_request is not None:
        from .faults import resolve_plan

        scenario.faults = resolve_plan(faults_request, duration)
    system = scenario.build()
    result = system.run(duration)
    _summarise(result, duration)
    if result.faults is not None:
        _report_faults(result.faults)
    if trace is not None:
        tracer = system.tracer
        print("\ntrace: %d records (%d dropped)" % (len(tracer), tracer.dropped))
        if args.trace_out:
            tracer.write_jsonl(args.trace_out)
            print("trace written to %s" % args.trace_out)
    return 0


def _report_faults(digest):
    """Print the degradation digest; raise on invariant violations so
    the process exits non-zero (a degraded run is fine, a nonsensical
    one is not)."""
    counters = digest.get("counters", {})
    rows = [[key, counters[key]] for key in sorted(counters)]
    for section in ("detector", "controller"):
        for key, value in sorted(digest.get(section, {}).items()):
            rows.append(["%s.%s" % (section, key), value])
    print()
    print(render_table(["fault counter", "value"], rows,
                       title="fault injection: %s" % digest.get("plan")))
    violations = digest.get("invariant_violations", [])
    if violations:
        raise FaultError(
            "invariant check failed (%d violations):\n  %s"
            % (len(violations), "\n  ".join(violations))
        )
    print("invariants: OK (%d IPI ops still legitimately in flight)"
          % digest.get("pending_ipis", 0))


def _cmd_faults(args):
    from .faults import FAULT_KINDS, builtin_plans, make_builtin

    rows = []
    for name in builtin_plans():
        plan = make_builtin(name)
        kinds = ",".join(sorted({spec.kind for spec in plan}))
        rows.append([name, kinds, plan.description])
    print(render_table(["plan", "kinds", "description"],
                       rows, title="built-in fault plans (use: --faults NAME)"))
    if args.kinds:
        print()
        kind_rows = [
            [kind, ", ".join("%s=%r" % (k, v) for k, v in sorted(params.items())) or "-"]
            for kind, params in sorted(FAULT_KINDS.items())
        ]
        print(render_table(["fault kind", "parameters (defaults)"], kind_rows,
                           title="fault kinds for hand-written plan JSON"))
    return 0


def _add_faults_arg(parser):
    parser.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="inject faults: a built-in plan name (see 'repro faults') "
        "or a path to a plan JSON file")


def _add_scheduler_arg(parser):
    parser.add_argument(
        "--scheduler", default=None, metavar="NAME",
        help="normal-pool scheduler backend (see 'repro schedulers'; "
        "default: credit)")


def _add_trace_args(parser):
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="KINDS",
        help="enable structured tracing (optionally restrict to a "
        "comma-separated list of record kinds)")
    parser.add_argument(
        "--trace-kinds", default=None, metavar="KINDS",
        help="comma-separated record kinds to trace (implies --trace)")
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the exported trace to FILE as JSONL (see 'repro analyze')")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flexible micro-sliced cores (EuroSys '18) — "
        "simulation-based reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Every simulation-running subcommand takes the same --seed; wire it
    # once as a parent parser instead of repeating the add_argument.
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument(
        "--seed", type=int, default=42,
        help="root RNG seed (default: 42; every stream derives from it)")

    sub.add_parser("list", help="list experiments and workloads")

    run_p = sub.add_parser(
        "run", help="regenerate one or more paper tables/figures",
        parents=[seed_parent],
    )
    # Per-item validation via type=, not choices=: argparse (< 3.12)
    # rejects an empty nargs="*" list against choices, which would
    # break bare `repro run --all`.
    run_p.add_argument("experiment", nargs="*", type=_experiment_name,
                       default=[], metavar="EXPERIMENT",
                       help="experiment name(s) out of: %s; multiple "
                       "experiments share one worker pool and one cache "
                       "pass" % ", ".join(registry.available()))
    run_p.add_argument("--all", action="store_true",
                       help="run every registered experiment as one batch")
    run_p.add_argument("--scale", type=float, default=None,
                       help="duration multiplier (default: REPRO_BENCH_SCALE or 1.0)")
    run_p.add_argument("--workers", type=_parse_workers, default=None,
                       metavar="N|auto",
                       help="simulation worker processes; 'auto' = one per CPU "
                       "(default: REPRO_RUNNER_WORKERS or 1)")
    run_p.add_argument("--no-cache", action="store_true",
                       help="ignore and do not write the on-disk result cache")
    run_p.add_argument("--progress", action="store_true",
                       help="live per-job status line on stderr (cache hits, "
                       "worker pickups, completions)")
    _add_scheduler_arg(run_p)
    _add_trace_args(run_p)
    _add_faults_arg(run_p)

    for name, help_text in (
        ("corun", "run a workload co-located with swaptions"),
        ("solo", "run a workload alone on the host"),
    ):
        p = sub.add_parser(name, help=help_text, parents=[seed_parent])
        p.add_argument("workload", choices=workload_registry.available())
        p.add_argument("--policy", default="baseline",
                       help="baseline | static:N | dynamic")
        p.add_argument("--duration-ms", type=int, default=250)
        _add_scheduler_arg(p)
        _add_trace_args(p)
        _add_faults_arg(p)

    sub.add_parser(
        "schedulers", help="list scheduler backends (for --scheduler)"
    )

    faults_p = sub.add_parser("faults", help="list built-in fault plans")
    faults_p.add_argument("--kinds", action="store_true",
                          help="also document every fault kind and its parameters")

    an_p = sub.add_parser("analyze", help="analyze an exported JSONL trace")
    an_p.add_argument("file", help="trace file written by --trace-out")
    an_p.add_argument("--diff", metavar="OTHER", default=None,
                      help="compare event counts against a second trace file")
    an_p.add_argument("--json", action="store_true",
                      help="emit the analysis as sorted-key JSON instead of "
                      "the human-readable report")

    tel_p = sub.add_parser(
        "telemetry", help="dump the last run's runner/pool/cache metrics"
    )
    tel_p.add_argument("--format", choices=("json", "prom"), default="json",
                       help="output format: sorted-key JSON (default) or "
                       "Prometheus text exposition")
    tel_p.add_argument("--file", default=None, metavar="PATH",
                       help="read this snapshot file instead of the one next "
                       "to the result cache")

    sweep_p = sub.add_parser(
        "sweep", help="sweep micro-sliced core counts for one workload",
        parents=[seed_parent],
    )
    sweep_p.add_argument("workload", choices=workload_registry.available())
    sweep_p.add_argument("--max-cores", type=int, default=4)
    sweep_p.add_argument("--duration-ms", type=int, default=250)

    cmp_p = sub.add_parser(
        "compare", help="compare baseline/static/dynamic for one workload",
        parents=[seed_parent],
    )
    cmp_p.add_argument("workload", choices=workload_registry.available())
    cmp_p.add_argument("--cores", type=int, default=1,
                       help="static micro-sliced core count")
    cmp_p.add_argument("--duration-ms", type=int, default=250)

    fleet_p = sub.add_parser(
        "fleet", help="simulate a multi-host fleet under placement policies",
        parents=[seed_parent],
    )
    fleet_p.add_argument("--policies", default=None, metavar="A,B,...",
                         help="comma-separated placement policies to compare "
                         "(default: all registered; see 'repro list')")
    fleet_p.add_argument("--hosts", type=int, default=6)
    fleet_p.add_argument("--epochs", type=int, default=6)
    fleet_p.add_argument("--rate", type=float, default=24.0,
                         help="expected session arrivals per epoch (Poisson)")
    fleet_p.add_argument("--overcommit", type=float, default=2.0,
                         help="per-host admission cap as a multiple of pCPUs")
    fleet_p.add_argument("--migration-cost-ms", type=float, default=5.0,
                         help="live-migration cost at scale 1.0 (scales with "
                         "the epoch)")
    fleet_p.add_argument("--scale", type=float, default=None,
                         help="duration multiplier (default: REPRO_BENCH_SCALE "
                         "or 1.0)")
    fleet_p.add_argument("--workers", type=_parse_workers, default=None,
                         metavar="N|auto",
                         help="simulation worker processes; 'auto' = one per "
                         "CPU (default: REPRO_RUNNER_WORKERS or 1)")
    fleet_p.add_argument("--no-cache", action="store_true",
                         help="ignore and do not write the on-disk result cache")
    fleet_p.add_argument("--progress", action="store_true",
                         help="live per-job status line on stderr")
    fleet_p.add_argument("--json", action="store_true",
                         help="emit summaries and checks as sorted-key JSON "
                         "(byte-identical across same-seed runs)")
    _add_scheduler_arg(fleet_p)

    serve_p = sub.add_parser(
        "serve",
        help="run the long-lived HTTP simulation service "
        "(see docs/serve.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="bind port; 0 picks a free one (default: 8765)")
    serve_p.add_argument("--workers", type=_parse_workers, default=None,
                         metavar="N|auto",
                         help="simulation worker processes; 'auto' = one per "
                         "CPU (default: REPRO_RUNNER_WORKERS or 1)")
    serve_p.add_argument("--max-queue-depth", type=int, default=64,
                         help="queued submissions before new work gets 429 "
                         "(default: 64)")
    serve_p.add_argument("--max-inflight", type=int, default=8,
                         help="per-client in-flight submission cap "
                         "(default: 8)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="ignore and do not write the on-disk result cache")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "corun":
            return _cmd_scenario(args, corun_scenario)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "telemetry":
            return _cmd_telemetry(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "schedulers":
            return _cmd_schedulers(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "solo":
            return _cmd_scenario(args, lambda wl, policy, seed: solo_scenario(wl, policy=policy, seed=seed))
    except ReproError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
