"""Scale-out job execution.

:func:`execute` takes the declarative job plan an experiment emitted
and returns ``{tag: RunResult}``; :func:`execute_many` does the same
for a whole batch of plans at once (``repro run --all``). Within one
call the executor:

1. deduplicates jobs whose canonical specs coincide — across *all*
   plans in the batch (several tags, and several experiments, can
   describe the same physical simulation);
2. replays every point already present in the on-disk result cache in
   one probe pass;
3. fans the remaining simulations out over the **persistent worker
   pool** (:mod:`repro.runner.pool` — spawned once per process
   lifetime, shared across calls), or runs them inline when
   ``workers <= 1`` / the pool is unavailable.

Three scheduling refinements over the old per-call ``Pool.map``:

* **straggler-aware submission** — jobs are submitted longest-first
  using the persisted cost model (:mod:`repro.runner.costmodel`), and
  completions stream back unordered instead of blocking on a barrier;
* **chunking** — many-small-job plans are dispatched in chunks so the
  per-task queue round-trip amortises;
* **cache-as-transport** — when the result cache is on, workers
  persist their own payload and return only the 64-byte cache key plus
  wall time; the parent never re-pickles multi-megabyte payloads
  through a pipe, and the cache write path is concurrent-safe by
  construction (each entry is written exactly once, atomically, by the
  worker that computed it).

``REPRO_RUNNER_WORKERS`` sets the default pool size (1 = serial,
``auto`` = one per CPU); ``REPRO_CACHE=off`` disables result caching;
``REPRO_RUNNER_POOL=legacy|off`` falls back to the per-call
``Pool.map`` path or to inline execution. Explicit arguments win over
all knobs.
"""

import multiprocessing
import os
import threading
import time
import warnings

from ..errors import ConfigError, WorkerError
from ..obs import telemetry
from . import cache as result_cache
from . import costmodel, pool as pool_mod
from .jobs import SimJob, run_job

#: Executor telemetry: plan-level job accounting (the cache layer
#: counts hits/misses itself; the pool counts dispatches).
_BATCHES = telemetry.counter("runner.batches")
_PLANNED = telemetry.counter("runner.jobs_planned")
_UNIQUE = telemetry.counter("runner.jobs_unique")
_INLINE = telemetry.counter("runner.jobs_inline")

ENV_WORKERS = "REPRO_RUNNER_WORKERS"

#: Serialises the simulation phase across threads. The persistent pool
#: is strictly single-dispatcher (``WorkerPool.run`` raises on
#: re-entry), which was fine while every process had exactly one
#: ``execute*`` caller — but a long-lived multi-client host
#: (``repro serve``) reaches this module from several request threads
#: at once. Without the lock two threads can race the
#: ``shared.running`` check and the loser degrades to inline
#: execution (or trips the re-entrancy error); with it, batches queue
#: up and share the pool in turn, and pool epoch accounting stays
#: coherent. Cache probes and reduce() stay lock-free — only the
#: simulate-the-misses phase is serialised.
_DISPATCH_LOCK = threading.Lock()

#: Chunking kicks in when a plan carries more than ``CHUNK_THRESHOLD``
#: pending jobs per worker; chunks never exceed ``CHUNK_CAP`` jobs so
#: a crash retries at most that many.
CHUNK_THRESHOLD = 4
CHUNK_CAP = 8


def default_workers():
    """Worker count from ``REPRO_RUNNER_WORKERS``.

    Accepts a positive integer or ``auto`` (one worker per CPU).
    Unset/empty means 1 (serial). Anything else is almost certainly a
    typo that used to *silently* degrade to serial — now it warns."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 1
    if raw.lower() == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            "ignoring non-integer %s=%r (use a positive integer or 'auto'); "
            "running serial" % (ENV_WORKERS, raw),
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def _run_job_payload(job_dict):
    """Worker entry point for the *legacy* per-call pool: rebuild the
    job spec and simulate it. Module level (not a closure) so the spawn
    start method can import it."""
    return run_job(SimJob.from_dict(job_dict))


def _pool_map_baseline(jobs, workers):
    """The pre-persistent-pool execution path: spawn a fresh
    ``multiprocessing.Pool`` for this one call and ``map`` over it
    (order-preserving barrier; full interpreter + import + code-salt
    cost per call). Kept as the measured baseline for
    ``benchmarks/test_runner_perf.py`` and reachable via
    ``REPRO_RUNNER_POOL=legacy``."""
    if workers <= 1 or len(jobs) <= 1:
        return [run_job(job) for job in jobs]
    context = multiprocessing.get_context("spawn")
    processes = min(workers, len(jobs))
    with context.Pool(processes=processes) as worker_pool:
        return worker_pool.map(_run_job_payload, [job.to_dict() for job in jobs])


def _chunk_size(pending_count, workers):
    """Jobs per dispatch chunk: 1 until the plan is big enough that the
    queue round-trip would dominate, then roughly ``CHUNK_THRESHOLD``
    waves per worker, capped."""
    if pending_count <= workers * CHUNK_THRESHOLD:
        return 1
    return max(1, min(CHUNK_CAP, pending_count // (workers * CHUNK_THRESHOLD)))


class Progress:
    """Streams job lifecycle events to a caller-provided callback.

    The callback signature is ``callback(event, tag, done, total)``
    where ``event`` is ``"hit"`` (replayed from the result cache),
    ``"start"`` (a worker — or the inline loop — picked the job up) or
    ``"done"`` (result landed). ``done``/``total`` count *finished*
    unique jobs, cache hits included, so a renderer can draw
    ``[done/total]`` without keeping its own books. A ``None`` callback
    makes every notification a no-op.
    """

    __slots__ = ("callback", "total", "done")

    def __init__(self, callback=None, total=0):
        self.callback = callback
        self.total = total
        self.done = 0

    def hit(self, tag):
        self.done += 1
        if self.callback is not None:
            self.callback("hit", tag, self.done, self.total)

    def start(self, tag):
        if self.callback is not None:
            self.callback("start", tag, self.done, self.total)

    def finish(self, tag):
        self.done += 1
        if self.callback is not None:
            self.callback("done", tag, self.done, self.total)


def _simulate_inline(pending, use_cache, cache_dir, model, progress):
    """Serial fallback: run every pending job in this process."""
    payloads = {}
    for job, key in pending:
        progress.start(job.tag)
        start = time.perf_counter()
        payload = run_job(job)
        model.observe(job, time.perf_counter() - start)
        _INLINE.inc()
        if use_cache:
            result_cache.store(key, job, payload, cache_dir)
        payloads[key] = payload
        progress.finish(job.tag)
    return payloads


def _simulate_pending(pending, workers, use_cache, cache_dir, progress=None):
    """Simulate the deduplicated cache-miss jobs; returns ``{key:
    payload}``. Chooses the persistent pool, the legacy per-call pool,
    or inline execution based on ``workers`` and ``REPRO_RUNNER_POOL``."""
    if progress is None:
        progress = Progress()
    with _DISPATCH_LOCK:
        return _simulate_pending_locked(
            pending, workers, use_cache, cache_dir, progress
        )


def _simulate_pending_locked(pending, workers, use_cache, cache_dir, progress):
    model = costmodel.CostModel.load(cache_dir)
    mode = pool_mod.pool_mode()
    try:
        if workers <= 1 or len(pending) <= 1 or mode == "off":
            return _simulate_inline(pending, use_cache, cache_dir, model, progress)
        if mode == "legacy":
            payloads = {}
            computed = _pool_map_baseline([job for job, _key in pending], workers)
            for (job, key), payload in zip(pending, computed):
                if use_cache:
                    result_cache.store(key, job, payload, cache_dir)
                payloads[key] = payload
                progress.finish(job.tag)
            return payloads
        shared = pool_mod.shared_pool(workers)
        if shared is None or shared.running:
            return _simulate_inline(pending, use_cache, cache_dir, model, progress)
        return _simulate_on_pool(
            shared, pending, workers, use_cache, cache_dir, model, progress
        )
    finally:
        if use_cache:  # the model lives inside the cache directory
            model.save()


def _simulate_on_pool(shared, pending, workers, use_cache, cache_dir, model, progress):
    """Dispatch ``pending`` over the persistent pool: longest-first
    submission, streamed unordered completion, cache-as-transport."""
    ordered_jobs = costmodel.order_longest_first([job for job, _ in pending], model)
    key_of = {id(job): key for job, key in pending}
    store_dir = str(result_cache.cache_dir(cache_dir)) if use_cache else None
    entries = [
        (job.to_dict(), key_of[id(job)] if use_cache else None, store_dir)
        for job in ordered_jobs
    ]
    outcomes = shared.run(
        entries,
        chunk_size=_chunk_size(len(entries), workers),
        max_workers=workers,
        on_result=lambda job_id, _outcome: progress.finish(ordered_jobs[job_id].tag),
        on_progress=lambda job_id, _tag: progress.start(ordered_jobs[job_id].tag),
    )
    payloads = {}
    for job, outcome in zip(ordered_jobs, outcomes):
        key = key_of[id(job)]
        if outcome is None:
            outcome = pool_mod.JobOutcome("error", "job produced no outcome", 0.0)
        if outcome.kind == "key":
            payload = result_cache.load(outcome.value, cache_dir)
            if payload is None:
                # The entry vanished between the worker's write and our
                # read (cache dir wiped mid-run?). Recompute inline.
                warnings.warn(
                    "cache-transport entry for job %r disappeared; "
                    "re-simulating inline" % job.tag,
                    RuntimeWarning,
                    stacklevel=3,
                )
                payload = run_job(job)
            model.observe(job, outcome.seconds)
        elif outcome.kind == "payload":
            payload = outcome.value
            model.observe(job, outcome.seconds)
            if use_cache:
                result_cache.store(key, job, payload, cache_dir)
        else:
            raise WorkerError(
                "job %r failed in a worker process:\n%s" % (job.tag, outcome.value)
            )
        payloads[key] = payload
    return payloads


def simulate_jobs(jobs, workers=None, on_job_done=None):
    """Run bare jobs — no cache probe, no dedup, no cache writes — and
    return their payload dicts in input order.

    This is the raw fan-out primitive the payload-manifest verifier
    uses to exercise the persistent pool: payloads travel back through
    the pipe (payload transport) so the check is independent of the
    cache. ``on_job_done(index, payload)`` streams completions (input
    order not guaranteed). Worker failures raise
    :class:`~repro.errors.WorkerError`."""
    jobs = list(jobs)
    if workers is None:
        workers = default_workers()
    shared = None
    if workers > 1 and len(jobs) > 1 and pool_mod.pool_mode() == "persistent":
        shared = pool_mod.shared_pool(workers)
        if shared is not None and shared.running:
            shared = None
    if shared is None:
        payloads = []
        for index, job in enumerate(jobs):
            payload = run_job(job)
            if on_job_done is not None:
                on_job_done(index, payload)
            payloads.append(payload)
        return payloads

    def on_result(job_id, outcome):
        if on_job_done is not None and outcome.kind == "payload":
            on_job_done(job_id, outcome.value)

    with _DISPATCH_LOCK:
        outcomes = shared.run(
            [(job.to_dict(), None, None) for job in jobs],
            chunk_size=_chunk_size(len(jobs), workers),
            max_workers=workers,
            on_result=on_result,
        )
    payloads = []
    for job, outcome in zip(jobs, outcomes):
        if outcome is None or outcome.kind != "payload":
            detail = outcome.value if outcome is not None else "no outcome"
            raise WorkerError("job %r failed in a worker process:\n%s" % (job.tag, detail))
        payloads.append(outcome.value)
    return payloads


def _probe_plans(plans, use_cache, cache_dir):
    """One cache-probe pass across every plan in the batch. Returns
    ``(keyed, payloads, pending, hit_tags)`` where ``keyed`` maps each
    plan name to its ``[(job, key)]`` list, ``payloads`` holds every
    cache hit, ``pending`` lists the deduplicated misses, and
    ``hit_tags`` the tags replayed from cache (for progress
    reporting)."""
    keyed = {}
    payloads = {}
    pending = []
    pending_keys = set()
    hit_tags = []
    for name, jobs in plans.items():
        jobs = list(jobs)
        tags = [job.tag for job in jobs]
        if len(set(tags)) != len(tags):
            raise ConfigError(
                "duplicate job tags in plan%s: %r"
                % (" %r" % name if name else "", sorted(tags))
            )
        keyed[name] = [(job, result_cache.job_key(job)) for job in jobs]
        for job, key in keyed[name]:
            if key in payloads or key in pending_keys:
                continue  # duplicate physical point inside this batch
            if use_cache:
                hit = result_cache.load(key, cache_dir)
                if hit is not None:
                    payloads[key] = hit
                    hit_tags.append(job.tag)
                    continue
            pending.append((job, key))
            pending_keys.add(key)
    return keyed, payloads, pending, hit_tags


def execute(jobs, workers=None, cache=None, cache_dir=None, progress=None):
    """Execute a job plan; returns ``{tag: RunResult}`` in plan order.

    ``workers=None`` reads ``REPRO_RUNNER_WORKERS``; ``cache=None``
    reads ``REPRO_CACHE`` (``True``/``False`` force it); ``cache_dir``
    overrides the cache location (mainly for tests); ``progress`` is a
    ``callback(event, tag, done, total)`` live-progress hook (see
    :class:`Progress`).
    """
    return execute_many(
        {"": jobs}, workers=workers, cache=cache, cache_dir=cache_dir,
        progress=progress,
    )[""]


def execute_many(plans, workers=None, cache=None, cache_dir=None, progress=None):
    """Execute a batch of job plans sharing one pool and one
    cache-probe pass; returns ``{name: {tag: RunResult}}``.

    ``plans`` maps a plan name to its job list. Jobs that describe the
    same physical simulation — within one plan or across plans — are
    simulated once. This is what ``repro run --all`` (and any
    multi-experiment invocation) goes through, so e.g. the seed-42
    gmake co-run baseline shared by fig4, table2, and table4a costs
    one simulation for the whole batch.

    On completion the process's merged telemetry snapshot (pool, cache,
    cost model, engine totals — worker registries included) is
    persisted next to the result cache for ``repro telemetry``; the
    write is best-effort and independent of whether result caching is
    enabled.
    """
    from ..experiments.results import RunResult

    plans = {name: list(jobs) for name, jobs in plans.items()}
    if workers is None:
        workers = default_workers()
    use_cache = result_cache.enabled() if cache is None else bool(cache)

    keyed, payloads, pending, hit_tags = _probe_plans(plans, use_cache, cache_dir)
    _BATCHES.inc()
    _PLANNED.inc(sum(len(pairs) for pairs in keyed.values()))
    _UNIQUE.inc(len(payloads) + len(pending))
    tracker = Progress(progress, total=len(payloads) + len(pending))
    for tag in hit_tags:
        tracker.hit(tag)
    if pending:
        payloads.update(
            _simulate_pending(pending, workers, use_cache, cache_dir, tracker)
        )
    telemetry.persist(cache_dir)
    return {
        name: {job.tag: RunResult.from_dict(payloads[key]) for job, key in pairs}
        for name, pairs in keyed.items()
    }
