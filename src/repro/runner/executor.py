"""Parallel job execution.

:func:`execute` takes the declarative job plan an experiment emitted
and returns ``{tag: RunResult}``. Within one call it:

1. deduplicates jobs whose canonical specs coincide (several tags can
   describe the same physical simulation);
2. replays every point already present in the on-disk result cache;
3. fans the remaining simulations out over a ``multiprocessing`` pool
   (``spawn`` start method — jobs are plain picklable specs and the
   scenario is rebuilt inside the worker), or runs them inline when
   ``workers <= 1``.

``REPRO_RUNNER_WORKERS`` sets the default pool size (1 = serial);
``REPRO_CACHE=off`` disables result caching. Explicit arguments win
over both knobs.
"""

import multiprocessing
import os

from ..errors import ConfigError
from . import cache as result_cache
from .jobs import SimJob, run_job

ENV_WORKERS = "REPRO_RUNNER_WORKERS"


def default_workers():
    """Worker count from ``REPRO_RUNNER_WORKERS`` (default: 1, serial)."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _run_job_payload(job_dict):
    """Worker entry point: rebuild the job spec and simulate it. Module
    level (not a closure) so the spawn start method can import it."""
    return run_job(SimJob.from_dict(job_dict))


def _simulate(jobs, workers):
    """Run ``jobs`` and return their payloads in order."""
    if workers <= 1 or len(jobs) <= 1:
        return [run_job(job) for job in jobs]
    context = multiprocessing.get_context("spawn")
    processes = min(workers, len(jobs))
    with context.Pool(processes=processes) as pool:
        return pool.map(_run_job_payload, [job.to_dict() for job in jobs])


def execute(jobs, workers=None, cache=None, cache_dir=None):
    """Execute a job plan; returns ``{tag: RunResult}`` in plan order.

    ``workers=None`` reads ``REPRO_RUNNER_WORKERS``; ``cache=None``
    reads ``REPRO_CACHE`` (``True``/``False`` force it); ``cache_dir``
    overrides the cache location (mainly for tests).
    """
    from ..experiments.results import RunResult

    jobs = list(jobs)
    tags = [job.tag for job in jobs]
    if len(set(tags)) != len(tags):
        raise ConfigError("duplicate job tags in plan: %r" % sorted(tags))
    if workers is None:
        workers = default_workers()
    use_cache = result_cache.enabled() if cache is None else bool(cache)

    keyed = [(job, result_cache.job_key(job)) for job in jobs]
    payloads = {}
    pending = []
    pending_keys = set()
    for job, key in keyed:
        if key in payloads or key in pending_keys:
            continue  # duplicate physical point inside this plan
        if use_cache:
            hit = result_cache.load(key, cache_dir)
            if hit is not None:
                payloads[key] = hit
                continue
        pending.append((job, key))
        pending_keys.add(key)

    if pending:
        computed = _simulate([job for job, _key in pending], workers)
        for (job, key), payload in zip(pending, computed):
            if use_cache:
                result_cache.store(key, job, payload, cache_dir)
            payloads[key] = payload

    return {job.tag: RunResult.from_dict(payloads[key]) for job, key in keyed}
