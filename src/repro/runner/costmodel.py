"""Per-job wall-time cost model for straggler-aware scheduling.

``pool.map`` used to submit jobs in plan order and block on a barrier:
a plan whose longest job happened to sit last finished one whole
straggler later than necessary. The executor now orders submission
**longest-first** (classic LPT list scheduling) using predictions from
this model, so the expensive jobs start immediately and the small ones
pack into the tail.

The model is deliberately simple and robust:

* every finished job contributes one observation — wall seconds per
  simulated nanosecond — under a coarse feature key (scenario kind,
  policy mode, traced?, faulted?); scenarios differ in event density
  by an order of magnitude, which is exactly what the key captures;
* observations fold into an exponentially-weighted moving average
  (:data:`ALPHA`), so the model tracks machine speed without churning
  on noise;
* predictions are ``rate × simulated horizon``. An unseen feature
  falls back to the mean of the known rates, then to
  :data:`DEFAULT_RATE` — with no data at all, prediction degrades to
  ordering by simulated horizon, which is still a good LPT proxy;
* the table persists as ``meta/costmodel.json`` *alongside* the
  result cache entries (``meta/`` keeps it out of the entry
  namespace; same best-effort durability rules: atomic tmp+rename,
  merge-on-save so concurrent runs keep each other's keys, corrupt
  files silently start fresh). Timings are advisory — they affect
  scheduling order only, never results — so sharing the cache
  directory costs nothing and means a warm cache comes with a warm
  cost model. When caching is off the model still *loads* (ordering
  hints are free) but is never written.
"""

import json
import os

from ..obs import telemetry
from . import cache as result_cache

#: EWMA weight of the newest observation.
ALPHA = 0.5

#: Fallback wall-seconds per simulated nanosecond (~2 wall-sec per
#: simulated second, the observed order of magnitude for this engine).
DEFAULT_RATE = 2e-9

FILENAME = "costmodel.json"
SUBDIR = "meta"


def model_path(cache_dir=None):
    """Where the model lives for a given cache directory."""
    return result_cache.cache_dir(cache_dir) / SUBDIR / FILENAME


def feature(job):
    """Coarse cost class of a job: scenario × policy mode × traced ×
    faulted. Jobs in one class share a wall-time-per-simulated-ns rate.

    Fleet host jobs additionally key on a log2 bucket of their domain
    count: a host running 16 session VMs generates an order of
    magnitude more events per simulated ns than one running a single
    VM, and folding both into one rate would wreck LPT ordering for
    exactly the plans where it matters most."""
    policy = job.policy or {}
    scenario = job.scenario
    domains = (job.scenario_kwargs or {}).get("domains")
    if domains is not None:
        scenario = "%s-d%d" % (scenario, max(0, len(domains)).bit_length())
    return "|".join(
        (
            scenario,
            policy.get("mode", "baseline"),
            "traced" if job.trace is not None else "plain",
            "faulted" if job.faults is not None else "healthy",
        )
    )


def _horizon_ns(job):
    return max(1, int(job.warmup_ns) + int(job.duration_ns))


class CostModel:
    """EWMA wall-time rates per job feature, persisted best-effort."""

    def __init__(self, rates=None, path=None):
        self._rates = dict(rates or {})
        self._path = path
        self._dirty = False

    @classmethod
    def load(cls, cache_dir=None):
        """Load the model stored alongside the result cache (empty
        model on any read problem — timings are advisory)."""
        path = model_path(cache_dir)
        rates = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if isinstance(data, dict):
                rates = {
                    str(key): float(value)
                    for key, value in data.get("rates", {}).items()
                    if isinstance(value, (int, float)) and value > 0
                }
        except (OSError, ValueError):
            pass
        return cls(rates, path)

    def predict(self, job):
        """Predicted wall seconds for ``job`` (never raises)."""
        rate = self._rates.get(feature(job))
        if rate is None:
            if self._rates:
                rate = sum(self._rates.values()) / len(self._rates)
            else:
                rate = DEFAULT_RATE
        return rate * _horizon_ns(job)

    def observe(self, job, seconds):
        """Fold one finished job's wall time into its feature's rate.

        Before updating, the *pre-observation* prediction is scored
        against the actual wall time, so LPT ordering quality is
        measurable per feature class: ``costmodel.<class>.abs_err_us``
        (absolute error, log2 µs histogram) and
        ``costmodel.<class>.err_pct`` (relative error) — both
        wall-derived, plus a deterministic observation counter."""
        if seconds <= 0:
            return
        predicted = self.predict(job)
        key = feature(job)
        telemetry.counter("costmodel.%s.observations" % key).inc()
        telemetry.observe(
            "costmodel.%s.abs_err_us" % key, abs(predicted - seconds) * 1e6
        )
        telemetry.observe(
            "costmodel.%s.err_pct" % key, 100.0 * abs(predicted - seconds) / seconds
        )
        rate = seconds / _horizon_ns(job)
        previous = self._rates.get(key)
        if previous is None:
            self._rates[key] = rate
        else:
            self._rates[key] = ALPHA * rate + (1.0 - ALPHA) * previous
        self._dirty = True

    def save(self):
        """Merge-persist the rates (atomic rename, best-effort). A
        concurrent run's keys survive: we re-read before writing and
        only overwrite features we observed ourselves."""
        if not self._dirty or self._path is None:
            return
        merged = dict(self._rates)
        try:
            with open(self._path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            for key, value in data.get("rates", {}).items():
                if key not in merged and isinstance(value, (int, float)) and value > 0:
                    merged[str(key)] = float(value)
        except (OSError, ValueError, AttributeError):
            pass
        tmp = self._path.with_name("%s.tmp.%d" % (FILENAME, os.getpid()))
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps({"rates": merged}, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self._path)
            self._dirty = False
        except OSError:
            pass  # advisory data; never fail a run over it


def order_longest_first(jobs, model):
    """``jobs`` sorted by predicted cost, longest first. Ties (and the
    no-data case within one feature class) fall back to the simulated
    horizon, then to plan order — the sort is stable, so equal-cost
    jobs keep their submission order."""
    return sorted(
        jobs,
        key=lambda job: (model.predict(job), _horizon_ns(job)),
        reverse=True,
    )
