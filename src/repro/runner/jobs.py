"""Self-describing simulation jobs.

A :class:`SimJob` is a picklable, JSON-serializable description of one
simulation point: which canned scenario to build (by name), with which
workload kwargs, which policy, seed, duration, and warmup. Experiment
modules emit SimJobs from their ``plan()``; the executor materialises
them — in this process or in a worker process — with :func:`run_job`;
each experiment's ``reduce()`` then folds the hydrated results back
into its historical ``run()`` return shape.

Jobs deliberately carry *descriptions*, not live objects: a worker
process rebuilds the scenario from the spec, which keeps jobs cheap to
pickle under the ``spawn`` start method and gives the result cache a
canonical identity to hash.

Everything in this module is import-light (stdlib only at module
scope); the scenario/policy machinery is imported lazily inside
:func:`build_system` so ``repro.runner`` never participates in an
import cycle with ``repro.experiments``.
"""

import dataclasses
import json
import time

from ..errors import ConfigError
from ..obs import telemetry

#: Engine telemetry: simulated-event and wall-time totals per job,
#: accumulated wherever the job actually ran (worker registries stream
#: back to the parent over the result pipe).
_JOBS_SIMULATED = telemetry.counter("engine.jobs_simulated")
_EVENTS_SIMULATED = telemetry.counter("engine.events_simulated")
_JOB_WALL_SECONDS = telemetry.counter("engine.job_wall_seconds")

#: Modes understood by :func:`build_system`. ``baseline``/``static``/
#: ``dynamic`` map onto :class:`~repro.core.policy.PolicySpec`;
#: ``vturbo``/``vtrs`` are the Table-1 comparator schemes installed
#: post-build; ``yield_only`` is the ablation engine with the relay
#: hooks disabled.
POLICY_MODES = ("baseline", "static", "dynamic", "vturbo", "vtrs", "yield_only")

#: Scenario overrides :func:`build_system` understands. Exposed (with
#: :func:`available_scenarios`) so submission front ends — ``repro
#: serve`` validating raw-SimJob JSON before it reaches a worker — can
#: reject unknown knobs with a 4xx instead of a worker-side crash.
KNOWN_OVERRIDES = ("scheduler", "micro_slice", "ple_window", "pv_spin_rounds")


def _scenario_builders():
    """Name → scenario-builder mapping (imports deferred to avoid the
    ``repro.runner`` ↔ ``repro.experiments`` cycle)."""
    from ..experiments.scenarios import (
        corun_scenario,
        fleet_host_scenario,
        mixed_io_scenario,
        solo_io_scenario,
        solo_scenario,
    )

    return {
        "corun": corun_scenario,
        "solo": solo_scenario,
        "mixed_io": mixed_io_scenario,
        "solo_io": solo_io_scenario,
        "fleet_host": fleet_host_scenario,
    }


def available_scenarios():
    """Sorted scenario names a :class:`SimJob` may reference."""
    return sorted(_scenario_builders())


def baseline_policy():
    return {"mode": "baseline"}


def static_policy(micro_cores, user_critical=False):
    return {
        "mode": "static",
        "micro_cores": int(micro_cores),
        "user_critical": bool(user_critical),
    }


def dynamic_policy(user_critical=False, **adaptive_kwargs):
    return {
        "mode": "dynamic",
        "adaptive_kwargs": dict(adaptive_kwargs),
        "user_critical": bool(user_critical),
    }


def vturbo_policy(turbo_cores=1):
    return {"mode": "vturbo", "turbo_cores": int(turbo_cores)}


def vtrs_policy(pool_cores=1):
    return {"mode": "vtrs", "pool_cores": int(pool_cores)}


def yield_only_policy(micro_cores=1):
    return {"mode": "yield_only", "micro_cores": int(micro_cores)}


@dataclasses.dataclass
class SimJob:
    """One simulation point, self-contained and picklable.

    ``tag`` names the job inside its plan (unique per plan; used by
    ``reduce()``); it is *excluded* from the cache identity so that the
    same physical simulation shared by several experiments (e.g. the
    seed-42 gmake co-run baseline in fig4, table2, and table4a) hits a
    single cache entry.
    """

    tag: str
    scenario: str
    duration_ns: int
    warmup_ns: int = 0
    seed: int = 42
    scenario_kwargs: dict = dataclasses.field(default_factory=dict)
    policy: dict = dataclasses.field(default_factory=baseline_policy)
    overrides: dict = dataclasses.field(default_factory=dict)
    #: Optional trace request: ``{"kinds": [..] or None}``. Part of the
    #: cache identity — a traced result carries its records in the
    #: payload, so it must not be conflated with an untraced one.
    trace: dict = None
    #: Optional fault plan in its canonical dict form
    #: (:meth:`~repro.faults.plan.FaultPlan.to_dict`). Part of the cache
    #: identity for the same reason as ``trace``: a faulted result must
    #: never be conflated with a healthy one.
    faults: dict = None

    def spec(self):
        """The canonical, tag-free description — the cache identity."""
        spec = {
            "scenario": self.scenario,
            "scenario_kwargs": self.scenario_kwargs,
            "policy": self.policy,
            "overrides": self.overrides,
            "seed": self.seed,
            "duration_ns": self.duration_ns,
            "warmup_ns": self.warmup_ns,
        }
        if self.trace is not None:
            spec["trace"] = self.trace
        if self.faults is not None:
            spec["faults"] = self.faults
        return spec

    def canonical(self):
        """Stable string form of :meth:`spec` (hashed by the cache)."""
        return json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))

    def to_dict(self):
        return {"tag": self.tag, **self.spec()}

    @classmethod
    def from_dict(cls, payload):
        return cls(**payload)


def build_system(job):
    """Build the ready-to-run :class:`~repro.experiments.scenarios.System`
    a job describes (imports deferred to avoid import cycles)."""
    from ..core.comparators import VTrsPolicy, VTurboPolicy
    from ..core.microslice import MicroSliceEngine
    from ..core.policy import PolicySpec
    from ..hw.ple import PleConfig

    builders = _scenario_builders()
    builder = builders.get(job.scenario)
    if builder is None:
        raise ConfigError(
            "unknown scenario %r (available: %s)" % (job.scenario, ", ".join(sorted(builders)))
        )
    policy = dict(job.policy or {"mode": "baseline"})
    mode = policy.get("mode", "baseline")
    if mode not in POLICY_MODES:
        raise ConfigError("unknown job policy mode %r" % mode)

    scenario = builder(seed=job.seed, **dict(job.scenario_kwargs))
    if mode == "static":
        scenario.policy = PolicySpec.static(
            policy["micro_cores"], user_critical=policy.get("user_critical", False)
        )
    elif mode == "dynamic":
        scenario.policy = PolicySpec.dynamic(
            user_critical=policy.get("user_critical", False),
            **policy.get("adaptive_kwargs", {})
        )

    overrides = dict(job.overrides or {})
    if "scheduler" in overrides:
        scenario.scheduler = overrides.pop("scheduler")
    if "micro_slice" in overrides:
        scenario.micro_slice = overrides.pop("micro_slice")
    if "ple_window" in overrides:
        scenario.ple = PleConfig(window=overrides.pop("ple_window"))
    if "pv_spin_rounds" in overrides:
        scenario.pv_spin_rounds = overrides.pop("pv_spin_rounds")
    if overrides:
        raise ConfigError("unknown scenario overrides %r" % sorted(overrides))

    if job.trace is not None:
        scenario.trace = True
        kinds = job.trace.get("kinds")
        scenario.trace_kinds = tuple(kinds) if kinds else None
        # Export-bound traces must be lossless: no ring, no drops.
        scenario.trace_capacity = None

    if job.faults is not None:
        scenario.faults = job.faults

    system = scenario.build()
    if mode == "vturbo":
        system.hv.set_policy(VTurboPolicy(turbo_cores=policy.get("turbo_cores", 1)))
    elif mode == "vtrs":
        system.hv.set_policy(VTrsPolicy(pool_cores=policy.get("pool_cores", 1)))
    elif mode == "yield_only":
        system.hv.set_policy(
            MicroSliceEngine(accelerate_virq=False, accelerate_vipi=False)
        )
        system.hv.set_micro_cores(policy.get("micro_cores", 1))
    return system


def run_job(job):
    """Simulate one job and return its result as a canonical payload
    dict. The payload is round-tripped through JSON so that a cold run,
    a worker-process run, and a cache replay all yield bit-identical
    structures. Telemetry (event/wall totals) is recorded *beside* the
    payload, never inside it — the byte-identity gate depends on that."""
    start = time.perf_counter()
    system = build_system(job)
    result = system.run(job.duration_ns, warmup_ns=job.warmup_ns)
    payload = json.loads(json.dumps(result.to_dict()))
    _JOBS_SIMULATED.inc()
    _EVENTS_SIMULATED.inc(system.sim.executed_events)
    wall = time.perf_counter() - start
    _JOB_WALL_SECONDS.inc(wall)
    telemetry.observe("engine.job_wall_us", wall * 1e6)
    return payload
