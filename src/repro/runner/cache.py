"""Content-addressed on-disk cache for simulation job results.

Every :class:`~repro.runner.jobs.SimJob` hashes its canonical spec plus
a *code-version salt* (a digest over the ``repro`` package sources) to
a cache key; results are persisted as one JSON file per key under
``.repro-cache/``. Because simulations are deterministic functions of
their spec, a hit can be replayed instead of re-simulated — repeated
``repro run`` or pytest invocations skip every already-simulated
point. Any source change rolls the salt, so stale results can never be
replayed against new code.

Environment knobs:

* ``REPRO_CACHE=off`` disables the cache entirely;
* ``REPRO_CACHE_DIR`` relocates it (default: ``.repro-cache/`` under
  the current working directory).

Corrupt or poisoned cache files are ignored with a ``RuntimeWarning``
and transparently re-simulated, never crash a run.
"""

import hashlib
import json
import os
import time
import warnings
from functools import lru_cache
from pathlib import Path

from ..obs import telemetry

#: Cache telemetry (see ``docs/observability.md`` §6). Every formerly
#: warn-only degradation path (unreadable entry, poisoned entry, stale
#: tmp sweep, failed store) now also counts — the warning stays for
#: humans, the counter feeds dashboards and tests.
_HITS = telemetry.counter("cache.hits")
_MISSES = telemetry.counter("cache.misses")
_HIT_BYTES = telemetry.counter("cache.hit_bytes")
_CORRUPT = telemetry.counter("cache.corrupt_entries")
_POISONED = telemetry.counter("cache.poisoned_entries")
_STORES = telemetry.counter("cache.stores")
_STORE_BYTES = telemetry.counter("cache.store_bytes")
_STORE_ERRORS = telemetry.counter("cache.store_errors")
_SWEEP_RUNS = telemetry.counter("cache.sweep_runs")
_SWEEP_REMOVED = telemetry.counter("cache.sweep_removed")

ENV_TOGGLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
DEFAULT_DIR = ".repro-cache"

#: Bump to invalidate every existing entry on a format change.
FORMAT = 1

_OFF_VALUES = ("off", "0", "false", "no", "disabled")


def enabled():
    """Whether the cache is on (``REPRO_CACHE`` not set to an off value)."""
    return os.environ.get(ENV_TOGGLE, "on").strip().lower() not in _OFF_VALUES


def cache_dir(override=None):
    """Resolve the cache directory (override > env > default)."""
    if override is not None:
        return Path(override)
    return Path(os.environ.get(ENV_DIR) or DEFAULT_DIR)


@lru_cache(maxsize=1)
def code_salt():
    """Digest of every ``repro`` source file; part of each cache key so
    edits to the simulator invalidate previously cached results."""
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode())
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def job_key(job):
    """Content hash identifying one simulation point at one code version."""
    blob = "%d|%s|%s" % (FORMAT, code_salt(), job.canonical())
    return hashlib.sha256(blob.encode()).hexdigest()


def entry_path(key, override=None):
    return cache_dir(override) / ("%s.json" % key)


def load(key, override=None):
    """Return the cached result payload for ``key``, or ``None`` on a
    miss. Unreadable or poisoned entries warn and count as misses."""
    path = entry_path(key, override)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        payload = json.loads(text)
    except FileNotFoundError:
        _MISSES.inc()
        return None
    except (OSError, ValueError, UnicodeDecodeError) as err:
        _CORRUPT.inc()
        _MISSES.inc()
        warnings.warn(
            "ignoring corrupt result cache entry %s (%s); re-simulating" % (path, err),
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != FORMAT
        or payload.get("key") != key
        or not isinstance(payload.get("result"), dict)
    ):
        _POISONED.inc()
        _MISSES.inc()
        warnings.warn(
            "ignoring malformed result cache entry %s; re-simulating" % path,
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    _HITS.inc()
    _HIT_BYTES.inc(len(text))
    return payload["result"]


#: A ``*.tmp.<pid>`` file older than this is presumed leaked by a
#: crashed run and swept; young tmp files may belong to a concurrent
#: writer mid-rename and are left alone.
TMP_SWEEP_AGE_SECONDS = 3600

#: How often one process re-sweeps a directory. The latch used to be
#: once-per-process, which was correct for CLI runs but wrong for a
#: long-lived ``repro serve`` host: a week-old server would never
#: clean up tmp files leaked by runs that crashed after its first
#: store. Re-arming on an interval keeps the sweep cheap (one
#: directory scan per hour per directory) while bounding how long a
#: leak can linger.
SWEEP_INTERVAL_SECONDS = 3600

#: When this process last swept each directory
#: (``{str(dir): monotonic_seconds}``); entries older than
#: :data:`SWEEP_INTERVAL_SECONDS` re-arm.
_SWEPT_DIRS = {}


def reset_sweep_latch():
    """Forget when this process last swept each directory. The latch
    used to be unreachable module state, which made the sweep
    untestable after the first store; tests (and long-lived services
    that relocate their cache) reset it explicitly."""
    _SWEPT_DIRS.clear()


def sweep_stale_tmp(directory, max_age_seconds=TMP_SWEEP_AGE_SECONDS):
    """Delete ``*.tmp.*`` files older than ``max_age_seconds`` from
    ``directory``; returns how many were removed. Every failure is
    ignored — a concurrent writer renaming its tmp away mid-sweep is
    normal, not an error."""
    removed = 0
    _SWEEP_RUNS.inc()
    try:
        candidates = list(Path(directory).glob("*.tmp.*"))
    except OSError:
        return 0
    cutoff = time.time() - max_age_seconds
    for path in candidates:
        try:
            if path.stat().st_mtime < cutoff:
                path.unlink()
                removed += 1
        except OSError:
            continue
    _SWEEP_REMOVED.inc(removed)
    return removed


def store(key, job, result, override=None):
    """Persist one job result. Writes are atomic (tmp + rename) so a
    crashed run can at worst leave a stale tmp file, never a torn
    entry — and at most once per :data:`SWEEP_INTERVAL_SECONDS` a
    store opportunistically sweeps tmp files old enough to be such
    leftovers. Failures degrade to a warning — caching is
    best-effort."""
    directory = cache_dir(override)
    path = entry_path(key, override)
    tmp = directory / ("%s.tmp.%d" % (key, os.getpid()))
    swept_key = str(directory)
    now = time.monotonic()
    last_swept = _SWEPT_DIRS.get(swept_key)
    if last_swept is None or now - last_swept >= SWEEP_INTERVAL_SECONDS:
        _SWEPT_DIRS[swept_key] = now
        sweep_stale_tmp(directory)
    blob = json.dumps(
        {"format": FORMAT, "key": key, "job": job.to_dict(), "result": result},
        sort_keys=True,
    )
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp.write_text(blob, encoding="utf-8")
        os.replace(tmp, path)
        _STORES.inc()
        _STORE_BYTES.inc(len(blob))
    except OSError as err:
        _STORE_ERRORS.inc()
        warnings.warn(
            "could not write result cache entry %s (%s)" % (path, err),
            RuntimeWarning,
            stacklevel=2,
        )
