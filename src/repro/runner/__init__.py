"""Declarative experiment execution: job plans, a persistent-pool
executor, and a content-addressed result cache.

Every experiment module splits into ``plan()`` (emit a list of
:class:`SimJob` specs) and ``reduce()`` (fold ``{tag: RunResult}`` back
into the historical result shape); ``run()`` is simply
``reduce(execute(plan(...)))``. Because jobs are self-describing and
deterministic, :func:`execute` can fan them out over the persistent
worker pool (``REPRO_RUNNER_WORKERS`` / ``--workers``, spawned once
per process and shared across calls — see :mod:`repro.runner.pool`)
and replay any point it has simulated before from ``.repro-cache/``
(``REPRO_CACHE=off`` / ``--no-cache`` to disable). Whole batches of
plans share one pool and one cache-probe pass through
:func:`execute_many` (``repro run --all``).
"""

from . import cache, costmodel, pool
from .executor import ENV_WORKERS, default_workers, execute, execute_many
from .jobs import (
    SimJob,
    baseline_policy,
    build_system,
    dynamic_policy,
    run_job,
    static_policy,
    vtrs_policy,
    vturbo_policy,
    yield_only_policy,
)

__all__ = [
    "ENV_WORKERS",
    "SimJob",
    "baseline_policy",
    "build_system",
    "cache",
    "costmodel",
    "default_workers",
    "dynamic_policy",
    "execute",
    "execute_many",
    "pool",
    "run_job",
    "static_policy",
    "vtrs_policy",
    "vturbo_policy",
    "yield_only_policy",
]
