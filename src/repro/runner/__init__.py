"""Declarative experiment execution: job plans, a parallel executor,
and a content-addressed result cache.

Every experiment module now splits into ``plan()`` (emit a list of
:class:`SimJob` specs) and ``reduce()`` (fold ``{tag: RunResult}`` back
into the historical result shape); ``run()`` is simply
``reduce(execute(plan(...)))``. Because jobs are self-describing and
deterministic, :func:`execute` can fan them out over worker processes
(``REPRO_RUNNER_WORKERS`` / ``--workers``) and replay any point it has
simulated before from ``.repro-cache/`` (``REPRO_CACHE=off`` /
``--no-cache`` to disable).
"""

from . import cache
from .executor import ENV_WORKERS, default_workers, execute
from .jobs import (
    SimJob,
    baseline_policy,
    build_system,
    dynamic_policy,
    run_job,
    static_policy,
    vtrs_policy,
    vturbo_policy,
    yield_only_policy,
)

__all__ = [
    "ENV_WORKERS",
    "SimJob",
    "baseline_policy",
    "build_system",
    "cache",
    "default_workers",
    "dynamic_policy",
    "execute",
    "run_job",
    "static_policy",
    "vtrs_policy",
    "vturbo_policy",
    "yield_only_policy",
]
