"""Persistent simulation worker pool.

The original executor paid the full ``spawn`` tax on every
:func:`~repro.runner.executor.execute` call: four fresh interpreters,
four ``import repro``, four :func:`~repro.runner.cache.code_salt`
re-hashes — roughly half a second of pure overhead per call, repeated
for every experiment in a multi-experiment invocation. This module
spawns the workers **once per process lifetime** and shares them across
every ``execute()`` call and experiment:

* each worker pre-imports the scenario machinery and pre-hashes the
  code salt before accepting its first job;
* the parent dispatches jobs to idle workers one chunk at a time and
  streams completions off a shared result queue — no ``pool.map``
  barrier, so a straggler never blocks the jobs behind it;
* results travel either as raw payload dicts or, when the result cache
  is on, *through the cache*: the worker persists the payload itself
  and sends back only the 64-byte key plus its wall time
  (cache-as-transport — see :mod:`repro.runner.executor`);
* a worker that dies mid-job is detected (liveness poll on queue
  timeouts), respawned, and its in-flight chunk retried up to
  :data:`MAX_RETRIES` times before the job surfaces a
  :class:`~repro.errors.WorkerError`;
* anything that prevents spawning at all (``REPRO_RUNNER_POOL=off``,
  a sandboxed environment refusing ``fork``/``spawn``) degrades to
  inline execution in the caller, never to a crash.

The module-level singleton (:func:`shared_pool`) is what the executor
uses; :class:`WorkerPool` itself is also usable standalone (the
payload-manifest tool and the benchmarks drive it directly).
"""

import atexit
import multiprocessing
import os
import queue as queue_mod
import time
import traceback
import warnings

from ..errors import WorkerError
from ..obs import telemetry

#: Pool telemetry (parent side). Worker-side metrics — engine event
#: totals, cache stores, per-job wall time — accumulate in each
#: worker's own registry and ride back piggybacked on the chunk result
#: messages; :func:`WorkerPool._run` merges them in.
_SPAWNED = telemetry.counter("pool.workers_spawned")
_RESPAWNED = telemetry.counter("pool.workers_respawned")
_CRASHES = telemetry.counter("pool.worker_crashes")
_RUNS = telemetry.counter("pool.runs")
_CHUNKS = telemetry.counter("pool.chunks_dispatched")
_DISPATCHED = telemetry.counter("pool.jobs_dispatched")
_COMPLETED = telemetry.counter("pool.jobs_completed")
_FAILED = telemetry.counter("pool.jobs_failed")
_RETRIED = telemetry.counter("pool.jobs_retried")
_DISCARDS = telemetry.counter("pool.epoch_discards")
_SIZE = telemetry.gauge("pool.size")
_BUSY_SECONDS = telemetry.counter("pool.busy_seconds")
_RUN_SECONDS = telemetry.counter("pool.run_seconds")

#: How many times one job is re-dispatched to a fresh worker after the
#: worker holding it died. One retry tolerates a transient kill (OOM,
#: operator signal); a job that kills two workers in a row is treated
#: as deterministic poison and surfaced as a WorkerError.
MAX_RETRIES = 1

#: Liveness-poll interval while waiting on the result queue. Only paid
#: when no result is ready; results arriving faster are consumed
#: back-to-back without sleeping.
POLL_SECONDS = 0.2

#: ``REPRO_RUNNER_POOL`` — ``persistent`` (default), ``legacy``
#: (per-call ``Pool.map``, kept as the benchmark baseline), or ``off``
#: (inline execution regardless of the worker count).
ENV_POOL = "REPRO_RUNNER_POOL"

#: Test-only fault hook (see ``_maybe_test_crash``): crash a worker
#: deterministically when it picks up a given job tag.
ENV_TEST_CRASH = "REPRO_RUNNER_TEST_CRASH"


def pool_mode():
    """The configured execution mode: persistent | legacy | off."""
    raw = os.environ.get(ENV_POOL, "").strip().lower()
    if raw in ("", "persistent", "on", "1", "true"):
        return "persistent"
    if raw in ("legacy", "spawn"):
        return "legacy"
    if raw in ("off", "0", "false", "inline", "no"):
        return "off"
    warnings.warn(
        "ignoring unknown %s=%r (use persistent | legacy | off)" % (ENV_POOL, raw),
        RuntimeWarning,
        stacklevel=2,
    )
    return "persistent"


def _maybe_test_crash(tag):
    """Deterministic worker-crash hook for the resilience tests.

    ``REPRO_RUNNER_TEST_CRASH=<tag>`` kills the worker (hard
    ``os._exit``, no cleanup — modelling a SIGKILL) every time a job
    with that tag is picked up; ``<tag>:<marker-path>`` kills it only
    while the marker file does not exist (the crashing worker creates
    it first, so exactly one attempt dies and the retry succeeds).
    """
    spec = os.environ.get(ENV_TEST_CRASH)
    if not spec:
        return
    crash_tag, _, marker = spec.partition(":")
    if tag != crash_tag:
        return
    if marker:
        if os.path.exists(marker):
            return
        with open(marker, "w") as handle:
            handle.write("crashed once\n")
    os._exit(17)


def _worker_main(worker_index, task_queue, result_queue):
    """Worker process body: warm up once, then serve job chunks forever.

    A task is ``(epoch, chunk_id, [(job_id, job_dict, key, store_dir),
    ...])`` or ``None`` to shut down. Two message shapes flow back, both
    epoch-tagged so the parent can discard leftovers from a previous
    ``run()`` call (a worker that posted its result and then died is
    presumed lost and retried; the late message must not corrupt the
    next run's bookkeeping):

    * ``("progress", worker_index, epoch, job_id, tag)`` — a heartbeat
      posted the moment a job is picked up, so ``repro run --progress``
      can render a live per-job status line;
    * ``("result", worker_index, epoch, chunk_id, [(job_id, kind,
      value, seconds), ...], telem)`` — one per chunk, where ``kind``
      is ``"key"`` (value = cache key, payload already persisted by
      this worker), ``"payload"`` (value = payload dict) or ``"error"``
      (value = worker-side traceback text), and ``telem`` is this
      worker's telemetry snapshot *delta* since its last message
      (engine event totals, cache stores, job wall times) for the
      parent registry to merge.
    """
    # One-time warm-up, amortised over every job this worker will run:
    # import the full scenario/experiment machinery and hash the
    # package sources for cache keys.
    from . import cache as result_cache
    from .jobs import SimJob, run_job

    import repro.experiments.scenarios  # noqa: F401  (pre-import, heavy)

    result_cache.code_salt()
    while True:
        task = task_queue.get()
        if task is None:
            return
        epoch, chunk_id, entries = task
        results = []
        for job_id, job_dict, key, store_dir in entries:
            _maybe_test_crash(job_dict.get("tag"))
            try:  # heartbeat: best-effort, never blocks the job
                result_queue.put(
                    ("progress", worker_index, epoch, job_id, job_dict.get("tag"))
                )
            except (OSError, ValueError):
                pass
            start = time.perf_counter()
            try:
                job = SimJob.from_dict(job_dict)
                payload = run_job(job)
                seconds = time.perf_counter() - start
                if key is not None and store_dir is not None:
                    # Cache-as-transport: persist here, ship the key.
                    result_cache.store(key, job, payload, store_dir)
                    if result_cache.entry_path(key, store_dir).exists():
                        results.append((job_id, "key", key, seconds))
                    else:  # store degraded to a warning; ship the payload
                        results.append((job_id, "payload", payload, seconds))
                else:
                    results.append((job_id, "payload", payload, seconds))
            except Exception:
                seconds = time.perf_counter() - start
                results.append((job_id, "error", traceback.format_exc(), seconds))
        telem = telemetry.REGISTRY.take_snapshot()
        result_queue.put(("result", worker_index, epoch, chunk_id, results, telem))


class JobOutcome:
    """One job's result as it came back from the pool."""

    __slots__ = ("kind", "value", "seconds", "retries")

    def __init__(self, kind, value, seconds, retries=0):
        self.kind = kind  # "key" | "payload" | "error"
        self.value = value
        self.seconds = seconds
        self.retries = retries


class _Worker:
    __slots__ = ("index", "process", "task_queue", "chunk")

    def __init__(self, index, process, task_queue):
        self.index = index
        self.process = process
        self.task_queue = task_queue
        self.chunk = None  # (chunk_id, entries, retries) while busy


class WorkerPool:
    """A fixed set of pre-warmed ``spawn`` worker processes.

    ``run()`` may be called any number of times; workers survive
    between calls. The pool can :meth:`grow` but never shrinks — a
    ``run(..., max_workers=k)`` with ``k < size`` simply limits how
    many workers are dispatched to concurrently.
    """

    def __init__(self, workers, context=None):
        self._ctx = context or multiprocessing.get_context("spawn")
        self._result_queue = self._ctx.Queue()
        self._workers = []
        self._closed = False
        self._running = False
        self._epoch = 0
        for _ in range(max(1, int(workers))):
            self._spawn_worker()

    # -- lifecycle ----------------------------------------------------

    def _spawn_worker(self):
        index = len(self._workers)
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, task_queue, self._result_queue),
            daemon=True,
            name="repro-worker-%d" % index,
        )
        process.start()
        self._workers.append(_Worker(index, process, task_queue))
        _SPAWNED.inc()
        _SIZE.set(len(self._workers))
        return self._workers[-1]

    def _respawn(self, worker):
        """Replace a dead worker in place (same index, fresh process)."""
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker.index, task_queue, self._result_queue),
            daemon=True,
            name="repro-worker-%d" % worker.index,
        )
        process.start()
        worker.process = process
        worker.task_queue = task_queue
        worker.chunk = None
        _RESPAWNED.inc()

    @property
    def size(self):
        return len(self._workers)

    @property
    def alive(self):
        return not self._closed

    @property
    def running(self):
        return self._running

    def worker_pids(self):
        """Live worker PIDs (test/introspection aid)."""
        return [w.process.pid for w in self._workers]

    def grow(self, workers):
        while len(self._workers) < workers:
            self._spawn_worker()

    def close(self, timeout=2.0):
        """Shut every worker down; idempotent, safe on crashed workers."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._workers = []

    # -- execution ----------------------------------------------------

    def run(self, entries, chunk_size=1, max_workers=None, on_result=None,
            on_progress=None):
        """Execute ``entries`` and return a list of :class:`JobOutcome`
        in *input order* (dispatch order is the caller's submission
        order — sort longest-first for straggler-aware scheduling).

        ``entries`` is a list of ``(job_dict, key, store_dir)``;
        ``key``/``store_dir`` of ``None`` selects payload transport.
        Completions stream back unordered; ``on_result(job_id,
        outcome)`` fires as each job lands, and ``on_progress(job_id,
        tag)`` fires when a worker's heartbeat says it *picked the job
        up* (the live-progress hook). Jobs on a crashed worker are
        retried up to :data:`MAX_RETRIES` times, then reported as
        ``kind="error"`` outcomes.
        """
        if self._closed:
            raise WorkerError("worker pool is closed")
        if self._running:
            raise WorkerError("worker pool is busy (re-entrant run() call)")
        self._running = True
        self._epoch += 1
        _RUNS.inc()
        started = time.perf_counter()
        try:
            return self._run(entries, chunk_size, max_workers, on_result, on_progress)
        finally:
            self._running = False
            _RUN_SECONDS.inc(time.perf_counter() - started)

    def _run(self, entries, chunk_size, max_workers, on_result, on_progress):
        epoch = self._epoch
        outcomes = [None] * len(entries)
        chunk_size = max(1, int(chunk_size))
        chunks = []
        for start in range(0, len(entries), chunk_size):
            block = [
                (job_id, job_dict, key, store_dir)
                for job_id, (job_dict, key, store_dir) in enumerate(
                    entries[start : start + chunk_size], start
                )
            ]
            chunks.append((len(chunks), block, 0))
        pending = list(reversed(chunks))  # pop() takes submission order
        remaining = len(entries)
        limit = self.size if max_workers is None else max(1, min(max_workers, self.size))

        # A worker is dispatchable iff worker.chunk is None. A chunk
        # left over from a previous run (result never arrived) keeps
        # its worker out of rotation until the stale message lands.
        def dispatch():
            while pending:
                busy = sum(1 for w in self._workers if w.chunk is not None)
                if busy >= limit:
                    return
                idle = next((w for w in self._workers if w.chunk is None), None)
                if idle is None:
                    return
                if not idle.process.is_alive():
                    self._respawn(idle)
                chunk_id, block, retries = pending.pop()
                live = [e for e in block if outcomes[e[0]] is None]
                if not live:
                    continue
                idle.chunk = (epoch, chunk_id, live, retries, time.perf_counter())
                idle.task_queue.put((epoch, chunk_id, live))
                _CHUNKS.inc()
                _DISPATCHED.inc(len(live))

        def absorb(message):
            nonlocal remaining
            if message[0] == "progress":
                _worker_index, msg_epoch, job_id, tag = message[1:]
                if msg_epoch == epoch and on_progress is not None:
                    on_progress(job_id, tag)
                return
            _kind, worker_index, msg_epoch, msg_chunk_id, results, telem = message
            # Worker-side telemetry (engine totals, cache stores) is a
            # delta: merging it is correct even for stale-epoch
            # messages — the work really happened.
            telemetry.REGISTRY.merge(telem)
            worker = self._workers[worker_index]
            retries = 0
            if worker.chunk is not None and worker.chunk[:2] == (msg_epoch, msg_chunk_id):
                retries = worker.chunk[3]
                dispatched_at = worker.chunk[4]
                worker.chunk = None
            else:
                dispatched_at = None
            if msg_epoch != epoch:
                _DISCARDS.inc()
                return  # stale message from an earlier run
            arrived_at = time.perf_counter()
            for job_id, kind, value, seconds in results:
                if outcomes[job_id] is not None:
                    continue  # late duplicate after a presumed-lost chunk
                outcomes[job_id] = JobOutcome(kind, value, seconds, retries)
                remaining -= 1
                _COMPLETED.inc()
                _BUSY_SECONDS.inc(seconds)
                if dispatched_at is not None:
                    # Queue wait: chunk turnaround minus simulation time
                    # (dispatch overhead + time spent behind chunk-mates).
                    wait = arrived_at - dispatched_at - seconds
                    telemetry.observe("pool.queue_wait_us", max(0.0, wait) * 1e6)
                if on_result is not None:
                    on_result(job_id, outcomes[job_id])

        def reap_crashes():
            nonlocal remaining
            for worker in self._workers:
                if worker.chunk is None or worker.process.is_alive():
                    continue
                chunk_epoch, chunk_id, block, retries = worker.chunk[:4]
                worker.chunk = None
                _CRASHES.inc()
                self._respawn(worker)
                if chunk_epoch != epoch:
                    continue  # a previous run's leftovers; nobody is waiting
                live = [e for e in block if outcomes[e[0]] is None]
                if not live:
                    continue
                if retries < MAX_RETRIES:
                    warnings.warn(
                        "worker died while running job(s) %s; retrying"
                        % ", ".join(repr(e[1].get("tag")) for e in live),
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    _RETRIED.inc(len(live))
                    pending.append((chunk_id, live, retries + 1))
                else:
                    for job_id, job_dict, _key, _store in live:
                        outcomes[job_id] = JobOutcome(
                            "error",
                            "worker process died repeatedly while running job %r "
                            "(%d attempts)" % (job_dict.get("tag"), retries + 1),
                            0.0,
                            retries,
                        )
                        remaining -= 1
                        _FAILED.inc()

        dispatch()
        while remaining:
            try:
                absorb(self._result_queue.get(timeout=POLL_SECONDS))
            except queue_mod.Empty:
                # Nothing ready: look for corpses among the busy workers.
                reap_crashes()
            except (OSError, EOFError):  # torn pickle from a dying worker
                reap_crashes()
            dispatch()
        return outcomes


# -- shared singleton -------------------------------------------------

_SHARED = None
_ATEXIT_REGISTERED = False


def shared_pool(workers):
    """The process-wide pool, created on first use and grown on demand.

    Returns ``None`` when a pool should not (mode ``off``/``legacy``,
    ``workers <= 1``) or cannot (spawn failure — warns and degrades)
    be used; callers fall back to inline execution.
    """
    global _SHARED, _ATEXIT_REGISTERED
    if workers <= 1 or pool_mode() != "persistent":
        return None
    if _SHARED is not None and _SHARED.alive:
        if _SHARED.size < workers:
            _SHARED.grow(workers)
        return _SHARED
    try:
        _SHARED = WorkerPool(workers)
    except (OSError, ValueError) as err:
        warnings.warn(
            "could not start the persistent worker pool (%s); "
            "running jobs inline" % err,
            RuntimeWarning,
            stacklevel=2,
        )
        _SHARED = None
        return None
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_shared)
        _ATEXIT_REGISTERED = True
    return _SHARED


def shutdown_shared():
    """Close the shared pool (atexit hook; also used by tests to force
    a fresh spawn)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None
