"""The byte-identity manifest: one SHA-256 per unique RunResult payload.

Every engine/performance PR is gated on this file: the manifest pins
the payload digest of every unique job spec across every registered
experiment (at a reduced scale so regeneration is minutes, not hours).
``--verify`` recomputes each payload with the current engine and fails
on the first divergence; ``--update`` is only legitimate when a PR
*intends* to change simulation results (new experiment, model change),
never for a performance PR.

Usage::

    python -m repro.tools.payload_manifest --verify   # CI hash-identity job
    python -m repro.tools.payload_manifest --verify --workers 4   # via the pool
    python -m repro.tools.payload_manifest --update   # regenerate (model changes only)

``--workers N`` (default: ``REPRO_RUNNER_WORKERS``) recomputes the
payloads through the persistent worker pool with payload transport —
the same fan-out path ``execute()`` uses — so the identity gate also
proves that pooled execution is byte-clean. Serial and pooled runs
must (and do) produce identical digests.

The manifest lives at ``tests/data/payload_manifest.json``. Keys are
the SHA-256 of each job's canonical spec; values carry the payload
digest plus enough human-readable context to identify a diverging job.
"""

import argparse
import hashlib
import json
import sys
from pathlib import Path

#: Scale applied to every plan: clamps durations to the 10 ms floor so
#: the whole manifest regenerates in a few minutes.
MANIFEST_SCALE = 0.02

MANIFEST_PATH = (
    Path(__file__).resolve().parent.parent.parent.parent
    / "tests"
    / "data"
    / "payload_manifest.json"
)


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_payload(payload):
    """The byte representation that is hashed: sorted-key compact JSON,
    exactly what the result cache stores."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def unique_jobs(scale=MANIFEST_SCALE):
    """``{spec_sha: (job, [plan tags])}`` across every registered
    experiment, deduplicated on the cache identity (several experiments
    share e.g. the seed-42 gmake co-run baseline)."""
    from ..experiments import registry

    jobs = {}
    for name in registry.available():
        module = registry.get(name)
        if registry.is_driver(module):
            # Driver experiments (e.g. fleet) generate jobs from their
            # own feedback loop — no static plan to pin. Their host
            # jobs are still cache-hashed; they are just not part of
            # the frozen identity gate.
            continue
        plan = module.plan(scale_override=scale)
        for job in plan:
            key = _sha256(job.canonical())
            if key in jobs:
                jobs[key][1].append("%s:%s" % (name, job.tag))
            else:
                jobs[key] = (job, ["%s:%s" % (name, job.tag)])
    return jobs


def _entry(job, tags, payload):
    return {
        "payload_sha256": _sha256(canonical_payload(payload)),
        "scenario": job.scenario,
        "seed": job.seed,
        "duration_ns": job.duration_ns,
        "tags": sorted(tags),
    }


def compute_entries(jobs, workers=None, progress=None):
    """``{spec_sha: manifest entry}`` for every job in ``jobs``
    (a ``unique_jobs``-shaped mapping), computed serially or fanned out
    over the persistent worker pool (``workers > 1``). Progress streams
    in completion order; the result is deterministic either way."""
    from ..runner.executor import simulate_jobs

    ordered = sorted(jobs.items())
    state = {"done": 0}

    def on_job_done(index, _payload):
        state["done"] += 1
        if progress is not None:
            progress(state["done"], len(ordered), ordered[index][1][1][0])

    payloads = simulate_jobs(
        [job for _key, (job, _tags) in ordered],
        workers=workers,
        on_job_done=on_job_done,
    )
    return {
        key: _entry(job, tags, payload)
        for (key, (job, tags)), payload in zip(ordered, payloads)
    }


def compute_entry(job, tags):
    """Single-job manifest entry (serial path)."""
    from ..runner.jobs import run_job

    return _entry(job, tags, run_job(job))


def generate(scale=MANIFEST_SCALE, workers=None, progress=None):
    entries = compute_entries(unique_jobs(scale), workers=workers, progress=progress)
    return {"scale": scale, "count": len(entries), "entries": entries}


def load():
    with open(MANIFEST_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def verify(manifest=None, keys=None, workers=None, progress=None):
    """Recompute payloads and compare against the manifest. Returns a
    list of mismatch descriptions (empty = all byte-identical).
    ``keys`` restricts the check to a subset of spec hashes;
    ``workers`` fans the recomputation out over the persistent pool."""
    if manifest is None:
        manifest = load()
    jobs = unique_jobs(manifest["scale"])
    mismatches = []
    expected = manifest["entries"]
    missing = sorted(set(expected) - set(jobs))
    for key in missing:
        mismatches.append(
            "job %s (%s) is in the manifest but no experiment plans it anymore"
            % (key[:12], ", ".join(expected[key]["tags"]))
        )
    new = sorted(set(jobs) - set(expected))
    for key in new:
        mismatches.append(
            "job %s (%s) is planned but missing from the manifest (run --update "
            "if this PR intentionally adds jobs)" % (key[:12], ", ".join(jobs[key][1]))
        )
    check = sorted(set(expected) & set(jobs))
    if keys is not None:
        check = [key for key in check if key in keys]
    entries = compute_entries(
        {key: jobs[key] for key in check}, workers=workers, progress=progress
    )
    for key in check:
        if entries[key]["payload_sha256"] != expected[key]["payload_sha256"]:
            mismatches.append(
                "payload diverged for %s (%s): manifest %s, recomputed %s"
                % (
                    key[:12],
                    ", ".join(sorted(jobs[key][1])),
                    expected[key]["payload_sha256"][:12],
                    entries[key]["payload_sha256"][:12],
                )
            )
    return mismatches


def _print_progress(done, total, tag):
    sys.stderr.write("\r[%3d/%3d] %-60s" % (done, total, tag[:60]))
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--update", action="store_true", help="regenerate the manifest in place"
    )
    action.add_argument(
        "--verify", action="store_true", help="recompute and compare every payload"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="recompute payloads through the persistent worker pool "
        "(default: REPRO_RUNNER_WORKERS or serial)",
    )
    args = parser.parse_args(argv)
    progress = None if args.quiet else _print_progress
    if args.update:
        manifest = generate(workers=args.workers, progress=progress)
        MANIFEST_PATH.parent.mkdir(parents=True, exist_ok=True)
        with open(MANIFEST_PATH, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %d payload digests to %s" % (manifest["count"], MANIFEST_PATH))
        return 0
    mismatches = verify(workers=args.workers, progress=progress)
    if mismatches:
        for line in mismatches:
            print("MISMATCH: %s" % line)
        print("%d payload(s) diverged" % len(mismatches))
        return 1
    manifest = load()
    print("all %d payloads byte-identical to the manifest" % manifest["count"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
