"""Maintenance tools (manifest generation, migration helpers).

Nothing in here is imported by the simulation hot path; each tool is a
runnable module (``python -m repro.tools.<name>``).
"""
