"""Sharded multi-host fleet simulation.

``repro.fleet`` scales the single-host simulator out to a datacenter
slice: N independent hosts (each an unmodified
:class:`~repro.experiments.scenarios.Scenario` /
:class:`~repro.core.hypervisor.Hypervisor` DES instance), an
open-arrival session stream, pluggable placement policies with
admission control and cost-gated live migration, all fanned out over
the persistent :mod:`repro.runner` pool with a deterministic
seed-per-host RNG split so the whole fleet is byte-reproducible.

Layers:

* :mod:`repro.fleet.arrivals` — the Poisson open-arrival session trace;
* :mod:`repro.fleet.placement` — the policy registry (``random``,
  ``first_fit``, ``steal_aware``) and admission rule;
* :mod:`repro.fleet.cluster` — the epoch loop, migration model, and
  fleet-wide summary aggregation.
"""

from .arrivals import CATALOG, Session, generate
from .cluster import FleetSpec, FleetState, run_fleet, summary_json
from .placement import (
    HostView,
    PlacementPolicy,
    available,
    describe,
    feasible,
    get,
    register,
)

__all__ = [
    "CATALOG",
    "FleetSpec",
    "FleetState",
    "HostView",
    "PlacementPolicy",
    "Session",
    "available",
    "describe",
    "feasible",
    "generate",
    "get",
    "register",
    "run_fleet",
    "summary_json",
]
