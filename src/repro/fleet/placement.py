"""Placement policies and admission control for the fleet layer.

Mirrors :mod:`repro.sched`: policies self-register into a name → class
registry, anything that builds a fleet resolves the configured name
through :func:`get`, and an unknown name raises
:class:`~repro.errors.ConfigError` (a ``ReproError``, so the CLI
reports it and exits 2).

The admission rule is shared by every policy: a session may be placed
on any host whose committed vCPU load plus the session's demand stays
within the host's overcommit cap. When no host qualifies the session
is **rejected** (counted, never queued — an open-arrival stream does
not wait). What differs per policy is *which* feasible host wins:

* ``random`` — uniform over feasible hosts, the no-information
  baseline every orchestrator paper compares against;
* ``first_fit`` — bin-packing by vCPU demand: the first host that can
  take the session *uncontended* (committed load stays within its
  pCPU count); only when every host would be contended does it spill
  over, to the least-loaded feasible host, so unavoidable overcommit
  is spread rather than stacked;
* ``steal_aware`` — feedback placement: among feasible hosts, the one
  whose guests reported the lowest steal fraction (runnable-but-not-
  running share from the runstate accounting) in the previous epoch.
  Steal time is the one contention signal a *guest* can measure
  without hypervisor cooperation (the platform-agnostic steal-time
  lens), which is exactly why a real control plane can act on it.
  With no feedback yet (epoch 0) it degrades to least-loaded.
  ``steal_aware`` is also the only builtin that **rebalances**: at
  each epoch boundary it may live-migrate the most-stolen-from domains
  off the hottest host, provided the observed steal exceeds the
  configured migration cost (see :meth:`StealAwarePolicy.rebalance`).
"""

from ..errors import ConfigError

_POLICIES = {}


def register(cls):
    """Class decorator: make ``cls`` selectable by its ``name``."""
    name = cls.name
    if not name:
        raise ConfigError("placement policy %r has no name" % cls.__name__)
    if name in _POLICIES and _POLICIES[name] is not cls:
        raise ConfigError(
            "placement policy name %r already registered by %r"
            % (name, _POLICIES[name].__name__)
        )
    _POLICIES[name] = cls
    return cls


def get(name):
    """Resolve a policy class by name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise ConfigError(
            "unknown placement policy %r (available: %s)"
            % (name, ", ".join(sorted(_POLICIES)))
        ) from None


def available():
    """Registered policy names, sorted."""
    return sorted(_POLICIES)


def describe():
    """``[(name, description), ...]`` for ``repro list``/docs."""
    return [(name, _POLICIES[name].description) for name in sorted(_POLICIES)]


class HostView:
    """What a policy is allowed to see about one host.

    ``load`` is the committed vCPU demand, ``uncontended`` the pCPU
    count (load at or below it means every vCPU can hold a core),
    ``capacity`` the overcommit cap, and ``steal_pct`` the aggregate
    guest steal fraction observed in the previous epoch (``None``
    before any feedback exists). ``domains`` maps resident domain
    names to ``{"steal_ns": ..., "vcpus": ...}`` from the same epoch.
    """

    __slots__ = ("index", "uncontended", "capacity", "load", "steal_pct", "domains")

    def __init__(self, index, uncontended, capacity, load=0, steal_pct=None):
        self.index = index
        self.uncontended = uncontended
        self.capacity = capacity
        self.load = load
        self.steal_pct = steal_pct
        self.domains = {}

    def fits(self, demand):
        return self.load + demand <= self.capacity

    def fits_uncontended(self, demand):
        return self.load + demand <= self.uncontended

    def __repr__(self):
        return "<HostView %d load=%d/%d steal=%s>" % (
            self.index, self.load, self.capacity, self.steal_pct,
        )


def feasible(hosts, demand):
    """Hosts that can admit ``demand`` more vCPUs, in index order."""
    return [host for host in hosts if host.fits(demand)]


class PlacementPolicy:
    """Base policy: admission via :func:`feasible`, placement abstract,
    rebalancing a no-op. ``rng`` is the policy's own named stream from
    the fleet seed — policies that randomize stay deterministic."""

    name = ""
    description = ""

    def __init__(self, rng=None):
        self.rng = rng

    def place(self, session, hosts):
        """The chosen :class:`HostView` for ``session``, or ``None`` to
        reject (no feasible host)."""
        raise NotImplementedError

    def rebalance(self, hosts, migration_cost_ns, max_moves=2):
        """Proposed live migrations at an epoch boundary:
        ``[(domain_name, src_index, dst_index), ...]``. Default: none."""
        return []


@register
class RandomPolicy(PlacementPolicy):
    """Uniform choice among feasible hosts (the no-information
    baseline; spreads in expectation, stacks in variance)."""

    name = "random"
    description = "uniform over hosts with capacity (no-information baseline)"

    def place(self, session, hosts):
        candidates = feasible(hosts, session.vcpus)
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]


@register
class FirstFitPolicy(PlacementPolicy):
    """Bin-packing by vCPU demand with contention-avoiding spillover."""

    name = "first_fit"
    description = "first host that fits uncontended; overflow to least-loaded"

    def place(self, session, hosts):
        for host in hosts:
            if host.fits_uncontended(session.vcpus):
                return host
        candidates = feasible(hosts, session.vcpus)
        if not candidates:
            return None
        return min(candidates, key=lambda host: (host.load, host.index))


@register
class StealAwarePolicy(PlacementPolicy):
    """Feedback placement on guest-visible steal time, with
    cost-gated live-migration rebalancing."""

    name = "steal_aware"
    description = "lowest guest steal fraction last epoch; rebalances off hot hosts"

    #: Minimum steal-fraction gap (percentage points) between the
    #: hottest host and a migration destination before a move is
    #: considered worthwhile.
    GAP_PCT = 2.0

    def place(self, session, hosts):
        candidates = feasible(hosts, session.vcpus)
        if not candidates:
            return None
        # A zero-steal host that is one placement away from overcommit
        # is not actually a good destination: prefer hosts that can
        # still take the session uncontended, and use the steal signal
        # to choose *among* those (steal is non-zero below the pCPU
        # line too — bursty co-residents time-slice against each
        # other). Only when every host would be contended does raw
        # steal ranking take over.
        pool = [
            host for host in candidates if host.fits_uncontended(session.vcpus)
        ] or candidates
        informed = [host for host in pool if host.steal_pct is not None]
        if informed:
            return min(informed, key=lambda h: (h.steal_pct, h.load, h.index))
        return min(pool, key=lambda h: (h.load, h.index))

    def rebalance(self, hosts, migration_cost_ns, max_moves=2):
        """Move the most-stolen-from domains off the hottest host.

        A migration is proposed only when (a) the destination's steal
        fraction trails the hottest host's by more than :data:`GAP_PCT`
        percentage points, and (b) the domain's *observed* last-epoch
        steal time exceeds the configured migration cost — the downtime
        a live migration charges. Raising ``migration_cost_ns``
        therefore monotonically suppresses migrations; at most
        ``max_moves`` per boundary keep the churn bounded.
        """
        informed = [host for host in hosts if host.steal_pct is not None]
        if len(informed) < 2:
            return []
        hot = max(informed, key=lambda h: (h.steal_pct, h.index))
        load = {host.index: host.load for host in hosts}
        moves = []
        victims = sorted(
            hot.domains.items(), key=lambda item: (-item[1]["steal_ns"], item[0])
        )
        for name, info in victims:
            if len(moves) >= max_moves:
                break
            if info["steal_ns"] <= migration_cost_ns:
                break  # sorted descending: nothing further qualifies
            targets = [
                host
                for host in informed
                if host.index != hot.index
                and host.steal_pct + self.GAP_PCT < hot.steal_pct
                and load[host.index] + info["vcpus"] <= host.capacity
            ]
            if not targets:
                break
            dest = min(targets, key=lambda h: (h.steal_pct, load[h.index], h.index))
            moves.append((name, hot.index, dest.index))
            load[dest.index] += info["vcpus"]
            load[hot.index] -= info["vcpus"]
        return moves
