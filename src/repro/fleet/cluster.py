"""The sharded multi-host fleet simulator.

One :class:`FleetSpec` describes a datacenter slice: N hosts (each the
paper's consolidated 12-pCPU box), an open-arrival session stream
(:mod:`repro.fleet.arrivals`), a placement policy
(:mod:`repro.fleet.placement`), and an epoch length. The fleet runs as
a sequence of **epochs**:

1. sessions that completed their hold depart and free capacity;
2. the policy may *rebalance* — live-migrate domains between hosts,
   paying the configured migration cost;
3. sessions that arrived during the previous epoch interval are
   admitted (or rejected when no host has capacity) and placed;
4. every host with resident domains compiles to one ordinary
   :class:`~repro.runner.jobs.SimJob` (scenario ``fleet_host``) and
   the whole wave fans out through :func:`repro.runner.execute_many` —
   so the result cache, the cost-model LPT dispatch, the persistent
   pool, and run telemetry all apply to fleet runs for free;
5. each host's :class:`~repro.experiments.results.RunResult` feeds
   back: vIRQ-delivery histograms merge into the fleet-wide tail,
   per-host utilization accumulates, and the guest runstate snapshots
   become the steal-fraction signal the ``steal_aware`` policy (and
   the ``fleet.host.<i>.steal_pct`` telemetry gauges) consume.

Determinism: the arrival trace, the placement RNG, and every host's
simulation seed derive from the fleet seed through
:func:`repro.sim.rng.split_seeds` / named streams, and all aggregation
iterates in sorted order — so serial, pooled, and cache-replay runs of
the same spec produce **byte-identical** summaries
(:func:`summary_json`).

Model limits, stated honestly: hosts are re-built each epoch (no guest
state carries over a boundary — each epoch is a steady-state sample,
which is also what makes host jobs cacheable), and a live migration is
modelled as control-plane downtime (the domain keeps running in the
destination host's next epoch; its session is charged
``min(migration_cost, epoch)`` of downtime and, if the cost exceeds an
epoch, it sits the next epoch out entirely).
"""

import dataclasses
import random

from ..errors import ConfigError
from ..metrics.histogram import Histogram
from ..obs import telemetry
from ..obs.runstate import steal_fraction, steal_report
from ..runner import SimJob, baseline_policy, execute_many
from ..sim.rng import derive_seed, split_seeds
from ..sim.time import ms
from . import arrivals, placement

#: Telemetry: fleet-level orchestration counters (deterministic for a
#: given spec; they accumulate across policies in a comparison run).
_ARRIVED = telemetry.counter("fleet.sessions_arrived")
_ADMITTED = telemetry.counter("fleet.sessions_admitted")
_REJECTED = telemetry.counter("fleet.sessions_rejected")
_MIGRATIONS = telemetry.counter("fleet.migrations")
_EPOCHS = telemetry.counter("fleet.epochs")
_HOST_JOBS = telemetry.counter("fleet.host_jobs")


@dataclasses.dataclass
class FleetSpec:
    """One fleet configuration (shared by every policy under test)."""

    hosts: int = 6
    pcpus: int = 12
    #: Admission cap as a multiple of pCPUs (2.0 = the paper's 2:1).
    overcommit: float = 2.0
    epochs: int = 6
    #: Expected session arrivals per epoch (offered load λ).
    rate: float = 24.0
    #: Simulated epoch length before scaling.
    epoch_ms: int = 250
    seed: int = 42
    #: Live-migration cost at scale 1.0; scales with the realized epoch.
    migration_cost_ms: float = 5.0
    #: Duration multiplier (None = REPRO_BENCH_SCALE or 1.0).
    scale: float = None
    #: Host-level micro-slicing policy descriptor (runner job policy);
    #: None = baseline credit.
    host_policy: dict = None
    #: Normal-pool scheduler backend override for every host.
    scheduler: str = None

    def __post_init__(self):
        if self.hosts < 1:
            raise ConfigError("a fleet needs at least one host")
        if self.epochs < 1:
            raise ConfigError("a fleet needs at least one epoch")

    @property
    def capacity(self):
        """Per-host admission cap in vCPUs."""
        return max(1, int(self.pcpus * self.overcommit))

    def epoch_ns(self):
        """The realized simulated epoch length (scaled, 10 ms floor)."""
        from ..experiments import common  # lazy: avoids an import cycle

        return common.scaled(ms(self.epoch_ms), self.scale)

    def migration_cost_ns(self):
        """Migration cost scaled by the same factor the epoch realized
        (so cost/epoch semantics are stable across ``--scale``)."""
        nominal = ms(self.epoch_ms)
        realized = self.epoch_ns()
        return int(ms(self.migration_cost_ms) * realized / nominal)


class FleetState:
    """One placement policy's fleet, evolved epoch by epoch."""

    def __init__(self, spec, policy_name):
        self.spec = spec
        self.policy_name = policy_name
        rng = random.Random(derive_seed(spec.seed, "fleet:placement:%s" % policy_name))
        self.policy = placement.get(policy_name)(rng=rng)
        self.sessions = arrivals.generate(spec.seed, spec.rate, spec.epochs)
        seeds = split_seeds(spec.seed, ["host:%d" % i for i in range(spec.hosts)])
        self.host_seeds = [seeds["host:%d" % i] for i in range(spec.hosts)]
        self.hosts = [
            placement.HostView(i, spec.pcpus, spec.capacity)
            for i in range(spec.hosts)
        ]
        self._by_epoch = {}
        for session in self.sessions:
            self._by_epoch.setdefault(session.epoch, []).append(session)
        #: sid -> [session, host_index, remaining_epochs, sit_out]
        self.resident = {}
        self.counts = {
            "arrived": 0,
            "admitted": 0,
            "rejected": 0,
            "completed": 0,
        }
        self.migrations = 0
        self.migration_downtime_ns = 0
        self.virq = Histogram(name="virq_delivery")
        self.host_util = [[] for _ in range(spec.hosts)]
        self.host_steal = [[] for _ in range(spec.hosts)]
        self.host_peak = [0] * spec.hosts
        self.density = []
        self.jobs_planned = 0

    # -- epoch loop ----------------------------------------------------
    def plan_epoch(self, epoch):
        """Depart, rebalance, admit, and compile this epoch's host jobs."""
        self._depart()
        if epoch > 0:
            self._rebalance()
        self._admit(epoch)
        return self._compile(epoch)

    def _depart(self):
        for sid in sorted(self.resident):
            session, host_index, remaining, _sit_out = self.resident[sid]
            if remaining <= 0:
                self.hosts[host_index].load -= session.vcpus
                del self.resident[sid]
                self.counts["completed"] += 1

    def _rebalance(self):
        cost = self.spec.migration_cost_ns()
        epoch_ns = self.spec.epoch_ns()
        moves = self.policy.rebalance(self.hosts, cost)
        by_name = {entry[0].name: sid for sid, entry in self.resident.items()}
        for name, src, dst in moves:
            sid = by_name.get(name)
            if sid is None:
                continue
            entry = self.resident[sid]
            session = entry[0]
            if entry[1] != src or not self.hosts[dst].fits(session.vcpus):
                continue
            self.hosts[src].load -= session.vcpus
            self.hosts[dst].load += session.vcpus
            entry[1] = dst
            entry[3] = cost >= epoch_ns  # blackout: sits the epoch out
            self.migrations += 1
            _MIGRATIONS.inc()
            self.migration_downtime_ns += min(cost, epoch_ns)

    def _admit(self, epoch):
        for session in self._by_epoch.get(epoch, ()):
            self.counts["arrived"] += 1
            _ARRIVED.inc()
            host = self.policy.place(session, self.hosts)
            if host is None:
                self.counts["rejected"] += 1
                _REJECTED.inc()
                continue
            self.counts["admitted"] += 1
            _ADMITTED.inc()
            host.load += session.vcpus
            self.resident[session.sid] = [session, host.index, session.hold, False]

    def _compile(self, epoch):
        spec = self.spec
        epoch_ns = spec.epoch_ns()
        by_host = {}
        for sid in sorted(self.resident):
            session, host_index, _remaining, sit_out = self.resident[sid]
            if sit_out:
                continue
            by_host.setdefault(host_index, []).append(session)
        jobs = []
        for host_index in sorted(by_host):
            sessions = by_host[host_index]
            domains = [
                {"name": s.name, "workload": s.workload, "vcpus": s.vcpus}
                for s in sessions
            ]
            overrides = {}
            if spec.scheduler is not None:
                overrides["scheduler"] = spec.scheduler
            jobs.append(
                SimJob(
                    tag="e%02d.h%02d" % (epoch, host_index),
                    scenario="fleet_host",
                    scenario_kwargs={"domains": domains, "num_pcpus": spec.pcpus},
                    seed=self.host_seeds[host_index],
                    duration_ns=epoch_ns,
                    policy=dict(spec.host_policy) if spec.host_policy else baseline_policy(),
                    overrides=overrides,
                )
            )
        self.jobs_planned += len(jobs)
        _HOST_JOBS.inc(len(jobs))
        self.density.append(
            sum(host.load for host in self.hosts) / float(spec.hosts * spec.pcpus)
        )
        for host in self.hosts:
            if host.load > self.host_peak[host.index]:
                self.host_peak[host.index] = host.load
        return jobs

    def absorb(self, epoch, by_tag):
        """Fold one epoch's host results back into the fleet state."""
        _EPOCHS.inc()
        for host in self.hosts:
            tag = "e%02d.h%02d" % (epoch, host.index)
            result = by_tag.get(tag)
            if result is None:
                self.host_util[host.index].append(0.0)
                host.steal_pct = None if host.steal_pct is None else 0.0
                host.domains = {}
                continue
            snap = result.histograms.get("virq_delivery")
            if snap:
                self.virq.merge(Histogram.from_snapshot(snap))
            self.host_util[host.index].append(result.utilization)
            report = steal_report(result)
            domains = {
                name: {
                    "steal_ns": report[name]["runnable"],
                    "vcpus": len(result.runstates[name]),
                }
                for name in report
            }
            steal_pct = steal_fraction(
                {
                    "runnable": sum(r["runnable"] for r in report.values()),
                    "elapsed": sum(r["elapsed"] for r in report.values()),
                }
            )
            host.steal_pct = steal_pct
            host.domains = domains
            self.host_steal[host.index].append(steal_pct)
            telemetry.gauge("fleet.host.%d.steal_pct" % host.index).set(steal_pct)
        # Sessions that served this epoch burn one hold epoch; a
        # blacked-out (migrating) session made no progress and serves
        # an extra epoch instead.
        for sid in sorted(self.resident):
            entry = self.resident[sid]
            if entry[3]:
                entry[3] = False
            else:
                entry[2] -= 1

    # -- reporting -----------------------------------------------------
    def summary(self):
        """The policy's fleet summary: JSON-native, wall-clock-free,
        byte-identical across serial / pooled / cache-replay runs."""
        spec = self.spec
        self._depart()  # retire sessions that finished in the last epoch
        hosts = []
        for index in range(spec.hosts):
            util = self.host_util[index]
            steal = self.host_steal[index]
            hosts.append(
                {
                    "host": index,
                    "utilization": sum(util) / len(util) if util else 0.0,
                    "steal_pct": sum(steal) / len(steal) if steal else 0.0,
                    "peak_vcpus": self.host_peak[index],
                    "epochs_active": len(steal),
                }
            )
        utils = [entry["utilization"] for entry in hosts]
        virq = self.virq.snapshot()
        return {
            "policy": self.policy_name,
            "config": {
                "hosts": spec.hosts,
                "pcpus": spec.pcpus,
                "capacity_vcpus": spec.capacity,
                "epochs": spec.epochs,
                "rate_per_epoch": spec.rate,
                "epoch_ns": spec.epoch_ns(),
                "migration_cost_ns": spec.migration_cost_ns(),
                "seed": spec.seed,
                "scheduler": spec.scheduler or "credit",
            },
            "sessions": {
                "arrived": self.counts["arrived"],
                "admitted": self.counts["admitted"],
                "rejected": self.counts["rejected"],
                "completed": self.counts["completed"],
                "active_at_end": len(self.resident),
            },
            "migrations": {
                "count": self.migrations,
                "downtime_ns": self.migration_downtime_ns,
            },
            "virq": {
                "count": virq["count"],
                "mean_ns": virq["mean"],
                "p50_ns": virq["p50"],
                "p95_ns": virq["p95"],
                "p99_ns": virq["p99"],
                "max_ns": virq["max"],
            },
            "utilization": {
                "mean": sum(utils) / len(utils) if utils else 0.0,
                "max": max(utils) if utils else 0.0,
            },
            "packing": {
                "mean_density": (
                    sum(self.density) / len(self.density) if self.density else 0.0
                ),
                "peak_density": max(self.density) if self.density else 0.0,
            },
            "jobs_planned": self.jobs_planned,
        }


def run_fleet(spec, policies=None, workers=None, cache=None, progress=None):
    """Run one fleet spec under one or more placement policies.

    Returns ``{policy_name: summary_dict}``. All policies advance in
    lockstep: every epoch, the per-policy host jobs batch through a
    single :func:`~repro.runner.execute_many` call, so they share one
    worker pool and one cache probe — and physically identical host
    jobs (policies often coincide in early epochs) simulate once.
    """
    if policies is None:
        policies = ("first_fit",)
    names = list(dict.fromkeys(policies))
    for name in names:
        placement.get(name)  # unknown policy fails before any simulation
    states = {name: FleetState(spec, name) for name in names}
    for epoch in range(spec.epochs):
        plans = {}
        for name in names:
            jobs = states[name].plan_epoch(epoch)
            if jobs:
                plans[name] = jobs
        by_plan = {}
        if plans:
            by_plan = execute_many(
                plans, workers=workers, cache=cache, progress=progress
            )
        for name in names:
            states[name].absorb(epoch, by_plan.get(name, {}))
    return {name: states[name].summary() for name in names}


def summary_json(summaries):
    """Canonical byte-stable JSON for a ``run_fleet`` result (the form
    the determinism tests and the CI re-run assertion compare)."""
    import json

    return json.dumps(summaries, sort_keys=True, indent=2) + "\n"
