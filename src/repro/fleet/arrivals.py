"""Open-arrival session load for the fleet layer.

The single-host experiments drive *closed-loop* co-runners: a fixed
set of workloads that run for the whole measurement window. A
datacenter serves an **open** arrival process — sessions show up at
rate λ whether or not the fleet is keeping up — and that difference is
what makes placement and admission matter at all.

Sessions arrive as a Poisson process (exponential inter-arrival times
drawn from one seeded stream, so the whole trace is a pure function of
the fleet seed), carry a workload drawn from a small catalog that maps
onto the existing single-host pipelines (the iperf/netstack RX path
for latency-critical sessions, the MOSBENCH/CPU-bound models for batch
sessions), and hold their vCPU demand for a bounded number of epochs
before departing.

Time is measured in **epoch units**: the arrival rate is "expected
sessions per epoch", independent of how long one epoch simulates.
Scaling the simulated epoch duration down (``--scale``) therefore
changes the *fidelity* of each epoch, never the shape of the offered
load — a scaled-down fleet sees the same arrival trace.
"""

import dataclasses
import random

from ..sim.rng import derive_seed

#: The session catalog: ``(workload kind, vCPU demand, relative
#: weight)``.  ``iperf`` sessions exercise the guest RX/vIRQ pipeline —
#: they are the latency-critical population whose tail the fleet
#: experiment reports — while the rest model the consolidated batch
#: population that creates the contention.
CATALOG = (
    ("iperf", 1, 3),
    ("exim", 1, 2),
    ("gmake", 2, 2),
    ("lookbusy", 1, 2),
    ("memclone", 1, 1),
)

#: Session holding times in epochs, drawn with these weights
#: (short-lived sessions dominate, a long tail sticks around).
HOLD_EPOCHS = (1, 2, 3, 4)
HOLD_WEIGHTS = (4, 3, 2, 1)

#: Name of the arrival RNG stream (derived from the fleet seed).
STREAM = "fleet:arrivals"


@dataclasses.dataclass(frozen=True)
class Session:
    """One arriving guest session."""

    sid: int          #: arrival order, also the domain name suffix
    arrival: float    #: arrival time in epoch units, in [0, epochs)
    hold: int         #: service demand in whole epochs
    workload: str     #: workload registry kind
    vcpus: int        #: vCPU demand

    @property
    def name(self):
        """The domain name this session gets on whatever host runs it
        (stable across epochs and migrations, so an unchanged host
        compiles to an identical — cacheable — job spec)."""
        return "s%d" % self.sid

    @property
    def epoch(self):
        """The epoch at whose start this session is admitted."""
        return int(self.arrival)


def generate(seed, rate, epochs, catalog=CATALOG):
    """The full deterministic arrival trace for one fleet run.

    ``rate`` is the expected number of session arrivals per epoch;
    ``epochs`` bounds the horizon. Returns sessions in arrival order.
    Everything is drawn from a single stream derived from ``seed``, so
    the trace depends only on ``(seed, rate, epochs, catalog)``.
    """
    if rate <= 0 or epochs <= 0:
        return []
    rng = random.Random(derive_seed(seed, STREAM))
    kinds = [(kind, vcpus) for kind, vcpus, _weight in catalog]
    weights = [weight for _kind, _vcpus, weight in catalog]
    sessions = []
    clock = rng.expovariate(rate)
    while clock < epochs:
        kind, vcpus = rng.choices(kinds, weights=weights)[0]
        hold = rng.choices(HOLD_EPOCHS, weights=HOLD_WEIGHTS)[0]
        sessions.append(
            Session(
                sid=len(sessions),
                arrival=clock,
                hold=hold,
                workload=kind,
                vcpus=vcpus,
            )
        )
        clock += rng.expovariate(rate)
    return sessions
