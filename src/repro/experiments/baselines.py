"""The VTD-mitigation baseline shootout.

The paper's argument is comparative (§2.3, Table 1): micro-sliced cores
beat the *other* known mitigations for virtual-time discontinuity —
co-scheduling, balance scheduling, globally shortened time slices, and
scheduler redesigns like credit2 — because each of those pays a cost
the micro-sliced pool avoids. This experiment makes that argument
reproducible: it co-runs the Table-2 workloads under every registered
scheduler backend (plus the paper's credit+micro-pool scheme) and
renders the trade-off:

* ``shortslice`` shortens every slice, so critical services recover but
  the CPU-bound co-runner pays context-switch/cache tax;
* ``cosched`` gang-runs each VM, cutting sibling-inflicted yields, but
  fragmentation leaves pCPUs gang-idle;
* ``balance`` spreads siblings across distinct pCPUs, trimming
  self-inflicted lock waits, without attacking cross-VM preemption;
* ``credit2`` removes BOOST storms but keeps long slices, so VTD
  symptoms largely remain;
* ``micro_pool`` (credit + the paper's static-best micro-sliced cores)
  improves the target without taxing the co-runner or idling cores.

``reduce()`` emits a ``checks`` dict with the paper-shaped ordering
assertions; the full-scale benchmark test requires them all true.
"""

import math

from ..metrics.report import render_table
from ..runner import SimJob, execute, static_policy
from . import common
from .table2 import WORKLOADS

#: Scheme order (also render order). All but ``micro_pool`` are
#: scheduler backends from the repro.sched registry; ``micro_pool`` is
#: the paper's scheme: default credit backend + static micro-sliced
#: cores (per-workload best, as in Figure 6).
SCHEMES = ("credit", "credit2", "balance", "cosched", "shortslice", "micro_pool")

#: Each scheme/workload cell is co-run twice, once per co-runner kind,
#: because no single co-runner can probe both failure modes:
#:
#: * ``swaptions`` (the paper's fixed co-runner) is pure CPU — the right
#:   probe for the *throughput tax* of shortened slices — but precisely
#:   because it never blocks, no pCPU ever idles, the credit scheduler
#:   never steals or migrates a vCPU, and every vCPU keeps a stable
#:   sibling-disjoint home pCPU forever, which makes balance scheduling
#:   vacuously identical to credit. Shorter slices also *help* a blocky
#:   co-runner (its wakeups reach a pCPU sooner), so the tax is only
#:   visible against a CPU-bound one.
#: * ``memclone`` blocks between phases, so idle pCPUs, work stealing,
#:   and the resulting sibling stacking actually occur — the right
#:   probe for the *contention* metrics (spin yields, lock and
#:   TLB-shootdown waits) that balance and co-scheduling attack.
#:
#: ``reduce()`` takes throughput metrics from the swaptions co-run and
#: contention metrics from the memclone co-run.
CPU_CORUNNER = "swaptions"
BLOCKY_CORUNNER = "memclone"
CORUNNERS = (CPU_CORUNNER, BLOCKY_CORUNNER)


def _scheme_job_fields(scheme, kind):
    """(policy, overrides) for one scheme/workload cell."""
    if scheme == "micro_pool":
        return static_policy(common.STATIC_BEST.get(kind, 1)), {}
    if scheme == "credit":
        return None, {}
    return None, {"scheduler": scheme}


def plan(seed=42, scale_override=None, schemes=SCHEMES, workloads=WORKLOADS):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    jobs = []
    for scheme in schemes:
        for kind in workloads:
            for corunner in CORUNNERS:
                policy, overrides = _scheme_job_fields(scheme, kind)
                job = SimJob(
                    tag="%s:%s:%s" % (scheme, kind, corunner),
                    scenario="corun",
                    scenario_kwargs={"workload_kind": kind, "corunner_kind": corunner},
                    seed=seed,
                    duration_ns=duration,
                    warmup_ns=warmup,
                    overrides=overrides,
                )
                if policy is not None:
                    job.policy = policy
                jobs.append(job)
    return jobs


def _geomean(values):
    safe = [max(v, 1e-9) for v in values]
    if not safe:
        return 1.0
    return math.exp(sum(math.log(v) for v in safe) / len(safe))


def _lock_wait(res, domain="vm1"):
    """Count-weighted mean lock wait (ns) across all lock classes."""
    total = 0.0
    count = 0
    for snap in res.lockstats.get(domain, {}).values():
        total += snap["mean"] * snap["count"]
        count += snap["count"]
    return (total / count) if count else 0.0, count


def reduce(results):
    per_cell = {}
    for tag, res in results.items():
        scheme, kind, corunner = tag.rsplit(":", 2)
        entry = per_cell.setdefault(
            (scheme, corunner),
            {
                "target_rates": {},
                "corunner_rates": {},
                "yields": 0,
                "lock_wait_total": 0.0,
                "lock_wait_count": 0,
                "tlb_total": 0.0,
                "tlb_count": 0,
                "gang_idles": 0,
                "steal_ns": 0,
            },
        )
        entry["target_rates"][kind] = res.rate(kind)
        entry["corunner_rates"][kind] = res.rate(corunner)
        entry["yields"] += res.total_yields("vm1")
        mean_wait, wait_count = _lock_wait(res)
        entry["lock_wait_total"] += mean_wait * wait_count
        entry["lock_wait_count"] += wait_count
        tlb = res.tlb_stats.get("vm1", {})
        entry["tlb_total"] += tlb.get("mean", 0.0) * tlb.get("count", 0)
        entry["tlb_count"] += tlb.get("count", 0)
        entry["gang_idles"] += res.hv_counters.get("gang_idle", 0)
        entry["steal_ns"] += res.steal_time("vm1")

    for entry in per_cell.values():
        # Guest-kernel synchronization waits, pooled: spinlock waits and
        # TLB-shootdown completion waits (the initiator spins until every
        # responder has run and acked — a preempted or sibling-stacked
        # responder inflates it exactly like a preempted lock holder).
        entry["sync_total"] = entry["lock_wait_total"] + entry["tlb_total"]
        entry["sync_count"] = entry["lock_wait_count"] + entry["tlb_count"]

    schemes = sorted({scheme for scheme, _ in per_cell})
    out = {}
    for scheme in schemes:
        # Throughput story: vs credit under the paper's CPU-bound
        # co-runner (the only one that exposes the short-slice tax).
        cpu = per_cell.get((scheme, CPU_CORUNNER))
        base = per_cell.get(("credit", CPU_CORUNNER))
        target_x = corunner_x = 1.0
        if cpu is not None and base is not None:
            target_x = _geomean(
                [
                    common.improvement(base["target_rates"][k], rate)
                    for k, rate in cpu["target_rates"].items()
                    if k in base["target_rates"]
                ]
            )
            corunner_x = _geomean(
                [
                    common.improvement(base["corunner_rates"][k], rate)
                    for k, rate in cpu["corunner_rates"].items()
                    if k in base["corunner_rates"]
                ]
            )
        # Contention story: under the blocky co-runner, where stealing
        # and sibling stacking actually occur.
        blocky = per_cell.get((scheme, BLOCKY_CORUNNER)) or cpu or {}
        out[scheme] = {
            "target_x": target_x,
            "corunner_x": corunner_x,
            "yields": blocky.get("yields", 0),
            "lock_wait_us": (
                blocky["lock_wait_total"] / blocky["lock_wait_count"] / 1000.0
                if blocky.get("lock_wait_count")
                else 0.0
            ),
            "tlb_sync_us": (
                blocky["tlb_total"] / blocky["tlb_count"] / 1000.0
                if blocky.get("tlb_count")
                else 0.0
            ),
            "sibling_wait_us": (
                blocky["sync_total"] / blocky["sync_count"] / 1000.0
                if blocky.get("sync_count")
                else 0.0
            ),
            "gang_idles": blocky.get("gang_idles", 0),
            "steal_ns": blocky.get("steal_ns", 0),
        }

    out["checks"] = _checks(out)
    return out


def _checks(out):
    """The paper-shaped ordering (§2.3 / Table 1), as booleans. Each key
    names one claimed cost/benefit of a mitigation; the full-scale
    benchmark run asserts them all."""
    checks = {}
    credit = out.get("credit")
    short = out.get("shortslice")
    cosched = out.get("cosched")
    balance = out.get("balance")
    micro = out.get("micro_pool")
    if short:
        # Short slices everywhere tax the CPU-bound co-runner; the
        # micro-sliced pool confines short slices to the cores that
        # need them.
        checks["shortslice_taxes_corunner"] = short["corunner_x"] < 1.0
    if short and micro:
        checks["micro_pool_spares_corunner"] = (
            micro["corunner_x"] > short["corunner_x"]
        )
    if cosched and credit:
        # Gang scheduling removes sibling-inflicted spin/yields but
        # pays in fragmentation (pCPUs deliberately left idle).
        checks["cosched_cuts_yields"] = cosched["yields"] < credit["yields"]
        checks["cosched_gang_idles"] = cosched["gang_idles"] > 0
    if balance and credit:
        # Sibling-disjoint placement trims the waits siblings inflict on
        # each other: a stacked lock holder / shootdown responder sits
        # queued behind its own sibling, so every waiter pays. Judged on
        # the pooled kernel-synchronization wait (spinlock + TLB-sync),
        # not the raw spinlock mean alone — balance raises throughput,
        # and more completed work means more lock acquisitions, which
        # confounds the per-acquisition spinlock mean.
        checks["balance_cuts_sibling_lock_waits"] = (
            balance["sibling_wait_us"] < credit["sibling_wait_us"]
        )
        checks["balance_cuts_spin_yields"] = balance["yields"] < credit["yields"]
    if micro:
        # Only the paper's scheme improves the target workloads without
        # the above costs.
        checks["micro_pool_improves_target"] = micro["target_x"] > 1.0
        checks["micro_pool_no_gang_idle"] = micro["gang_idles"] == 0
    return checks


def run(seed=42, scale_override=None):
    return reduce(execute(plan(seed=seed, scale_override=scale_override)))


def format_result(results):
    rows = []
    for scheme in SCHEMES:
        entry = results.get(scheme)
        if entry is None:
            continue
        rows.append(
            [
                scheme,
                "%.2fx" % entry["target_x"],
                "%.2fx" % entry["corunner_x"],
                entry["yields"],
                "%.1f" % entry["lock_wait_us"],
                "%.1f" % entry["tlb_sync_us"],
                "%.1f" % entry["sibling_wait_us"],
                entry["gang_idles"],
            ]
        )
    table = render_table(
        [
            "scheme",
            "target vs credit",
            "co-runner vs credit",
            "vm1 yields",
            "lock wait (us)",
            "TLB sync (us)",
            "sibling wait (us)",
            "gang idles",
        ],
        rows,
        title="Baselines: VTD mitigations vs the micro-sliced pool "
        "(geomean over %s; throughput vs %s co-run, contention vs %s co-run)"
        % (", ".join(WORKLOADS), CPU_CORUNNER, BLOCKY_CORUNNER),
    )
    checks = results.get("checks", {})
    lines = [table, "", "paper-shaped ordering:"]
    for name in sorted(checks):
        lines.append("  [%s] %s" % ("OK" if checks[name] else "FAIL", name))
    return "\n".join(lines)
