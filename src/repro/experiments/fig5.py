"""Figure 5 — throughput improvement vs number of micro-sliced cores
(exim and psearchy, co-run with swaptions).

Paper shapes: exim improves ~3.9x with a single micro-sliced core (the
workload is spinlock/LHP bound, one core covers it) at ~10% swaptions
cost; psearchy improves ~1.4x.
"""

from ..core.policy import PolicySpec
from ..metrics.report import render_table
from . import common
from .scenarios import corun_scenario

WORKLOADS = ("exim", "psearchy")
DEFAULT_CORE_COUNTS = (0, 1, 2, 3, 4, 5, 6)

PAPER_IMPROVEMENT_AT_1 = {"exim": 3.9, "psearchy": 1.4}


def run(seed=42, scale_override=None, workloads=WORKLOADS, core_counts=DEFAULT_CORE_COUNTS):
    _w = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    results = {}
    for kind in workloads:
        per_cores = {}
        base_target = base_corunner = None
        for cores in core_counts:
            policy = PolicySpec.baseline() if cores == 0 else PolicySpec.static(cores)
            res = corun_scenario(kind, policy=policy, seed=seed).build().run(duration, warmup_ns=_w)
            target_rate = res.rate(kind)
            corunner_rate = res.rate("swaptions")
            if cores == 0:
                base_target, base_corunner = target_rate, corunner_rate
            per_cores[cores] = {
                "target_rate": target_rate,
                "improvement": common.improvement(base_target, target_rate),
                "corunner": common.normalized_time(base_corunner, corunner_rate),
            }
        results[kind] = per_cores
    return results


def format_result(results):
    core_counts = sorted(next(iter(results.values())))
    headers = ["workload", "series"] + ["%d cores" % c for c in core_counts]
    rows = []
    for kind, per_cores in results.items():
        rows.append(
            [kind, "throughput x"]
            + ["%.2f" % per_cores[c]["improvement"] for c in core_counts]
        )
        rows.append(
            ["(swaptions)", "norm. time"]
            + ["%.2f" % per_cores[c]["corunner"] for c in core_counts]
        )
    return render_table(
        headers,
        rows,
        title="Figure 5: throughput improvement vs #micro-sliced cores "
        "(paper: exim 3.9x @1, psearchy 1.4x @1)",
    )
