"""Figure 5 — throughput improvement vs number of micro-sliced cores
(exim and psearchy, co-run with swaptions).

Paper shapes: exim improves ~3.9x with a single micro-sliced core (the
workload is spinlock/LHP bound, one core covers it) at ~10% swaptions
cost; psearchy improves ~1.4x.
"""

from ..metrics.report import render_table
from ..runner import SimJob, baseline_policy, execute, static_policy
from . import common

WORKLOADS = ("exim", "psearchy")
DEFAULT_CORE_COUNTS = (0, 1, 2, 3, 4, 5, 6)

PAPER_IMPROVEMENT_AT_1 = {"exim": 3.9, "psearchy": 1.4}


def plan(seed=42, scale_override=None, workloads=WORKLOADS, core_counts=DEFAULT_CORE_COUNTS):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    return [
        SimJob(
            tag="%s:%d" % (kind, cores),
            scenario="corun",
            scenario_kwargs={"workload_kind": kind},
            policy=baseline_policy() if cores == 0 else static_policy(cores),
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        )
        for kind in workloads
        for cores in core_counts
    ]


def reduce(results):
    """Order-independent: 0-core baselines are collected in a first pass
    so the result does not depend on executor completion order."""
    parsed = []
    bases = {}
    for tag, res in results.items():
        kind, cores_text = tag.rsplit(":", 1)
        cores = int(cores_text)
        target_rate = res.rate(kind)
        corunner_rate = res.rate("swaptions")
        parsed.append((kind, cores, target_rate, corunner_rate))
        if cores == 0:
            bases[kind] = (target_rate, corunner_rate)
    out = {}
    for kind, cores, target_rate, corunner_rate in parsed:
        base_target, base_corunner = bases.get(kind, (None, None))
        out.setdefault(kind, {})[cores] = {
            "target_rate": target_rate,
            "improvement": common.improvement(base_target, target_rate),
            "corunner": common.normalized_time(base_corunner, corunner_rate),
        }
    return out


def run(seed=42, scale_override=None, workloads=WORKLOADS, core_counts=DEFAULT_CORE_COUNTS):
    return reduce(
        execute(
            plan(
                seed=seed,
                scale_override=scale_override,
                workloads=workloads,
                core_counts=core_counts,
            )
        )
    )


def format_result(results):
    core_counts = sorted(next(iter(results.values())))
    headers = ["workload", "series"] + ["%d cores" % c for c in core_counts]
    rows = []
    for kind, per_cores in results.items():
        rows.append(
            [kind, "throughput x"]
            + ["%.2f" % per_cores[c]["improvement"] for c in core_counts]
        )
        rows.append(
            ["(swaptions)", "norm. time"]
            + ["%.2f" % per_cores[c]["corunner"] for c in core_counts]
        )
    return render_table(
        headers,
        rows,
        title="Figure 5: throughput improvement vs #micro-sliced cores "
        "(paper: exim 3.9x @1, psearchy 1.4x @1)",
    )
