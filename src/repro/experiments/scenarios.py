"""Scenario construction.

A :class:`Scenario` declares the consolidated host of one experiment:
topology, VMs with their workloads and pinning, scheduler parameters,
and the micro-slicing policy. ``build()`` wires everything into a
runnable :class:`System`.

The paper's standard configuration — one 12-pCPU socket hosting two
12-vCPU VMs (2:1 overcommit), the target workload in VM-1 and
``swaptions`` in VM-2 — is available through :func:`corun_scenario`;
:func:`solo_scenario` drops the co-runner; :func:`mixed_io_scenario`
reproduces the Figure 9 pinned single-vCPU setup.
"""

from dataclasses import dataclass, field

from ..core.policy import PolicySpec
from ..hw.costs import CostModel
from ..hw.ple import PleConfig
from ..hypervisor.hypervisor import Hypervisor
from ..sim.rng import RngHub
from ..sim.engine import Simulator
from ..sim.trace import Tracer
from ..workloads import registry
from ..workloads.base import Workload
from .results import RunResult


@dataclass
class WorkloadSpec:
    """A workload by registry name plus overrides, or a prebuilt
    instance."""

    kind: str = ""
    kwargs: dict = field(default_factory=dict)
    instance: Workload = None

    def build(self):
        if self.instance is not None:
            return self.instance
        return registry.create(self.kind, **self.kwargs)


@dataclass
class VmSpec:
    """One virtual machine."""

    name: str
    vcpus: int = 12
    workloads: list = field(default_factory=list)  # of WorkloadSpec
    weight: int = 256
    pin_to: tuple = None  # pCPU indices, or None

    def add(self, kind, **kwargs):
        self.workloads.append(WorkloadSpec(kind=kind, kwargs=kwargs))
        return self

    def add_instance(self, workload):
        self.workloads.append(WorkloadSpec(instance=workload))
        return self


@dataclass
class Scenario:
    """A full experiment configuration."""

    name: str = "scenario"
    num_pcpus: int = 12
    vms: list = field(default_factory=list)
    policy: PolicySpec = field(default_factory=PolicySpec.baseline)
    seed: int = 42
    #: Normal-pool scheduler backend name (repro.sched registry).
    scheduler: str = "credit"
    micro_slice: int = None
    costs: CostModel = None
    ple: PleConfig = None
    pv_spin_rounds: int = 1
    trace: bool = False
    trace_kinds: tuple = None   # None = all kinds
    trace_capacity: int = 100_000  # None = lossless (unbounded)
    #: Fault plan (a FaultPlan or its dict form) or None. Resolution of
    #: builtin names / files happens in the CLI and runner layers, which
    #: know the run horizon; by build time this is a concrete plan.
    faults: object = None

    def add_vm(self, name, vcpus=12, weight=256, pin_to=None):
        spec = VmSpec(name=name, vcpus=vcpus, weight=weight, pin_to=pin_to)
        self.vms.append(spec)
        return spec

    def build(self):
        sim = Simulator()
        tracer = Tracer(
            sim,
            enabled=self.trace,
            capacity=self.trace_capacity,
            kinds=self.trace_kinds,
        )
        hv = Hypervisor(
            sim,
            num_pcpus=self.num_pcpus,
            costs=self.costs,
            ple=self.ple,
            scheduler=self.scheduler,
            micro_slice=self.micro_slice,
            pv_spin_rounds=self.pv_spin_rounds,
            tracer=tracer,
            seed=self.seed,
        )
        hub = RngHub(self.seed)
        workloads = {}
        for vm_spec in self.vms:
            domain = hv.create_domain(vm_spec.name, vm_spec.vcpus, weight=vm_spec.weight)
            if vm_spec.pin_to is not None:
                domain.pin_all(vm_spec.pin_to)
            for wl_spec in vm_spec.workloads:
                workload = wl_spec.build()
                workload.install(domain, hub)
                workloads["%s:%s" % (domain.name, workload.name)] = workload
        self.policy.install(hv)
        if self.faults is not None:
            from ..faults import FaultInjector, FaultPlan

            plan = self.faults
            if not isinstance(plan, FaultPlan):
                plan = FaultPlan.from_dict(plan)
            if not plan.empty:
                FaultInjector(plan, seed=self.seed).install(hv)
        return System(self, sim, hv, workloads, tracer)


class System:
    """A built scenario, ready to run."""

    def __init__(self, scenario, sim, hv, workloads, tracer):
        self.scenario = scenario
        self.sim = sim
        self.hv = hv
        self.workloads = workloads
        self.tracer = tracer
        self._started = False

    def run(self, duration_ns, warmup_ns=0):
        """Run the simulation for ``warmup_ns`` (discarded), reset the
        measurement state, then run ``duration_ns`` and collect."""
        if not self._started:
            self.hv.start()
            self._started = True
        if warmup_ns:
            self.sim.run(until=self.sim.now + warmup_ns)
            self.reset_measurements()
        target = self.sim.now + duration_ns
        self.sim.run(until=target)
        return self.result(duration_ns)

    def reset_measurements(self):
        """Zero all measured state (workload progress, counters, latency
        stats) without disturbing execution state."""
        for workload in self.workloads.values():
            workload.reset_progress()
        self.hv.stats.counters.reset()
        for domain in self.hv.domains:
            domain.counters.reset()
            domain.kernel.lockstat = type(domain.kernel.lockstat)()
            tlb = domain.kernel.tlb
            tlb.sync_latency = type(tlb.sync_latency)(name=tlb.sync_latency.name)
        for pcpu in self.hv.pcpus:
            pcpu.busy_ns = 0
        self.hv.histograms.reset()
        now = self.sim.now
        for domain in self.hv.domains:
            for vcpu in domain.vcpus:
                vcpu.runstate.reset(now)
        self.tracer.clear()

    def result(self, duration_ns):
        return RunResult.collect(self, duration_ns)


# ----------------------------------------------------------------------
# canned configurations
# ----------------------------------------------------------------------
def solo_scenario(workload_kind, policy=None, vcpus=12, num_pcpus=12, seed=42, **wl_kwargs):
    """One VM alone on the host (the paper's ``solo``)."""
    scenario = Scenario(
        name="solo:%s" % workload_kind,
        num_pcpus=num_pcpus,
        policy=policy or PolicySpec.baseline(),
        seed=seed,
    )
    scenario.add_vm("vm1", vcpus=vcpus).add(workload_kind, **wl_kwargs)
    return scenario


def corun_scenario(
    workload_kind,
    policy=None,
    corunner_kind="swaptions",
    vcpus=12,
    num_pcpus=12,
    seed=42,
    **wl_kwargs,
):
    """Two 12-vCPU VMs on 12 pCPUs: the target plus a co-runner
    (the paper's ``co-run`` 2:1 overcommit)."""
    scenario = Scenario(
        name="corun:%s+%s" % (workload_kind, corunner_kind),
        num_pcpus=num_pcpus,
        policy=policy or PolicySpec.baseline(),
        seed=seed,
    )
    scenario.add_vm("vm1", vcpus=vcpus).add(workload_kind, **wl_kwargs)
    scenario.add_vm("vm2", vcpus=vcpus).add(corunner_kind)
    return scenario


def mixed_io_scenario(policy=None, mode="tcp", num_pcpus=12, seed=42, **iperf_kwargs):
    """Figure 9: VM-1 runs iPerf + lookbusy on one vCPU, VM-2 runs
    lookbusy on one vCPU, both pinned to the same pCPU."""
    scenario = Scenario(
        name="mixed_io:%s" % mode,
        num_pcpus=num_pcpus,
        policy=policy or PolicySpec.baseline(),
        seed=seed,
    )
    vm1 = scenario.add_vm("vm1", vcpus=1, pin_to=(0,))
    vm1.add("iperf", mode=mode, **iperf_kwargs)
    vm1.add("lookbusy")
    scenario.add_vm("vm2", vcpus=1, pin_to=(0,)).add("lookbusy")
    return scenario


def fleet_host_scenario(domains=(), policy=None, num_pcpus=12, seed=42):
    """One fleet host: a VM per resident session domain.

    ``domains`` is a sequence of ``{"name", "workload", "vcpus"}``
    specs as compiled by :mod:`repro.fleet.cluster` — each becomes an
    unpinned VM running one workload from the registry, scheduled by
    the normal credit pool on ``num_pcpus`` cores. The builder is
    deliberately dumb: all placement intelligence lives in the fleet
    layer, and a host job must be a pure function of its spec so the
    result cache can replay it.
    """
    scenario = Scenario(
        name="fleet_host:%d" % len(domains),
        num_pcpus=num_pcpus,
        policy=policy or PolicySpec.baseline(),
        seed=seed,
    )
    for spec in domains:
        vm = scenario.add_vm(spec["name"], vcpus=int(spec.get("vcpus", 1)))
        vm.add(spec["workload"])
    return scenario


def solo_io_scenario(policy=None, mode="tcp", num_pcpus=12, seed=42, **iperf_kwargs):
    """Table 4c's solo bound: the iPerf VM alone (no hog sharing its
    pCPU)."""
    scenario = Scenario(
        name="solo_io:%s" % mode,
        num_pcpus=num_pcpus,
        policy=policy or PolicySpec.baseline(),
        seed=seed,
    )
    scenario.add_vm("vm1", vcpus=1, pin_to=(0,)).add("iperf", mode=mode, **iperf_kwargs)
    return scenario
