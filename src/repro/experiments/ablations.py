"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own figures:

* **fixed micro-slicing** — shorten the time slice for *every* core
  (the MICRO'14 software approach the paper argues against): critical
  services speed up, but user-level code pays context-switch and
  cache-refill costs;
* **PLE window sensitivity** — how the trap threshold shapes yield
  counts and throughput;
* **micro-slice length sensitivity** — why 0.1 ms (shorter = lower
  latency but more switching; longer = queueing delay on the micro
  pool);
* **selective acceleration** — disable the vIRQ/vIPI relay hooks and
  keep only yield-driven detection (quantifies the I/O path's share).
"""

from ..core.microslice import MicroSliceEngine
from ..core.policy import PolicySpec
from ..hw.ple import PleConfig
from ..metrics.report import render_table
from ..sim.time import us
from . import common
from .scenarios import corun_scenario, mixed_io_scenario


def run_fixed_microslice(seed=42, scale_override=None, kind="gmake"):
    """Baseline vs our scheme vs short-slice-everywhere."""
    _w = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    results = {}
    base = corun_scenario(kind, seed=seed).build().run(duration, warmup_ns=_w)
    results["baseline"] = {"target": base.rate(kind), "corunner": base.rate("swaptions")}

    ours = corun_scenario(kind, policy=PolicySpec.static(common.STATIC_BEST.get(kind, 1)), seed=seed)
    res = ours.build().run(duration, warmup_ns=_w)
    results["micro_pool"] = {"target": res.rate(kind), "corunner": res.rate("swaptions")}

    fixed = corun_scenario(kind, seed=seed)
    fixed.scheduler = "shortslice"
    res = fixed.build().run(duration, warmup_ns=_w)
    results["fixed_100us_all_cores"] = {
        "target": res.rate(kind),
        "corunner": res.rate("swaptions"),
    }
    base_t = results["baseline"]["target"]
    base_c = results["baseline"]["corunner"]
    for entry in results.values():
        entry["target_x"] = common.improvement(base_t, entry["target"])
        entry["corunner_x"] = common.improvement(base_c, entry["corunner"])
    return results


def run_ple_window(seed=42, scale_override=None, kind="exim", windows_us=(1, 3, 10, 25)):
    """Yield counts and throughput vs the PLE window."""
    _w = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    results = {}
    for window in windows_us:
        scenario = corun_scenario(kind, seed=seed)
        scenario.ple = PleConfig(window=us(window))
        res = scenario.build().run(duration, warmup_ns=_w)
        results[window] = {
            "target_rate": res.rate(kind),
            "yields": res.total_yields("vm1"),
        }
    return results


def run_micro_slice_length(seed=42, scale_override=None, kind="dedup", slices_us=(50, 100, 300, 1000)):
    """Target throughput vs the micro pool's slice length."""
    _w = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    results = {}
    base = corun_scenario(kind, seed=seed).build().run(duration, warmup_ns=_w)
    results["baseline"] = {"target_rate": base.rate(kind)}
    for slice_us in slices_us:
        scenario = corun_scenario(
            kind, policy=PolicySpec.static(common.STATIC_BEST.get(kind, 3)), seed=seed
        )
        scenario.micro_slice = us(slice_us)
        res = scenario.build().run(duration, warmup_ns=_w)
        results[slice_us] = {"target_rate": res.rate(kind)}
    return results


def run_selective_acceleration(seed=42, scale_override=None):
    """Contribution of the relay-time hooks for the mixed-I/O case."""
    _w = common.warmup(scale_override)
    duration = common.scaled(common.IO_DURATION, scale_override)
    results = {}
    base = mixed_io_scenario(mode="tcp", seed=seed).build().run(duration, warmup_ns=_w)
    results["baseline"] = base.workload("iperf").extra

    full = mixed_io_scenario(mode="tcp", policy=PolicySpec.static(1), seed=seed)
    results["full"] = full.build().run(duration, warmup_ns=_w).workload("iperf").extra

    yield_only = mixed_io_scenario(mode="tcp", seed=seed)
    system = yield_only.build()
    engine = MicroSliceEngine(accelerate_virq=False, accelerate_vipi=False)
    system.hv.set_policy(engine)
    system.hv.set_micro_cores(1)
    results["yield_only"] = system.run(duration, warmup_ns=_w).workload("iperf").extra
    return results


def format_fixed_microslice(results):
    rows = [
        [label, "%.2fx" % entry["target_x"], "%.2fx" % entry["corunner_x"]]
        for label, entry in results.items()
    ]
    return render_table(
        ["scheme", "target vs baseline", "swaptions vs baseline"],
        rows,
        title="Ablation: micro pool vs fixed short slices on all cores",
    )
