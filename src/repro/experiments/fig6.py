"""Figure 6 — static best vs dynamic micro-sliced cores.

For each of the six workload pairs the paper compares the baseline, the
statically best number of micro-sliced cores (picked offline per
workload), and the Algorithm-1 dynamic controller. The reproduction
target: dynamic tracks the static best closely (within a few percent,
occasionally better) and always beats the baseline.
"""

from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

WORKLOADS = ("gmake", "memclone", "dedup", "vips", "exim", "psearchy")

SCHEMES = ("baseline", "static", "dynamic")


def plan(seed=42, scale_override=None, workloads=WORKLOADS):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    return [
        SimJob(
            tag="%s:%s" % (kind, label),
            scenario="corun",
            scenario_kwargs={"workload_kind": kind},
            policy=common.scheme_policy(label, common.STATIC_BEST.get(kind, 1)),
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        )
        for kind in workloads
        for label in SCHEMES
    ]


def reduce(results):
    out = {}
    for tag, res in results.items():
        kind, label = tag.rsplit(":", 1)
        out.setdefault(kind, {})[label] = {
            "target_rate": res.rate(kind),
            "corunner_rate": res.rate("swaptions"),
            "micro_cores": res.micro_cores,
            "decisions": res.adaptive_decisions,
        }
    for runs in out.values():
        base = runs["baseline"]["target_rate"]
        for label in runs:
            runs[label]["improvement"] = common.improvement(base, runs[label]["target_rate"])
    return out


def run(seed=42, scale_override=None, workloads=WORKLOADS):
    return reduce(execute(plan(seed=seed, scale_override=scale_override, workloads=workloads)))


def format_result(results):
    rows = []
    for kind, runs in results.items():
        rows.append(
            [
                kind,
                "%.2fx" % runs["static"]["improvement"],
                "%.2fx" % runs["dynamic"]["improvement"],
                common.STATIC_BEST.get(kind, 1),
                runs["dynamic"]["micro_cores"],
            ]
        )
    return render_table(
        ["workload", "static best", "dynamic", "static cores", "dyn final cores"],
        rows,
        title="Figure 6: static best vs dynamic (improvement over baseline)",
    )
