"""Figure 6 — static best vs dynamic micro-sliced cores.

For each of the six workload pairs the paper compares the baseline, the
statically best number of micro-sliced cores (picked offline per
workload), and the Algorithm-1 dynamic controller. The reproduction
target: dynamic tracks the static best closely (within a few percent,
occasionally better) and always beats the baseline.
"""

from ..core.policy import PolicySpec
from ..metrics.report import render_table
from . import common
from .scenarios import corun_scenario

WORKLOADS = ("gmake", "memclone", "dedup", "vips", "exim", "psearchy")


def run(seed=42, scale_override=None, workloads=WORKLOADS):
    _w = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    results = {}
    for kind in workloads:
        best = common.STATIC_BEST.get(kind, 1)
        runs = {}
        for label, policy in (
            ("baseline", PolicySpec.baseline()),
            ("static", PolicySpec.static(best)),
            ("dynamic", common.dynamic_policy()),
        ):
            res = corun_scenario(kind, policy=policy, seed=seed).build().run(duration, warmup_ns=_w)
            runs[label] = {
                "target_rate": res.rate(kind),
                "corunner_rate": res.rate("swaptions"),
                "micro_cores": res.micro_cores,
                "decisions": res.adaptive_decisions,
            }
        base = runs["baseline"]["target_rate"]
        for label in runs:
            runs[label]["improvement"] = common.improvement(base, runs[label]["target_rate"])
        results[kind] = runs
    return results


def format_result(results):
    rows = []
    for kind, runs in results.items():
        rows.append(
            [
                kind,
                "%.2fx" % runs["static"]["improvement"],
                "%.2fx" % runs["dynamic"]["improvement"],
                common.STATIC_BEST.get(kind, 1),
                runs["dynamic"]["micro_cores"],
            ]
        )
    return render_table(
        ["workload", "static best", "dynamic", "static cores", "dyn final cores"],
        rows,
        title="Figure 6: static best vs dynamic (improvement over baseline)",
    )
