"""Fleet experiment — placement policies vs. fleet-wide vIRQ tail.

The single-host experiments reproduce the paper's tables; this one
asks the question the paper motivates but never measures: *at
datacenter scale, how much of the vIRQ tail is a placement problem?*
Six simulated 12-pCPU hosts serve an open Poisson session stream under
each registered placement policy (same seed, same arrival trace), and
the deliverable is the fleet-wide p50/p95/p99 vIRQ delivery tail,
per-host utilization, admission rejects, and migrations per policy.

Unlike every other registry entry this module is a **driver**: it has
no ``plan()``/``reduce()`` pair because the job set is not known up
front — each epoch's host jobs depend on the previous epoch's results
(steal feedback, migrations). It exposes ``drive()`` instead, and the
registry fans its per-epoch job waves out through the same
executor/cache machinery. Because there is no ``plan()``, the payload
manifest (which freezes the closed set of plannable jobs) is
unaffected: fleet host jobs are cache-governed by the same content
hashing, just not pinned.

The paper-shaped expectation checked by ``checks()``: informed
placement (``first_fit`` bin-packing, ``steal_aware`` feedback) beats
``random`` on the fleet p99 vIRQ tail at equal packing density —
contention stacked onto a few hosts hurts the tail more than the same
demand spread out, which is exactly the consolidation pain the paper's
micro-sliced cores then attack *within* each host.
"""

from ..errors import ConfigError
from ..fleet import FleetSpec, run_fleet
from ..fleet import placement
from ..metrics.report import render_table

#: Policies compared by default (every registered one, random first so
#: the table reads baseline-down).
POLICIES = ("random", "first_fit", "steal_aware")


def make_spec(
    seed=42,
    scale_override=None,
    hosts=6,
    epochs=6,
    rate=24.0,
    overcommit=2.0,
    migration_cost_ms=5.0,
    scheduler=None,
):
    """The experiment's :class:`~repro.fleet.cluster.FleetSpec` (the
    defaults put steady-state demand at ~80% of fleet pCPU capacity —
    high enough that stacking shows up in the tail, low enough that an
    informed policy can keep every host uncontended)."""
    return FleetSpec(
        hosts=hosts,
        epochs=epochs,
        rate=rate,
        overcommit=overcommit,
        seed=seed,
        scale=scale_override,
        migration_cost_ms=migration_cost_ms,
        scheduler=scheduler,
    )


def drive(
    workers=None,
    cache=None,
    progress=None,
    seed=42,
    scale_override=None,
    scheduler=None,
    policies=POLICIES,
    **spec_kwargs,
):
    """Run the fleet under every requested policy; returns
    ``{"policies": {name: summary}, "checks": {...}}`` — JSON-native
    and byte-stable for a given spec (the determinism gate)."""
    names = list(policies)
    if not names:
        raise ConfigError("fleet experiment needs at least one placement policy")
    spec = make_spec(
        seed=seed, scale_override=scale_override, scheduler=scheduler, **spec_kwargs
    )
    summaries = run_fleet(
        spec, policies=names, workers=workers, cache=cache, progress=progress
    )
    return {"policies": summaries, "checks": checks(summaries)}


def checks(summaries):
    """The paper-shaped ordering assertions over one comparison run.

    Only meaningful when ``random`` and at least one informed policy
    ran; with a single policy the dict is empty."""
    out = {}
    random_summary = summaries.get("random")
    if random_summary is None or len(summaries) < 2:
        return out
    densities = [s["packing"]["mean_density"] for s in summaries.values()]
    out["equal_density"] = max(densities) - min(densities) < 1e-9
    random_p99 = random_summary["virq"]["p99_ns"]
    for name in sorted(summaries):
        if name == "random":
            continue
        out["%s_beats_random" % name] = (
            summaries[name]["virq"]["p99_ns"] < random_p99
        )
    return out


def format_result(results):
    summaries = results["policies"]
    rows = []
    ordered = [name for name in POLICIES if name in summaries]
    ordered += [name for name in sorted(summaries) if name not in ordered]
    for name in ordered:
        s = summaries[name]
        rows.append(
            [
                name,
                "%.1f" % (s["virq"]["p50_ns"] / 1e3),
                "%.1f" % (s["virq"]["p95_ns"] / 1e3),
                "%.1f" % (s["virq"]["p99_ns"] / 1e3),
                s["sessions"]["admitted"],
                s["sessions"]["rejected"],
                s["migrations"]["count"],
                "%.2f" % s["packing"]["mean_density"],
                "%.1f" % (100.0 * s["utilization"]["mean"]),
            ]
        )
    table = render_table(
        [
            "policy",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "admitted",
            "rejected",
            "migrations",
            "density",
            "util %",
        ],
        rows,
        title="Fleet: placement policy vs fleet-wide vIRQ delivery tail "
        "(%d hosts, open arrivals)" % next(iter(summaries.values()))["config"]["hosts"],
    )
    lines = [table]
    check_results = results.get("checks") or {}
    if check_results:
        lines.append("")
        for key in sorted(check_results):
            lines.append(
                "check %-28s %s" % (key, "OK" if check_results[key] else "FAILED")
            )
    return "\n".join(lines)
