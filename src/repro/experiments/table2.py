"""Table 2 — number of yields, solo vs co-run (w/ swaptions).

The paper's counts (over full benchmark runs on real hardware):

=========  =========  ============
workload   solo       co-run
=========  =========  ============
exim       157,023    24,102,495
gmake      79,440     295,262,662
dedup      290,406    164,578,839
vips       644,643    57,650,538
=========  =========  ============

We reproduce the *structure*: consolidation inflates yield counts by
orders of magnitude. Absolute counts differ (shorter runs, time-model
costs), the solo≪co-run relationship is the result.
"""

from ..metrics.report import render_table
from ..runner import SimJob, execute
from ..sim.time import to_seconds
from . import common

WORKLOADS = ("exim", "gmake", "dedup", "vips")

PAPER = {
    "exim": (157_023, 24_102_495),
    "gmake": (79_440, 295_262_662),
    "dedup": (290_406, 164_578_839),
    "vips": (644_643, 57_650_538),
}


def plan(seed=42, scale_override=None, workloads=WORKLOADS):
    warmup = common.warmup(scale_override)
    solo_t = common.scaled(common.SOLO_DURATION, scale_override)
    corun_t = common.scaled(common.CORUN_DURATION, scale_override)
    jobs = []
    for kind in workloads:
        jobs.append(
            SimJob(
                tag="%s:solo" % kind,
                scenario="solo",
                scenario_kwargs={"workload_kind": kind},
                seed=seed,
                duration_ns=solo_t,
                warmup_ns=warmup,
            )
        )
        jobs.append(
            SimJob(
                tag="%s:corun" % kind,
                scenario="corun",
                scenario_kwargs={"workload_kind": kind},
                seed=seed,
                duration_ns=corun_t,
                warmup_ns=warmup,
            )
        )
    return jobs


def reduce(results):
    grouped = {}
    for tag, res in results.items():
        kind, label = tag.rsplit(":", 1)
        grouped.setdefault(kind, {})[label] = res
    out = {}
    for kind, pair in grouped.items():
        solo, corun = pair["solo"], pair["corun"]
        solo_rate = solo.total_yields("vm1") / to_seconds(solo.duration_ns)
        corun_rate = corun.total_yields("vm1") / to_seconds(corun.duration_ns)
        # The paper counts yields over *complete benchmark runs* — a
        # fixed amount of work, not a fixed wall-clock window. The
        # comparable statistic is therefore yields per unit of completed
        # work.
        solo_per_work = solo.total_yields("vm1") / max(solo.workload(kind).progress, 1)
        corun_per_work = corun.total_yields("vm1") / max(corun.workload(kind).progress, 1)
        out[kind] = {
            "solo": solo.total_yields("vm1"),
            "corun": corun.total_yields("vm1"),
            "solo_per_sec": solo_rate,
            "corun_per_sec": corun_rate,
            "solo_per_work": solo_per_work,
            "corun_per_work": corun_per_work,
            "inflation": corun_per_work / solo_per_work
            if solo_per_work
            else float("inf"),
        }
    return out


def run(seed=42, scale_override=None):
    """Returns ``{workload: {"solo": n, "corun": n, ...}}``."""
    return reduce(execute(plan(seed=seed, scale_override=scale_override)))


def format_result(results):
    rows = []
    for kind in WORKLOADS:
        entry = results[kind]
        paper_solo, paper_corun = PAPER[kind]
        rows.append(
            [
                kind,
                "%.2f" % entry["solo_per_work"],
                "%.2f" % entry["corun_per_work"],
                "%.0fx" % entry["inflation"],
                "%.0fx" % (paper_corun / paper_solo),
            ]
        )
    return render_table(
        [
            "workload",
            "solo yields/unit",
            "co-run yields/unit",
            "inflation",
            "paper inflation (per run)",
        ],
        rows,
        title="Table 2: yields per unit of work, solo vs co-run (w/ swaptions)",
    )
