"""Figure 8 — overhead on non-affected workloads.

The paper runs PARSEC's user-dominated apps (blackscholes, bodytrack,
streamcluster, raytrace) and three SPEC CPU2006 components (perlbench,
sjeng, bzip2) against swaptions with the dynamic scheme enabled, and
measures 2-3% average overhead. Reproduction target: the dynamic
controller's profiling leaves these workloads essentially untouched
(within a few percent of baseline).
"""

from ..core.policy import PolicySpec
from ..metrics.report import render_table
from . import common
from .scenarios import corun_scenario

WORKLOADS = (
    "blackscholes",
    "bodytrack",
    "streamcluster",
    "raytrace",
    "perlbench",
    "sjeng",
    "bzip2",
)


def run(seed=42, scale_override=None, workloads=WORKLOADS):
    _w = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    results = {}
    for kind in workloads:
        base = corun_scenario(kind, policy=PolicySpec.baseline(), seed=seed).build().run(duration, warmup_ns=_w)
        dyn = corun_scenario(kind, policy=common.dynamic_policy(), seed=seed).build().run(duration, warmup_ns=_w)
        base_rate = base.rate(kind)
        dyn_rate = dyn.rate(kind)
        results[kind] = {
            "baseline_rate": base_rate,
            "dynamic_rate": dyn_rate,
            "norm_time": common.normalized_time(base_rate, dyn_rate),
            "overhead_pct": 100.0 * (1.0 - dyn_rate / base_rate) if base_rate else 0.0,
        }
    return results


def format_result(results):
    rows = []
    for kind, entry in results.items():
        rows.append(
            [kind, "%.3f" % entry["norm_time"], "%.1f%%" % entry["overhead_pct"]]
        )
    return render_table(
        ["workload", "norm. exec time (dynamic)", "overhead"],
        rows,
        title="Figure 8: non-affected workloads (paper: ~2-3% overhead)",
    )
