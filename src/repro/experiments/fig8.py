"""Figure 8 — overhead on non-affected workloads.

The paper runs PARSEC's user-dominated apps (blackscholes, bodytrack,
streamcluster, raytrace) and three SPEC CPU2006 components (perlbench,
sjeng, bzip2) against swaptions with the dynamic scheme enabled, and
measures 2-3% average overhead. Reproduction target: the dynamic
controller's profiling leaves these workloads essentially untouched
(within a few percent of baseline).
"""

from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

WORKLOADS = (
    "blackscholes",
    "bodytrack",
    "streamcluster",
    "raytrace",
    "perlbench",
    "sjeng",
    "bzip2",
)

SCHEMES = ("baseline", "dynamic")


def plan(seed=42, scale_override=None, workloads=WORKLOADS):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    return [
        SimJob(
            tag="%s:%s" % (kind, label),
            scenario="corun",
            scenario_kwargs={"workload_kind": kind},
            policy=common.scheme_policy(label),
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        )
        for kind in workloads
        for label in SCHEMES
    ]


def reduce(results):
    rates = {}
    for tag, res in results.items():
        kind, label = tag.rsplit(":", 1)
        rates.setdefault(kind, {})[label] = res.rate(kind)
    out = {}
    for kind, per_scheme in rates.items():
        base_rate = per_scheme["baseline"]
        dyn_rate = per_scheme["dynamic"]
        out[kind] = {
            "baseline_rate": base_rate,
            "dynamic_rate": dyn_rate,
            "norm_time": common.normalized_time(base_rate, dyn_rate),
            "overhead_pct": 100.0 * (1.0 - dyn_rate / base_rate) if base_rate else 0.0,
        }
    return out


def run(seed=42, scale_override=None, workloads=WORKLOADS):
    return reduce(execute(plan(seed=seed, scale_override=scale_override, workloads=workloads)))


def format_result(results):
    rows = []
    for kind, entry in results.items():
        rows.append(
            [kind, "%.3f" % entry["norm_time"], "%.1f%%" % entry["overhead_pct"]]
        )
    return render_table(
        ["workload", "norm. exec time (dynamic)", "overhead"],
        rows,
        title="Figure 8: non-affected workloads (paper: ~2-3% overhead)",
    )
