"""Figure 7 — decomposition of yield events: Baseline / Static /
Dynamic.

The paper's stacked bars show, per workload, how many yields each
scheme produces and their causes (ipi / spinlock / halt / others).
Reproduction targets: the micro-sliced schemes cut the dominant cause
dramatically (IPI-induced yields for the TLB workloads, PLE/spinlock
yields for the lock-bound ones), and overall yields drop well below the
baseline.
"""

from ..core.policy import PolicySpec
from ..hypervisor.stats import YIELD_CAUSES
from ..metrics.report import render_table
from . import common
from .scenarios import corun_scenario

WORKLOADS = ("gmake", "memclone", "dedup", "vips", "exim", "psearchy")
SCHEMES = ("baseline", "static", "dynamic")


def run(seed=42, scale_override=None, workloads=WORKLOADS):
    _w = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    results = {}
    for kind in workloads:
        best = common.STATIC_BEST.get(kind, 1)
        per_scheme = {}
        for label, policy in (
            ("baseline", PolicySpec.baseline()),
            ("static", PolicySpec.static(best)),
            ("dynamic", common.dynamic_policy()),
        ):
            res = corun_scenario(kind, policy=policy, seed=seed).build().run(duration, warmup_ns=_w)
            causes = res.yields_by_cause("vm1")
            causes["total"] = sum(causes.get(c, 0) for c in YIELD_CAUSES)
            per_scheme[label] = causes
        results[kind] = per_scheme
    return results


def format_result(results):
    rows = []
    for kind, per_scheme in results.items():
        base_total = per_scheme["baseline"]["total"] or 1
        for label in SCHEMES:
            causes = per_scheme[label]
            rows.append(
                [
                    kind if label == "baseline" else "",
                    label[0].upper(),
                    causes.get("ipi", 0),
                    causes.get("spinlock", 0),
                    causes.get("halt", 0),
                    causes.get("other", 0),
                    "%.2f" % (causes["total"] / base_total),
                ]
            )
    return render_table(
        ["workload", "scheme", "ipi", "spinlock", "halt", "other", "vs baseline"],
        rows,
        title="Figure 7: yield decomposition (B: baseline, S: static, D: dynamic)",
    )
