"""Figure 7 — decomposition of yield events: Baseline / Static /
Dynamic.

The paper's stacked bars show, per workload, how many yields each
scheme produces and their causes (ipi / spinlock / halt / others).
Reproduction targets: the micro-sliced schemes cut the dominant cause
dramatically (IPI-induced yields for the TLB workloads, PLE/spinlock
yields for the lock-bound ones), and overall yields drop well below the
baseline.
"""

from ..hypervisor.stats import YIELD_CAUSES
from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

WORKLOADS = ("gmake", "memclone", "dedup", "vips", "exim", "psearchy")
SCHEMES = ("baseline", "static", "dynamic")


def plan(seed=42, scale_override=None, workloads=WORKLOADS):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    return [
        SimJob(
            tag="%s:%s" % (kind, label),
            scenario="corun",
            scenario_kwargs={"workload_kind": kind},
            policy=common.scheme_policy(label, common.STATIC_BEST.get(kind, 1)),
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        )
        for kind in workloads
        for label in SCHEMES
    ]


def reduce(results):
    out = {}
    for tag, res in results.items():
        kind, label = tag.rsplit(":", 1)
        causes = res.yields_by_cause("vm1")
        causes["total"] = sum(causes.get(c, 0) for c in YIELD_CAUSES)
        out.setdefault(kind, {})[label] = causes
    return out


def run(seed=42, scale_override=None, workloads=WORKLOADS):
    return reduce(execute(plan(seed=seed, scale_override=scale_override, workloads=workloads)))


def format_result(results):
    rows = []
    for kind, per_scheme in results.items():
        base_total = per_scheme["baseline"]["total"] or 1
        for label in SCHEMES:
            causes = per_scheme[label]
            rows.append(
                [
                    kind if label == "baseline" else "",
                    label[0].upper(),
                    causes.get("ipi", 0),
                    causes.get("spinlock", 0),
                    causes.get("halt", 0),
                    causes.get("other", 0),
                    "%.2f" % (causes["total"] / base_total),
                ]
            )
    return render_table(
        ["workload", "scheme", "ipi", "spinlock", "halt", "other", "vs baseline"],
        rows,
        title="Figure 7: yield decomposition (B: baseline, S: static, D: dynamic)",
    )
