"""Shared experiment infrastructure.

Durations: the paper runs benchmarks for minutes; the simulation runs
sub-second windows that still cover dozens of 30 ms scheduling rounds.
``REPRO_BENCH_SCALE`` multiplies every duration (e.g. ``=4`` for more
stable statistics at 4x wall cost).
"""

import os

from ..core.policy import PolicySpec
from ..runner import baseline_policy, dynamic_policy as dynamic_policy_desc, static_policy
from ..sim.time import ms

#: Default simulated durations (before scaling).
#: Every run discards a warmup so measurements reflect steady state.
WARMUP = ms(120)
SOLO_DURATION = ms(150)
CORUN_DURATION = ms(250)
IO_DURATION = ms(400)
#: Experiments involving the dynamic controller need room for at least
#: one profile sweep (~40 ms) plus a long run phase.
DYNAMIC_DURATION = ms(500)

#: Adaptive-controller epoch used in experiments: the paper uses 1 s
#: epochs over minutes-long runs; our runs are ~100x shorter, so the
#: epoch scales down to keep profiling overhead at the paper's ~4%.
DYNAMIC_EPOCH = ms(200)


def scale():
    """Global duration multiplier from ``REPRO_BENCH_SCALE``."""
    try:
        value = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(value, 0.01)


def scaled(duration_ns, scale_override=None):
    factor = scale() if scale_override is None else scale_override
    return max(int(duration_ns * factor), ms(10))


def warmup(scale_override=None):
    """Scaled warmup duration discarded before measuring."""
    return scaled(WARMUP, scale_override)


def dynamic_policy():
    """The dynamic policy with the experiment-scaled epoch."""
    return PolicySpec.dynamic(epoch_interval=DYNAMIC_EPOCH)


def scheme_policy(label, static_cores=1):
    """Job-policy descriptor for the standard three-scheme comparison
    (baseline / static-best / dynamic with the experiment epoch)."""
    if label == "baseline":
        return baseline_policy()
    if label == "static":
        return static_policy(static_cores)
    if label == "dynamic":
        return dynamic_policy_desc(epoch_interval=DYNAMIC_EPOCH)
    raise ValueError("unknown scheme label %r" % label)


#: Best static micro-sliced core count per workload, as found by the
#: Figure 4/5 sweeps on this simulator (the paper's Figure 6 "static"
#: bars use the analogous per-workload best).
STATIC_BEST = {
    "gmake": 3,
    "memclone": 1,
    "dedup": 3,
    "vips": 3,
    "exim": 1,
    "psearchy": 3,
}


def normalized_time(baseline_rate, rate):
    """Normalized execution time vs a baseline (1.0 = same speed,
    <1.0 = faster). Work-rate based: time ∝ 1/rate."""
    if rate <= 0:
        return 1.0 if baseline_rate <= 0 else float("inf")
    return baseline_rate / rate


def improvement(baseline_rate, rate):
    """Throughput improvement factor vs a baseline."""
    if baseline_rate <= 0:
        return 1.0 if rate <= 0 else float("inf")
    return rate / baseline_rate
