"""Table 1, quantified.

The paper's Table 1 is a qualitative check-mark matrix comparing the
flexible micro-sliced scheme against prior approaches. With simplified
models of those approaches (:mod:`repro.core.comparators`) we can
measure the matrix: each scheme is run on one scenario per symptom
class and scored by improvement over the baseline.

Symptom scenarios:

* **lock holder preemption** — exim + swaptions (spinlock-bound);
* **TLB/IPI synchronisation** — vips + swaptions (shootdown-bound);
* **I/O + CPU mixed** — iPerf+lookbusy vs lookbusy, pinned (Fig 9).

Expected pattern (the paper's claim): vTurbo only helps I/O; vTRS helps
homogeneous vCPUs but not the mixed case; fixed micro-slicing helps the
kernel paths but taxes the CPU-bound co-runner; the paper's scheme
helps all three.
"""

from ..metrics.report import render_table
from ..runner import (
    SimJob,
    baseline_policy,
    execute,
    static_policy,
    vtrs_policy,
    vturbo_policy,
)
from . import common

SCHEMES = ("baseline", "microsliced", "vturbo", "vtrs", "fixed_uslice")


def _scheme_policy(scheme, micro_cores):
    """Policy descriptor (+ config overrides) for a Table-1 scheme."""
    if scheme == "microsliced":
        return static_policy(micro_cores), {}
    if scheme == "vturbo":
        return vturbo_policy(turbo_cores=1), {}
    if scheme == "vtrs":
        return vtrs_policy(pool_cores=micro_cores), {}
    if scheme == "fixed_uslice":
        # Short-slice-everywhere is a first-class scheduler backend now
        # (repro.sched.shortslice); same model, selected by name.
        return baseline_policy(), {"scheduler": "shortslice"}
    return baseline_policy(), {}


#: (symptom tag, scenario, scenario kwargs, micro cores, duration key)
_SYMPTOMS = (
    ("lock", "corun", {"workload_kind": "exim"}, 1, "corun"),
    ("tlb", "corun", {"workload_kind": "vips"}, 3, "corun"),
    ("io", "mixed_io", {}, 1, "io"),
)


def plan(seed=42, scale_override=None, schemes=SCHEMES):
    warmup = common.warmup(scale_override)
    durations = {
        "corun": common.scaled(common.CORUN_DURATION, scale_override),
        "io": common.scaled(common.IO_DURATION, scale_override),
    }
    jobs = []
    for scheme in schemes:
        for symptom, scenario, kwargs, micro_cores, dkey in _SYMPTOMS:
            policy, overrides = _scheme_policy(scheme, micro_cores)
            jobs.append(
                SimJob(
                    tag="%s:%s" % (scheme, symptom),
                    scenario=scenario,
                    scenario_kwargs=kwargs,
                    policy=policy,
                    overrides=overrides,
                    seed=seed,
                    duration_ns=durations[dkey],
                    warmup_ns=warmup,
                )
            )
    return jobs


def reduce(results):
    out = {}
    for tag, res in results.items():
        scheme, symptom = tag.rsplit(":", 1)
        entry = out.setdefault(scheme, {})
        if symptom == "lock":
            entry["lock"] = res.rate("exim")
            entry["corunner"] = res.rate("swaptions")
        elif symptom == "tlb":
            entry["tlb"] = res.rate("vips")
        elif symptom == "io":
            entry["io"] = res.workload("iperf").extra["throughput_mbps"]
            entry["cotask"] = res.rate("vm1:lookbusy")
    base = out.get(
        "baseline", {"lock": 1, "tlb": 1, "io": 1, "corunner": 1, "cotask": 1}
    )
    for scheme, entry in out.items():
        for key in ("lock", "tlb", "io", "corunner", "cotask"):
            entry[key + "_x"] = common.improvement(base[key], entry[key])
    return out


def run(seed=42, scale_override=None, schemes=SCHEMES):
    return reduce(execute(plan(seed=seed, scale_override=scale_override, schemes=schemes)))


def format_result(results):
    rows = []
    for scheme, entry in results.items():
        rows.append(
            [
                scheme,
                "%.2fx" % entry["lock_x"],
                "%.2fx" % entry["tlb_x"],
                "%.2fx" % entry["io_x"],
                "%.2fx" % entry["corunner_x"],
                "%.2fx" % entry["cotask_x"],
            ]
        )
    return render_table(
        [
            "scheme",
            "lock (exim)",
            "TLB (vips)",
            "mixed I/O (iperf)",
            "co-runner (swaptions)",
            "co-task (lookbusy)",
        ],
        rows,
        title="Table 1 quantified: improvement over baseline per symptom class",
    )
