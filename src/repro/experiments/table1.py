"""Table 1, quantified.

The paper's Table 1 is a qualitative check-mark matrix comparing the
flexible micro-sliced scheme against prior approaches. With simplified
models of those approaches (:mod:`repro.core.comparators`) we can
measure the matrix: each scheme is run on one scenario per symptom
class and scored by improvement over the baseline.

Symptom scenarios:

* **lock holder preemption** — exim + swaptions (spinlock-bound);
* **TLB/IPI synchronisation** — vips + swaptions (shootdown-bound);
* **I/O + CPU mixed** — iPerf+lookbusy vs lookbusy, pinned (Fig 9).

Expected pattern (the paper's claim): vTurbo only helps I/O; vTRS helps
homogeneous vCPUs but not the mixed case; fixed micro-slicing helps the
kernel paths but taxes the CPU-bound co-runner; the paper's scheme
helps all three.
"""

from ..core.comparators import VTrsPolicy, VTurboPolicy
from ..core.policy import PolicySpec
from ..metrics.report import render_table
from ..sim.time import us
from . import common
from .scenarios import corun_scenario, mixed_io_scenario

SCHEMES = ("baseline", "microsliced", "vturbo", "vtrs", "fixed_uslice")


def _build_with_policy(scenario, scheme, micro_cores):
    if scheme == "microsliced":
        scenario.policy = PolicySpec.static(micro_cores)
        return scenario.build()
    if scheme == "fixed_uslice":
        scenario.normal_slice = us(100)
        return scenario.build()
    system = scenario.build()
    if scheme == "vturbo":
        system.hv.set_policy(VTurboPolicy(turbo_cores=1))
    elif scheme == "vtrs":
        system.hv.set_policy(VTrsPolicy(pool_cores=micro_cores))
    return system


def run(seed=42, scale_override=None, schemes=SCHEMES):
    _w = common.warmup(scale_override)
    corun_t = common.scaled(common.CORUN_DURATION, scale_override)
    io_t = common.scaled(common.IO_DURATION, scale_override)
    results = {}

    for scheme in schemes:
        entry = {}
        # Lock-holder preemption symptom (plus the CPU-bound
        # co-runner's cost — where fixed micro-slicing pays).
        system = _build_with_policy(corun_scenario("exim", seed=seed), scheme, 1)
        res = system.run(corun_t, warmup_ns=_w)
        entry["lock"] = res.rate("exim")
        entry["corunner"] = res.rate("swaptions")
        # TLB/IPI symptom.
        system = _build_with_policy(corun_scenario("vips", seed=seed), scheme, 3)
        res = system.run(corun_t, warmup_ns=_w)
        entry["tlb"] = res.rate("vips")
        # Mixed I/O symptom (plus the compute task sharing the vCPU —
        # where whole-vCPU classification pays).
        system = _build_with_policy(mixed_io_scenario(seed=seed), scheme, 1)
        res = system.run(io_t, warmup_ns=_w)
        entry["io"] = res.workload("iperf").extra["throughput_mbps"]
        entry["cotask"] = res.rate("vm1:lookbusy")
        results[scheme] = entry

    base = results.get(
        "baseline", {"lock": 1, "tlb": 1, "io": 1, "corunner": 1, "cotask": 1}
    )
    for scheme, entry in results.items():
        for key in ("lock", "tlb", "io", "corunner", "cotask"):
            entry[key + "_x"] = common.improvement(base[key], entry[key])
    return results


def format_result(results):
    rows = []
    for scheme, entry in results.items():
        rows.append(
            [
                scheme,
                "%.2fx" % entry["lock_x"],
                "%.2fx" % entry["tlb_x"],
                "%.2fx" % entry["io_x"],
                "%.2fx" % entry["corunner_x"],
                "%.2fx" % entry["cotask_x"],
            ]
        )
    return render_table(
        [
            "scheme",
            "lock (exim)",
            "TLB (vips)",
            "mixed I/O (iperf)",
            "co-runner (swaptions)",
            "co-task (lookbusy)",
        ],
        rows,
        title="Table 1 quantified: improvement over baseline per symptom class",
    )
