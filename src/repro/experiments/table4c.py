"""Table 4c — iPerf latency (jitter) and throughput, solo vs mixed
co-run.

Paper values (TCP, 1 GbE):

=============  ===========  ==================
config         jitter (ms)  throughput (Mbps)
=============  ===========  ==================
solo           0.0043       936.3
mixed co-run   9.2507       435.6
=============  ===========  ==================

Reproduction target: near-zero jitter and near-line-rate throughput
solo; milliseconds of jitter and roughly-halved throughput when the
iPerf vCPU shares its pCPU with CPU hogs (BOOST cannot fire for a
runnable vCPU).
"""

from ..metrics.report import render_table
from . import common
from .scenarios import mixed_io_scenario, solo_io_scenario

PAPER = {"solo": (0.0043, 936.3), "mixed": (9.2507, 435.6)}


def run(seed=42, scale_override=None):
    _w = common.warmup(scale_override)
    duration = common.scaled(common.IO_DURATION, scale_override)
    solo = solo_io_scenario(mode="tcp", seed=seed).build().run(duration, warmup_ns=_w)
    mixed = mixed_io_scenario(mode="tcp", seed=seed).build().run(duration, warmup_ns=_w)
    return {
        "solo": solo.workload("iperf").extra,
        "mixed": mixed.workload("iperf").extra,
    }


def format_result(results):
    rows = []
    for config in ("solo", "mixed"):
        io = results[config]
        paper_jitter, paper_bw = PAPER[config]
        rows.append(
            [
                config,
                "%.4f" % io["jitter_ms"],
                "%.0f" % io["throughput_mbps"],
                "%.4f / %.0f" % (paper_jitter, paper_bw),
            ]
        )
    return render_table(
        ["config", "jitter (ms)", "throughput (Mbps)", "paper jitter/bw"],
        rows,
        title="Table 4c: iPerf solo vs mixed co-run",
    )
