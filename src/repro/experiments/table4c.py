"""Table 4c — iPerf latency (jitter) and throughput, solo vs mixed
co-run.

Paper values (TCP, 1 GbE):

=============  ===========  ==================
config         jitter (ms)  throughput (Mbps)
=============  ===========  ==================
solo           0.0043       936.3
mixed co-run   9.2507       435.6
=============  ===========  ==================

Reproduction target: near-zero jitter and near-line-rate throughput
solo; milliseconds of jitter and roughly-halved throughput when the
iPerf vCPU shares its pCPU with CPU hogs (BOOST cannot fire for a
runnable vCPU).
"""

from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

PAPER = {"solo": (0.0043, 936.3), "mixed": (9.2507, 435.6)}


def plan(seed=42, scale_override=None):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.IO_DURATION, scale_override)
    return [
        SimJob(
            tag="solo",
            scenario="solo_io",
            scenario_kwargs={"mode": "tcp"},
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        ),
        SimJob(
            tag="mixed",
            scenario="mixed_io",
            scenario_kwargs={"mode": "tcp"},
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        ),
    ]


def reduce(results):
    return {tag: res.workload("iperf").extra for tag, res in results.items()}


def run(seed=42, scale_override=None):
    return reduce(execute(plan(seed=seed, scale_override=scale_override)))


def format_result(results):
    rows = []
    for config in ("solo", "mixed"):
        io = results[config]
        paper_jitter, paper_bw = PAPER[config]
        rows.append(
            [
                config,
                "%.4f" % io["jitter_ms"],
                "%.0f" % io["throughput_mbps"],
                "%.4f / %.0f" % (paper_jitter, paper_bw),
            ]
        )
    return render_table(
        ["config", "jitter (ms)", "throughput (Mbps)", "paper jitter/bw"],
        rows,
        title="Table 4c: iPerf solo vs mixed co-run",
    )
