"""Figure 9 — I/O performance of mixed-behaviour VMs.

VM-1 hosts iPerf *and* lookbusy on one vCPU; VM-2 hosts lookbusy; both
vCPUs are pinned to the same pCPU. Xen's BOOST cannot fire (the vCPU is
always runnable), so in the baseline vIRQ handling waits out the
co-runner's slices. The micro-sliced scheme migrates the vIRQ recipient
onto a micro-sliced core at relay time.

Reproduction targets (paper): TCP and UDP bandwidth improve markedly
under the micro-sliced scheme; jitter collapses from ~8 ms to ~0.
"""

from ..core.policy import PolicySpec
from ..metrics.report import render_table
from . import common
from .scenarios import mixed_io_scenario, solo_io_scenario

MODES = ("tcp", "udp")


def run(seed=42, scale_override=None, modes=MODES):
    _w = common.warmup(scale_override)
    duration = common.scaled(common.IO_DURATION, scale_override)
    results = {}
    for mode in modes:
        solo = solo_io_scenario(mode=mode, seed=seed).build().run(duration, warmup_ns=_w)
        base = mixed_io_scenario(mode=mode, policy=PolicySpec.baseline(), seed=seed).build().run(duration, warmup_ns=_w)
        micro = mixed_io_scenario(mode=mode, policy=PolicySpec.static(1), seed=seed).build().run(duration, warmup_ns=_w)
        results[mode] = {
            "solo": solo.workload("iperf").extra,
            "baseline": base.workload("iperf").extra,
            "microsliced": micro.workload("iperf").extra,
        }
    return results


def format_result(results):
    rows = []
    for mode, configs in results.items():
        for label in ("solo", "baseline", "microsliced"):
            io = configs[label]
            rows.append(
                [
                    mode.upper(),
                    label,
                    "%.0f" % io["throughput_mbps"],
                    "%.4f" % io["jitter_ms"],
                    io["dropped"],
                ]
            )
    return render_table(
        ["mode", "config", "bandwidth (Mbps)", "jitter (ms)", "drops"],
        rows,
        title="Figure 9: mixed-VM I/O (paper: baseline ~8 ms jitter, "
        "micro-sliced ~0; bandwidth recovers)",
    )
