"""Figure 9 — I/O performance of mixed-behaviour VMs.

VM-1 hosts iPerf *and* lookbusy on one vCPU; VM-2 hosts lookbusy; both
vCPUs are pinned to the same pCPU. Xen's BOOST cannot fire (the vCPU is
always runnable), so in the baseline vIRQ handling waits out the
co-runner's slices. The micro-sliced scheme migrates the vIRQ recipient
onto a micro-sliced core at relay time.

Reproduction targets (paper): TCP and UDP bandwidth improve markedly
under the micro-sliced scheme; jitter collapses from ~8 ms to ~0.
"""

from ..metrics.report import render_table
from ..runner import SimJob, baseline_policy, execute, static_policy
from . import common

MODES = ("tcp", "udp")

CONFIGS = ("solo", "baseline", "microsliced")


def plan(seed=42, scale_override=None, modes=MODES):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.IO_DURATION, scale_override)
    jobs = []
    for mode in modes:
        jobs.append(
            SimJob(
                tag="%s:solo" % mode,
                scenario="solo_io",
                scenario_kwargs={"mode": mode},
                policy=baseline_policy(),
                seed=seed,
                duration_ns=duration,
                warmup_ns=warmup,
            )
        )
        for label, policy in (("baseline", baseline_policy()), ("microsliced", static_policy(1))):
            jobs.append(
                SimJob(
                    tag="%s:%s" % (mode, label),
                    scenario="mixed_io",
                    scenario_kwargs={"mode": mode},
                    policy=policy,
                    seed=seed,
                    duration_ns=duration,
                    warmup_ns=warmup,
                )
            )
    return jobs


def reduce(results):
    out = {}
    for tag, res in results.items():
        mode, label = tag.rsplit(":", 1)
        out.setdefault(mode, {})[label] = res.workload("iperf").extra
    return out


def run(seed=42, scale_override=None, modes=MODES):
    return reduce(execute(plan(seed=seed, scale_override=scale_override, modes=modes)))


def format_result(results):
    rows = []
    for mode, configs in results.items():
        for label in CONFIGS:
            io = configs[label]
            rows.append(
                [
                    mode.upper(),
                    label,
                    "%.0f" % io["throughput_mbps"],
                    "%.4f" % io["jitter_ms"],
                    io["dropped"],
                ]
            )
    return render_table(
        ["mode", "config", "bandwidth (Mbps)", "jitter (ms)", "drops"],
        rows,
        title="Figure 9: mixed-VM I/O (paper: baseline ~8 ms jitter, "
        "micro-sliced ~0; bandwidth recovers)",
    )
