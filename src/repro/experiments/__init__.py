"""Experiment harnesses: scenario builders plus one module per paper
table and figure (see :mod:`repro.experiments.registry`)."""

from . import ablations, common, registry
from .results import RunResult, WorkloadResult
from .scenarios import (
    Scenario,
    System,
    VmSpec,
    WorkloadSpec,
    corun_scenario,
    mixed_io_scenario,
    solo_io_scenario,
    solo_scenario,
)

__all__ = [
    "RunResult",
    "Scenario",
    "System",
    "VmSpec",
    "WorkloadResult",
    "WorkloadSpec",
    "ablations",
    "common",
    "corun_scenario",
    "mixed_io_scenario",
    "registry",
    "solo_io_scenario",
    "solo_scenario",
]
