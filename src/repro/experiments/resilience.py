"""Resilience experiment — graceful degradation under fault injection.

Runs the Figure-7 co-run configuration (target workload + swaptions,
dynamic micro-slicing) once healthy and once under every built-in fault
plan, then reports how far each fault degrades the workload and what
the degradation machinery did about it (fallback hits, resends, forced
acks, clamps). Every faulted run must still pass the invariant checker;
a violation fails the experiment rather than producing a quietly
nonsensical table.
"""

from ..faults import builtin_plans, make_builtin
from ..hypervisor.stats import YIELD_CAUSES
from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

#: The healthy reference column.
HEALTHY = "healthy"

#: Target workload: dedup is the paper's most IPI-intensive co-run
#: (TLB-shootdown heavy), which exercises every IPI fault path.
WORKLOAD = "dedup"


def plan(seed=42, scale_override=None, workload=WORKLOAD, fault_plans=None):
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.DYNAMIC_DURATION, scale_override)
    horizon = warmup + duration
    names = list(fault_plans) if fault_plans is not None else builtin_plans()
    jobs = [
        SimJob(
            tag=HEALTHY,
            scenario="corun",
            scenario_kwargs={"workload_kind": workload},
            policy=common.scheme_policy("dynamic"),
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        )
    ]
    for name in names:
        jobs.append(
            SimJob(
                tag=name,
                scenario="corun",
                scenario_kwargs={"workload_kind": workload},
                policy=common.scheme_policy("dynamic"),
                seed=seed,
                duration_ns=duration,
                warmup_ns=warmup,
                faults=make_builtin(name, horizon).to_dict(),
            )
        )
    return jobs


def reduce(results):
    healthy_rate = results[HEALTHY].workload(tag_workload(results[HEALTHY])).rate
    out = {}
    for tag, res in results.items():
        causes = res.yields_by_cause("vm1")
        digest = res.faults or {}
        rate = res.workload(tag_workload(res)).rate
        out[tag] = {
            "rate": rate,
            "vs_healthy": rate / healthy_rate if healthy_rate else 0.0,
            "yields": sum(causes.get(c, 0) for c in YIELD_CAUSES),
            "counters": digest.get("counters", {}),
            "detector": digest.get("detector", {}),
            "controller": digest.get("controller", {}),
            "violations": digest.get("invariant_violations", []),
        }
    return out


def tag_workload(res):
    """The vm1 target-workload key of a result (robust to renames)."""
    for key in res.workloads:
        if key.startswith("vm1:") and not key.endswith("swaptions"):
            return key
    raise KeyError("no vm1 target workload in %r" % sorted(res.workloads))


def run(seed=42, scale_override=None, workload=WORKLOAD, fault_plans=None):
    return reduce(
        execute(
            plan(
                seed=seed,
                scale_override=scale_override,
                workload=workload,
                fault_plans=fault_plans,
            )
        )
    )


def format_result(results):
    rows = []
    order = [HEALTHY] + sorted(tag for tag in results if tag != HEALTHY)
    for tag in order:
        entry = results[tag]
        counters = entry["counters"]
        note = ", ".join(
            "%s=%d" % (key, counters[key])
            for key in sorted(counters)
            if not key.startswith(("injected_", "recovered_"))
        )
        rows.append(
            [
                tag,
                "%.1f" % entry["rate"],
                "%.2f" % entry["vs_healthy"],
                entry["yields"],
                len(entry["violations"]),
                note or "-",
            ]
        )
    return render_table(
        ["fault plan", "rate/s", "vs healthy", "yields", "violations", "degradation activity"],
        rows,
        title="Resilience: %s co-run (dynamic) under built-in fault plans" % WORKLOAD,
    )
