"""Table 4a — spinlock waiting time (µs) in gmake, solo vs co-run.

Paper values (lockstat, average wait in µs):

==============  =====  =========
component       solo   co-run
==============  =====  =========
Page reclaim    1.03   420.13
Page allocator  3.42   1,053.26
Dentry          2.93   1,298.87
Runqueue        1.22   256.07
==============  =====  =========

The reproduction target: microsecond-scale waits solo, orders of
magnitude higher under consolidation (lock-holder preemption).
"""

from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

COMPONENTS = ("page_reclaim", "page_alloc", "dentry", "runqueue")

PAPER = {
    "page_reclaim": (1.03, 420.13),
    "page_alloc": (3.42, 1053.26),
    "dentry": (2.93, 1298.87),
    "runqueue": (1.22, 256.07),
}


def plan(seed=42, scale_override=None):
    warmup = common.warmup(scale_override)
    return [
        SimJob(
            tag="solo",
            scenario="solo",
            scenario_kwargs={"workload_kind": "gmake"},
            seed=seed,
            duration_ns=common.scaled(common.SOLO_DURATION, scale_override),
            warmup_ns=warmup,
        ),
        SimJob(
            tag="corun",
            scenario="corun",
            scenario_kwargs={"workload_kind": "gmake"},
            seed=seed,
            duration_ns=common.scaled(common.CORUN_DURATION, scale_override),
            warmup_ns=warmup,
        ),
    ]


def reduce(results):
    solo, corun = results["solo"], results["corun"]
    out = {}
    for component in COMPONENTS:
        solo_stat = solo.lockstats["vm1"].get(component)
        corun_stat = corun.lockstats["vm1"].get(component)
        out[component] = {
            "solo_us": (solo_stat["mean"] / 1000.0) if solo_stat else 0.0,
            "corun_us": (corun_stat["mean"] / 1000.0) if corun_stat else 0.0,
            "solo_count": solo_stat["count"] if solo_stat else 0,
            "corun_count": corun_stat["count"] if corun_stat else 0,
        }
    return out


def run(seed=42, scale_override=None):
    return reduce(execute(plan(seed=seed, scale_override=scale_override)))


def format_result(results):
    rows = []
    for component in COMPONENTS:
        entry = results[component]
        paper_solo, paper_corun = PAPER[component]
        rows.append(
            [
                component,
                "%.2f" % entry["solo_us"],
                "%.2f" % entry["corun_us"],
                "%.2f / %.2f" % (paper_solo, paper_corun),
            ]
        )
    return render_table(
        ["component", "solo wait (us)", "co-run wait (us)", "paper solo/co-run"],
        rows,
        title="Table 4a: gmake spinlock waiting time",
    )
