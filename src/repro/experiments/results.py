"""Result collection for experiment runs."""

import copy


def _jsonable(value):
    """Recursively normalize a result payload to JSON-native types
    (tuples become lists) so that a cached round-trip through JSON is
    bit-identical to the in-memory value."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class WorkloadResult:
    """Progress + workload-specific extras for one installed workload."""

    def __init__(self, key, progress, rate, extra):
        self.key = key
        self.progress = progress
        self.rate = rate
        self.extra = extra

    def __repr__(self):
        return "<WorkloadResult %s rate=%.1f/s>" % (self.key, self.rate)


class RunResult:
    """Everything an experiment needs from one simulation run."""

    def __init__(self, scenario_name, duration_ns):
        self.scenario_name = scenario_name
        self.duration_ns = duration_ns
        self.workloads = {}
        self.hv_counters = {}
        self.domain_yields = {}
        self.domain_counters = {}
        self.lockstats = {}
        self.tlb_stats = {}
        self.micro_cores = 0
        self.utilization = 0.0
        self.adaptive_decisions = []
        self.runstates = {}      # domain -> {vcpu: runstate snapshot}
        self.histograms = {}     # name -> histogram snapshot
        self._trace = []         # exported trace records (when tracing)
        self._trace_pending = None   # raw record tuples awaiting export
        #: Fault-injection digest + invariant report; None for healthy
        #: runs (and absent from to_dict, keeping them byte-identical).
        self.faults = None

    @property
    def trace(self):
        """Exported trace records (flat dicts). Materialized lazily
        from the raw record tuples snapshotted at collect time, so a
        traced run only pays the export cost when something actually
        reads the trace (serialization, analyze) — not inside the
        simulation wall-clock being measured."""
        pending = self._trace_pending
        if pending is not None:
            from ..sim.trace import export_records

            self._trace_pending = None
            self._trace = export_records(pending)
        return self._trace

    @trace.setter
    def trace(self, value):
        self._trace_pending = None
        self._trace = value

    @classmethod
    def collect(cls, system, duration_ns):
        hv = system.hv
        result = cls(system.scenario.name, duration_ns)
        for key, workload in system.workloads.items():
            result.workloads[key] = WorkloadResult(
                key,
                workload.progress(),
                workload.rate(duration_ns),
                workload.extra_results(),
            )
        result.hv_counters = hv.stats.counters.as_dict()
        for domain in hv.domains:
            result.domain_yields[domain.name] = hv.stats.yields_by_cause(domain)
            result.domain_counters[domain.name] = domain.counters.as_dict()
            result.lockstats[domain.name] = domain.kernel.lockstat.snapshot()
            result.tlb_stats[domain.name] = domain.kernel.tlb.sync_latency.snapshot()
        result.micro_cores = len(hv.micro_pool)
        result.utilization = hv.utilization(duration_ns)
        controller = getattr(hv.policy, "controller", None)
        if controller is not None:
            result.adaptive_decisions = list(controller.decisions)
        now = hv.sim.now
        for domain in hv.domains:
            result.runstates[domain.name] = {
                vcpu.name: vcpu.runstate.snapshot(now) for vcpu in domain.vcpus
            }
        result.histograms = hv.histograms.snapshot()
        tracer = system.tracer
        if tracer is not None and tracer.enabled:
            tracer.record_meta(
                "meta",
                scenario=system.scenario.name,
                duration_ns=duration_ns,
                pcpus=len(hv.pcpus),
                domains=[d.name for d in hv.domains],
            )
            for domain in hv.domains:
                for vcpu in domain.vcpus:
                    snap = vcpu.runstate.snapshot(now)
                    tracer.record_meta(
                        "runstate_final",
                        vcpu=vcpu.name,
                        domain=domain.name,
                        running=snap["running"],
                        runnable=snap["runnable"],
                        blocked=snap["blocked"],
                        offline=snap["offline"],
                        elapsed=snap["elapsed"],
                    )
            # Snapshot the raw tuples (cheap: one list of refs); the
            # trace property exports them on first access.
            result._trace_pending = list(tracer.records)
        injector = hv.faults
        if injector is not None:
            from ..faults.invariants import check_system

            digest = injector.summary()
            digest["invariant_violations"] = check_system(system)
            result.faults = digest
        return result

    # ------------------------------------------------------------------
    # serialization (used by the parallel runner and the result cache)
    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-serializable snapshot of every collected field. The
        ``faults`` key exists only for faulted runs, so healthy payloads
        are byte-identical to what they were before fault injection."""
        payload = {
            "scenario_name": self.scenario_name,
            "duration_ns": self.duration_ns,
            "workloads": {
                key: {
                    "progress": workload.progress,
                    "rate": workload.rate,
                    "extra": _jsonable(workload.extra),
                }
                for key, workload in self.workloads.items()
            },
            "hv_counters": _jsonable(self.hv_counters),
            "domain_yields": _jsonable(self.domain_yields),
            "domain_counters": _jsonable(self.domain_counters),
            "lockstats": _jsonable(self.lockstats),
            "tlb_stats": _jsonable(self.tlb_stats),
            "micro_cores": self.micro_cores,
            "utilization": self.utilization,
            "adaptive_decisions": _jsonable(self.adaptive_decisions),
            "runstates": _jsonable(self.runstates),
            "histograms": _jsonable(self.histograms),
            "trace": _jsonable(self.trace),
        }
        if self.faults is not None:
            payload["faults"] = _jsonable(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a result from :meth:`to_dict` output. The payload is
        deep-copied so several hydrated results never share state (some
        reducers annotate the nested dicts in place)."""
        payload = copy.deepcopy(payload)
        result = cls(payload["scenario_name"], payload["duration_ns"])
        result.workloads = {
            key: WorkloadResult(key, entry["progress"], entry["rate"], entry["extra"])
            for key, entry in payload["workloads"].items()
        }
        result.hv_counters = payload["hv_counters"]
        result.domain_yields = payload["domain_yields"]
        result.domain_counters = payload["domain_counters"]
        result.lockstats = payload["lockstats"]
        result.tlb_stats = payload["tlb_stats"]
        result.micro_cores = payload["micro_cores"]
        result.utilization = payload["utilization"]
        result.adaptive_decisions = payload["adaptive_decisions"]
        result.runstates = payload.get("runstates", {})
        result.histograms = payload.get("histograms", {})
        result.trace = payload.get("trace", [])
        result.faults = payload.get("faults")
        return result

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def workload(self, key):
        """Find a workload result by exact key or unique suffix."""
        if key in self.workloads:
            return self.workloads[key]
        matches = [w for k, w in self.workloads.items() if k.endswith(key)]
        if len(matches) == 1:
            return matches[0]
        raise KeyError("workload %r not found (have: %s)" % (key, sorted(self.workloads)))

    def rate(self, key):
        return self.workload(key).rate

    def total_yields(self, domain=None):
        if domain is None:
            return self.hv_counters.get("yield", 0)
        return self.domain_counters.get(domain, {}).get("yield", 0)

    def yields_by_cause(self, domain):
        return self.domain_yields.get(domain, {})

    def steal_time(self, domain):
        """Total runnable-but-not-running ns across the domain's vCPUs
        (the Xen runstate notion of steal time)."""
        return sum(
            snap.get("runnable", 0) + snap.get("offline", 0)
            for snap in self.runstates.get(domain, {}).values()
        )
