"""Figure 4 — normalized execution time vs number of micro-sliced
cores (gmake, memclone, dedup, vips, each co-run with swaptions).

Paper shapes to reproduce:

* gmake / memclone: one micro-sliced core already yields a large
  improvement; more cores add little (and eventually cost capacity);
* dedup / vips (TLB-shootdown bound): a *single* micro-sliced core is
  counter-productive; two-three cores give the best result (paper:
  +49% / +17% combined throughput at three cores);
* swaptions (the co-runner) degrades mildly as cores are removed from
  the normal pool.
"""

from ..core.policy import PolicySpec
from ..metrics.report import render_table
from . import common
from .scenarios import corun_scenario

WORKLOADS = ("gmake", "memclone", "dedup", "vips")
DEFAULT_CORE_COUNTS = (0, 1, 2, 3, 4, 5, 6)


def run(seed=42, scale_override=None, workloads=WORKLOADS, core_counts=DEFAULT_CORE_COUNTS):
    """Returns ``{workload: {cores: {"target": norm_time, "corunner":
    norm_time, "target_rate": r, "corunner_rate": r}}}`` where
    normalized execution time is relative to the 0-core baseline."""
    _w = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    results = {}
    for kind in workloads:
        per_cores = {}
        base_target = base_corunner = None
        for cores in core_counts:
            policy = PolicySpec.baseline() if cores == 0 else PolicySpec.static(cores)
            res = corun_scenario(kind, policy=policy, seed=seed).build().run(duration, warmup_ns=_w)
            target_rate = res.rate(kind)
            corunner_rate = res.rate("swaptions")
            if cores == 0:
                base_target, base_corunner = target_rate, corunner_rate
            per_cores[cores] = {
                "target_rate": target_rate,
                "corunner_rate": corunner_rate,
                "target": common.normalized_time(base_target, target_rate),
                "corunner": common.normalized_time(base_corunner, corunner_rate),
            }
        results[kind] = per_cores
    return results


def best_core_count(per_cores):
    """The core count minimising the target's normalized time."""
    candidates = [(entry["target"], cores) for cores, entry in per_cores.items() if cores > 0]
    return min(candidates)[1] if candidates else 0


def format_result(results):
    core_counts = sorted(next(iter(results.values())))
    headers = ["workload", "series"] + ["%d cores" % c for c in core_counts]
    rows = []
    for kind, per_cores in results.items():
        rows.append(
            [kind, "norm. time"]
            + ["%.2f" % per_cores[c]["target"] for c in core_counts]
        )
        rows.append(
            ["(swaptions)", "norm. time"]
            + ["%.2f" % per_cores[c]["corunner"] for c in core_counts]
        )
    return render_table(
        headers,
        rows,
        title="Figure 4: normalized execution time vs #micro-sliced cores "
        "(lower is better; 0 cores = baseline)",
    )
