"""Figure 4 — normalized execution time vs number of micro-sliced
cores (gmake, memclone, dedup, vips, each co-run with swaptions).

Paper shapes to reproduce:

* gmake / memclone: one micro-sliced core already yields a large
  improvement; more cores add little (and eventually cost capacity);
* dedup / vips (TLB-shootdown bound): a *single* micro-sliced core is
  counter-productive; two-three cores give the best result (paper:
  +49% / +17% combined throughput at three cores);
* swaptions (the co-runner) degrades mildly as cores are removed from
  the normal pool.
"""

from ..metrics.report import render_table
from ..runner import SimJob, baseline_policy, execute, static_policy
from . import common

WORKLOADS = ("gmake", "memclone", "dedup", "vips")
DEFAULT_CORE_COUNTS = (0, 1, 2, 3, 4, 5, 6)


def plan(seed=42, scale_override=None, workloads=WORKLOADS, core_counts=DEFAULT_CORE_COUNTS):
    """One co-run job per (workload, core count) point."""
    warmup = common.warmup(scale_override)
    duration = common.scaled(common.CORUN_DURATION, scale_override)
    return [
        SimJob(
            tag="%s:%d" % (kind, cores),
            scenario="corun",
            scenario_kwargs={"workload_kind": kind},
            policy=baseline_policy() if cores == 0 else static_policy(cores),
            seed=seed,
            duration_ns=duration,
            warmup_ns=warmup,
        )
        for kind in workloads
        for cores in core_counts
    ]


def reduce(results):
    """Fold ``{tag: RunResult}`` into the historical ``run()`` shape.

    Order-independent: the 0-core baselines are collected in a first
    pass so the result does not depend on the executor returning jobs
    in plan order.
    """
    parsed = []
    bases = {}
    for tag, res in results.items():
        kind, cores_text = tag.rsplit(":", 1)
        cores = int(cores_text)
        target_rate = res.rate(kind)
        corunner_rate = res.rate("swaptions")
        parsed.append((kind, cores, target_rate, corunner_rate))
        if cores == 0:
            bases[kind] = (target_rate, corunner_rate)
    out = {}
    for kind, cores, target_rate, corunner_rate in parsed:
        base_target, base_corunner = bases.get(kind, (None, None))
        out.setdefault(kind, {})[cores] = {
            "target_rate": target_rate,
            "corunner_rate": corunner_rate,
            "target": common.normalized_time(base_target, target_rate),
            "corunner": common.normalized_time(base_corunner, corunner_rate),
        }
    return out


def run(seed=42, scale_override=None, workloads=WORKLOADS, core_counts=DEFAULT_CORE_COUNTS):
    """Returns ``{workload: {cores: {"target": norm_time, "corunner":
    norm_time, "target_rate": r, "corunner_rate": r}}}`` where
    normalized execution time is relative to the 0-core baseline."""
    return reduce(
        execute(
            plan(
                seed=seed,
                scale_override=scale_override,
                workloads=workloads,
                core_counts=core_counts,
            )
        )
    )


def best_core_count(per_cores):
    """The core count minimising the target's normalized time."""
    candidates = [(entry["target"], cores) for cores, entry in per_cores.items() if cores > 0]
    return min(candidates)[1] if candidates else 0


def format_result(results):
    core_counts = sorted(next(iter(results.values())))
    headers = ["workload", "series"] + ["%d cores" % c for c in core_counts]
    rows = []
    for kind, per_cores in results.items():
        rows.append(
            [kind, "norm. time"]
            + ["%.2f" % per_cores[c]["target"] for c in core_counts]
        )
        rows.append(
            ["(swaptions)", "norm. time"]
            + ["%.2f" % per_cores[c]["corunner"] for c in core_counts]
        )
    return render_table(
        headers,
        rows,
        title="Figure 4: normalized execution time vs #micro-sliced cores "
        "(lower is better; 0 cores = baseline)",
    )
