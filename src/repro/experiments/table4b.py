"""Table 4b — TLB synchronisation latency (µs), solo vs co-run.

Paper values:

=====  =======  =====  ====  =======
wl     config   avg    min   max
=====  =======  =====  ====  =======
dedup  solo     28     5     1,927
dedup  co-run   6,354  7     74,915
vips   solo     55     5     2,052
vips   co-run   14,928 17    121,548
=====  =======  =====  ====  =======

Reproduction target: tens of µs solo, milliseconds under co-run.
"""

from ..metrics.report import render_table
from ..runner import SimJob, execute
from . import common

WORKLOADS = ("dedup", "vips")

PAPER = {
    "dedup": {"solo": (28, 5, 1927), "corun": (6354, 7, 74915)},
    "vips": {"solo": (55, 5, 2052), "corun": (14928, 17, 121548)},
}


def _stat_us(stat):
    return {
        "avg": stat["mean"] / 1000.0,
        "min": (stat["min"] or 0) / 1000.0,
        "max": (stat["max"] or 0) / 1000.0,
        "count": stat["count"],
    }


def plan(seed=42, scale_override=None, workloads=WORKLOADS):
    warmup = common.warmup(scale_override)
    solo_t = common.scaled(common.SOLO_DURATION, scale_override)
    corun_t = common.scaled(common.CORUN_DURATION, scale_override)
    jobs = []
    for kind in workloads:
        jobs.append(
            SimJob(
                tag="%s:solo" % kind,
                scenario="solo",
                scenario_kwargs={"workload_kind": kind},
                seed=seed,
                duration_ns=solo_t,
                warmup_ns=warmup,
            )
        )
        jobs.append(
            SimJob(
                tag="%s:corun" % kind,
                scenario="corun",
                scenario_kwargs={"workload_kind": kind},
                seed=seed,
                duration_ns=corun_t,
                warmup_ns=warmup,
            )
        )
    return jobs


def reduce(results):
    out = {}
    for tag, res in results.items():
        kind, config = tag.rsplit(":", 1)
        out.setdefault(kind, {})[config] = _stat_us(res.tlb_stats["vm1"])
    return out


def run(seed=42, scale_override=None):
    return reduce(execute(plan(seed=seed, scale_override=scale_override)))


def format_result(results):
    rows = []
    for kind in WORKLOADS:
        for config in ("solo", "corun"):
            entry = results[kind][config]
            paper = PAPER[kind]["solo" if config == "solo" else "corun"]
            rows.append(
                [
                    kind,
                    config,
                    "%.0f" % entry["avg"],
                    "%.0f" % entry["min"],
                    "%.0f" % entry["max"],
                    "%d/%d/%d" % paper,
                ]
            )
    return render_table(
        ["workload", "config", "avg (us)", "min", "max", "paper avg/min/max"],
        rows,
        title="Table 4b: TLB synchronisation latency",
    )
