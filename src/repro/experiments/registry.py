"""Name → experiment module registry (used by the CLI and the bench
harness)."""

from ..errors import ConfigError, FaultError
from .. import runner
from ..sched import registry as sched_registry
from . import (
    baselines,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fleet,
    resilience,
    table1,
    table2,
    table4a,
    table4b,
    table4c,
)

_EXPERIMENTS = {
    "baselines": baselines,
    "table1": table1,
    "table2": table2,
    "table4a": table4a,
    "table4b": table4b,
    "table4c": table4c,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fleet": fleet,
    "resilience": resilience,
}


def is_driver(module):
    """True for experiments that orchestrate their own job waves
    (``drive()``) instead of emitting a static ``plan()`` — their job
    set depends on intermediate results, so it cannot be enumerated up
    front (and is therefore absent from the payload manifest)."""
    return not hasattr(module, "plan")


def available():
    return sorted(_EXPERIMENTS)


def get(name):
    module = _EXPERIMENTS.get(name)
    if module is None:
        raise ConfigError(
            "unknown experiment %r (available: %s)" % (name, ", ".join(available()))
        )
    return module


def run(
    name,
    workers=None,
    cache=None,
    trace=None,
    trace_out=None,
    faults=None,
    scheduler=None,
    progress=None,
    **kwargs
):
    """Run one experiment; returns ``(results, formatted_text)``.

    ``workers``/``cache`` pass through to :func:`repro.runner.execute`
    (None = environment defaults); every experiment module exposes
    ``plan()``/``reduce()``, so the registry drives the shared executor
    rather than each module's serial ``run()``.

    ``trace`` (a ``{"kinds": ...}`` request dict) turns on structured
    tracing for every job in the plan; ``trace_out`` writes the combined
    trace — records labelled with their job tag — to a JSONL file that
    ``repro analyze`` consumes. Trace payloads travel inside the result
    dicts, so serial, parallel, and cache-replay runs export
    byte-identical files.

    ``faults`` (a built-in plan name, a plan-JSON path, a plan dict, or
    a :class:`~repro.faults.FaultPlan`) applies one fault plan to every
    job in the plan — built-in names are re-resolved against each job's
    own warmup+duration horizon. After a faulted run, any invariant
    violation raises :class:`~repro.errors.FaultError` carrying the full
    per-job report.

    ``scheduler`` (a repro.sched backend name) re-runs the experiment's
    whole plan under that normal-pool backend — jobs that already pin a
    backend (e.g. table1's ``fixed_uslice``, the ``baselines`` matrix)
    keep their own. The name is validated up front so an unknown backend
    fails before any simulation runs.
    """
    outcome = run_many(
        [name],
        workers=workers,
        cache=cache,
        trace=trace,
        trace_out=trace_out,
        faults=faults,
        scheduler=scheduler,
        progress=progress,
        **kwargs
    )
    return outcome[name]


def run_many(
    names,
    workers=None,
    cache=None,
    trace=None,
    trace_out=None,
    faults=None,
    scheduler=None,
    progress=None,
    **kwargs
):
    """Run a batch of experiments over **one** worker pool and **one**
    cache-probe pass; returns ``{name: (results, formatted_text)}``.

    All plans execute through :func:`repro.runner.execute_many`, so a
    physical simulation shared by several experiments (e.g. the seed-42
    gmake co-run baseline in fig4, table2, and table4a) is simulated
    once for the whole batch, and the persistent worker pool spins up a
    single time. ``trace_out`` requires a single experiment (a combined
    trace file spanning experiments would conflate job tags).

    ``progress`` is a ``callback(event, tag, done, total)`` hook fed by
    the executor's live job stream (cache hits, worker pickups,
    completions) — ``repro run --progress`` plugs its status-line
    renderer in here.
    """
    names = list(dict.fromkeys(names))  # dedupe, keep order
    if trace_out is not None and len(names) != 1:
        raise ConfigError("--trace-out requires exactly one experiment")
    modules = {name: get(name) for name in names}
    drivers = [name for name in names if is_driver(modules[name])]
    if drivers and (trace is not None or trace_out is not None or faults is not None):
        # A driver's jobs are born mid-run from its own feedback loop;
        # cross-cutting per-job rewrites would silently change its
        # control flow, so refuse instead of half-applying.
        raise ConfigError(
            "--trace/--trace-out/--faults are not supported by driver "
            "experiment(s): %s" % ", ".join(drivers)
        )
    if scheduler is not None:
        sched_registry.get(scheduler)  # raises ConfigError on unknown name
    plans = {}
    for name, module in modules.items():
        if is_driver(module):
            continue
        jobs = module.plan(**kwargs)
        _prepare_plan(jobs, trace=trace, faults=faults, scheduler=scheduler)
        plans[name] = jobs
    by_plan = {}
    if plans:
        by_plan = runner.execute_many(
            plans, workers=workers, cache=cache, progress=progress
        )
    outcome = {}
    for name in names:
        module = modules[name]
        if is_driver(module):
            results = module.drive(
                workers=workers,
                cache=cache,
                progress=progress,
                scheduler=scheduler,
                **kwargs
            )
            outcome[name] = (results, module.format_result(results))
            continue
        by_tag = by_plan[name]
        if trace_out is not None:
            from ..sim.trace import write_jsonl

            write_jsonl(
                trace_out, {job.tag: by_tag[job.tag].trace for job in plans[name]}
            )
        _check_fault_invariants(by_tag)
        results = module.reduce(by_tag)
        outcome[name] = (results, module.format_result(results))
    return outcome


def _prepare_plan(jobs, trace=None, faults=None, scheduler=None):
    """Apply the cross-cutting CLI knobs to every job in a plan."""
    if scheduler is not None:
        sched_registry.get(scheduler)  # raises ConfigError on unknown name
        for job in jobs:
            if scheduler != "credit" and "scheduler" not in job.overrides:
                job.overrides["scheduler"] = scheduler
    if trace is not None:
        for job in jobs:
            job.trace = dict(trace)
    if faults is not None:
        from ..faults import resolve_plan

        for job in jobs:
            if job.faults is None:
                horizon = job.warmup_ns + job.duration_ns
                job.faults = resolve_plan(faults, horizon).to_dict()


def _check_fault_invariants(by_tag):
    """Fail loudly when any faulted job's invariant check found
    violations — a degraded result is fine, a nonsensical one is not."""
    broken = []
    for tag in sorted(by_tag):
        digest = by_tag[tag].faults
        if digest and digest.get("invariant_violations"):
            for violation in digest["invariant_violations"]:
                broken.append("%s: %s" % (tag, violation))
    if broken:
        raise FaultError(
            "invariant check failed for %d faulted job(s):\n  %s"
            % (len(broken), "\n  ".join(broken))
        )
