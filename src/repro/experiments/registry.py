"""Name → experiment module registry (used by the CLI and the bench
harness)."""

from ..errors import ConfigError
from .. import runner
from . import fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, table4a, table4b, table4c

_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table4a": table4a,
    "table4b": table4b,
    "table4c": table4c,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}


def available():
    return sorted(_EXPERIMENTS)


def get(name):
    module = _EXPERIMENTS.get(name)
    if module is None:
        raise ConfigError(
            "unknown experiment %r (available: %s)" % (name, ", ".join(available()))
        )
    return module


def run(name, workers=None, cache=None, trace=None, trace_out=None, **kwargs):
    """Run one experiment; returns ``(results, formatted_text)``.

    ``workers``/``cache`` pass through to :func:`repro.runner.execute`
    (None = environment defaults); every experiment module exposes
    ``plan()``/``reduce()``, so the registry drives the shared executor
    rather than each module's serial ``run()``.

    ``trace`` (a ``{"kinds": ...}`` request dict) turns on structured
    tracing for every job in the plan; ``trace_out`` writes the combined
    trace — records labelled with their job tag — to a JSONL file that
    ``repro analyze`` consumes. Trace payloads travel inside the result
    dicts, so serial, parallel, and cache-replay runs export
    byte-identical files.
    """
    module = get(name)
    jobs = module.plan(**kwargs)
    if trace is not None:
        for job in jobs:
            job.trace = dict(trace)
    by_tag = runner.execute(jobs, workers=workers, cache=cache)
    if trace_out is not None:
        from ..sim.trace import write_jsonl

        write_jsonl(trace_out, {job.tag: by_tag[job.tag].trace for job in jobs})
    results = module.reduce(by_tag)
    return results, module.format_result(results)
