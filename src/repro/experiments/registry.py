"""Name → experiment module registry (used by the CLI and the bench
harness)."""

from ..errors import ConfigError
from .. import runner
from . import fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, table4a, table4b, table4c

_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table4a": table4a,
    "table4b": table4b,
    "table4c": table4c,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}


def available():
    return sorted(_EXPERIMENTS)


def get(name):
    module = _EXPERIMENTS.get(name)
    if module is None:
        raise ConfigError(
            "unknown experiment %r (available: %s)" % (name, ", ".join(available()))
        )
    return module


def run(name, workers=None, cache=None, **kwargs):
    """Run one experiment; returns ``(results, formatted_text)``.

    ``workers``/``cache`` pass through to :func:`repro.runner.execute`
    (None = environment defaults); every experiment module exposes
    ``plan()``/``reduce()``, so the registry drives the shared executor
    rather than each module's serial ``run()``.
    """
    module = get(name)
    results = module.reduce(runner.execute(module.plan(**kwargs), workers=workers, cache=cache))
    return results, module.format_result(results)
