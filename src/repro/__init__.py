"""repro — a simulation-based reproduction of "Accelerating Critical OS
Services in Virtualized Systems with Flexible Micro-sliced Cores"
(Ahn, Park, Heo, Huh — EuroSys 2018).

Public surface:

* :mod:`repro.sim` — discrete-event kernel;
* :mod:`repro.hw` — hardware models (topology, PLE, cache warmth, NIC);
* :mod:`repro.hypervisor` — Xen-credit-style hypervisor;
* :mod:`repro.guest` — guest kernel services (locks, TLB, IPIs, net);
* :mod:`repro.core` — the paper's contribution (detection, micro-sliced
  pool, Algorithm-1 adaptive sizing);
* :mod:`repro.workloads` — synthetic PARSEC/MOSBENCH/iPerf models;
* :mod:`repro.experiments` — scenario builders + per-table/figure
  harnesses.
"""

from .core.policy import PolicySpec
from .experiments.scenarios import (
    Scenario,
    corun_scenario,
    mixed_io_scenario,
    solo_io_scenario,
    solo_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "PolicySpec",
    "Scenario",
    "__version__",
    "corun_scenario",
    "mixed_io_scenario",
    "solo_io_scenario",
    "solo_scenario",
]
