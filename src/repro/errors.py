"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly or reached an
    inconsistent state (e.g. yielding a non-event from a process)."""


class ConfigError(ReproError):
    """A scenario, topology, or scheduler configuration is invalid."""


class SchedulerError(ReproError):
    """The hypervisor scheduler reached an inconsistent state."""


class GuestError(ReproError):
    """A guest-kernel model invariant was violated (e.g. releasing a
    spinlock the vCPU does not hold)."""


class WorkloadError(ReproError):
    """A workload model was configured or driven incorrectly."""


class SymbolTableError(ReproError):
    """A kernel symbol table could not be built, parsed, or queried."""


class TraceError(ReproError):
    """An exported trace file could not be read or parsed (truncated,
    malformed JSONL, or missing required record fields)."""


class WorkerError(ReproError):
    """A simulation worker process failed permanently: it crashed (and
    the bounded retry budget is exhausted) or raised inside
    :func:`~repro.runner.jobs.run_job`. Carries the job tag and, for an
    in-job exception, the worker-side traceback text."""


class FaultError(ReproError):
    """Raised by the fault-injection subsystem: an invalid fault plan,
    an injected failure surfacing to a caller (e.g. a refused cpupool
    move), or a post-run invariant violation."""


class DegradedModeWarning(Warning):
    """A layer lost one of its inputs under fault injection and switched
    to a degraded fallback (symbol-table miss heuristic, clamped
    adaptive decisions, forced IPI acknowledgements). A warning rather
    than an error: the run continues, with reduced fidelity."""
