"""Per-vCPU runstate accounting (steal-time measurement).

Mirrors Xen's ``VCPUOP_get_runstate_info`` / the platform-agnostic
steal-time lens: every vCPU's wall-clock is partitioned into

* ``running``  — on a pCPU;
* ``runnable`` — wants a pCPU but is preempted/queued (*stolen time*,
  the quantity every VTD pathology in the paper manifests as);
* ``blocked``  — halted idle or a parked lock waiter;
* ``offline``  — not schedulable (unused by current scenarios, kept for
  schema completeness).

The hypervisor updates the account on every state transition (the
``VCpu.state`` setter), so the books are exact by construction and obey
a conservation invariant: per vCPU, the state times sum to the elapsed
measurement window, and across the host they sum to ``window x #vCPUs``.
:func:`validate` checks it; the test suite and ``repro analyze`` both
call it.
"""

#: Accounted states, in report order.
STATES = ("running", "runnable", "blocked", "offline")


class RunstateAccount:
    """Time-in-state ledger for one vCPU."""

    __slots__ = ("times", "state", "since", "started")

    def __init__(self, now, state):
        self.times = {name: 0 for name in STATES}
        self.state = state
        self.since = now
        self.started = now

    def transition(self, now, new_state):
        """Close the current state's interval and enter ``new_state``."""
        self.times[self.state] += now - self.since
        self.state = new_state
        self.since = now

    def reset(self, now):
        """Zero the ledger (warmup boundary); the current state keeps
        accruing from ``now``."""
        for name in STATES:
            self.times[name] = 0
        self.since = now
        self.started = now

    def snapshot(self, now):
        """State times including the still-open interval, plus the
        window length — ``sum(states) == elapsed`` always holds."""
        snap = dict(self.times)
        snap[self.state] += now - self.since
        snap["elapsed"] = now - self.started
        return snap

    def stolen(self, now):
        """Steal time: ns spent runnable-but-not-running."""
        extra = now - self.since if self.state == "runnable" else 0
        return self.times["runnable"] + extra


def validate(snapshot):
    """Check one :meth:`RunstateAccount.snapshot` (or its JSON round
    trip) for conservation: state times must sum exactly to the elapsed
    window. Returns ``(ok, difference_ns)``."""
    total = sum(snapshot[name] for name in STATES)
    return total == snapshot["elapsed"], total - snapshot["elapsed"]


def validate_result(result):
    """Validate every vCPU snapshot in a
    :class:`~repro.experiments.results.RunResult`. Returns a list of
    ``(domain, vcpu, difference_ns)`` violations — empty means the
    invariant holds host-wide."""
    violations = []
    for domain, vcpus in sorted(result.runstates.items()):
        for vcpu, snap in sorted(vcpus.items()):
            ok, diff = validate(snap)
            if not ok:
                violations.append((domain, vcpu, diff))
    return violations


def steal_report(result):
    """Per-domain steal-time rollup from a result's runstate snapshots:
    ``{domain: {state: total_ns, ..., "elapsed": ns}}``."""
    report = {}
    for domain, vcpus in sorted(result.runstates.items()):
        rollup = {name: 0 for name in STATES}
        rollup["elapsed"] = 0
        for snap in vcpus.values():
            for name in STATES:
                rollup[name] += snap[name]
            rollup["elapsed"] += snap["elapsed"]
        report[domain] = rollup
    return report


def steal_fraction(rollup):
    """Steal share of one :func:`steal_report` rollup (or any dict with
    ``runnable``/``elapsed`` keys), as a percentage of elapsed time —
    the guest-visible contention signal the fleet's ``steal_aware``
    placement policy and the ``fleet.host.<i>.steal_pct`` telemetry
    gauges both consume."""
    elapsed = rollup["elapsed"]
    return 100.0 * rollup["runnable"] / elapsed if elapsed else 0.0
