"""``repro.obs.telemetry`` — runner-stack metrics registry and export.

PR 3 made the *simulated guest* observable; this module makes the
system that runs the experiments observable: the persistent worker
pool, the result cache, the cost model, and the per-job engine totals
all publish into one process-wide registry of named **counters**,
**gauges**, and deterministic log2 **histograms** (reusing
:class:`repro.metrics.histogram.Histogram`).

Design rules:

* **Telemetry never touches results.** Nothing here is read by the
  simulator; the registry is a write-only side channel, so enabling or
  disabling it cannot change a single RunResult byte (the payload
  manifest gate holds with telemetry on and off).
* **Wall-clock metrics are namespaced by suffix.** A metric whose name
  ends in ``_seconds`` (float seconds), ``_us`` (log2 histogram over
  integer microseconds), or ``_pct`` (percentages derived from wall
  time) is *wall-derived* and therefore varies between identical runs.
  Everything else — job counts, cache hits, crash counts, simulated
  event totals — is deterministic: two identical runs produce
  byte-identical ``dumps(include_wall=False)`` output (asserted by
  ``tests/test_telemetry.py``).
* **Worker snapshots merge losslessly.** Worker processes accumulate
  into their own registry and ship snapshot *deltas* back over the
  result pipe (piggybacked on the chunk result messages, epoch-tagged
  like the crash protocol); :meth:`Registry.merge` folds them in —
  counters add, histograms merge bucket-exactly, gauges keep the max
  so merge order cannot matter.
* **Export is dashboard-shaped.** :func:`render_prom` emits Prometheus
  text exposition format (``# TYPE`` comments, cumulative ``le``
  buckets, ``_sum``/``_count``) from a snapshot dict, ready for a
  future ``repro serve`` scrape endpoint; :func:`validate_prom` is a
  dependency-free line-grammar checker used by the tests and CI.

``REPRO_TELEMETRY=off`` turns every record call into a no-op (the
benchmark suite measures the difference on the corun job path).

The registry is in-process state; ``repro run`` persists its final
merged snapshot to ``<cache-dir>/meta/telemetry.json`` (overwrite, not
append, so identical runs leave identical files) and ``repro
telemetry`` renders that file long after the run exited.
"""

import json
import os
import re

from ..metrics.histogram import Histogram

ENV_TELEMETRY = "REPRO_TELEMETRY"

#: Snapshot file format version (bump on layout changes).
FORMAT = 1

#: Name suffixes that mark a metric as wall-clock-derived (excluded
#: from the determinism contract and from ``dumps(include_wall=False)``).
WALL_SUFFIXES = ("_seconds", "_us", "_pct")

_OFF_VALUES = ("off", "0", "false", "no", "disabled")

#: Characters legal in a metric name. Dots namespace subsystems
#: (``pool.jobs.completed``); ``|`` appears in cost-model feature
#: classes. Both are sanitised for Prometheus export.
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.|-]*$")


def env_enabled():
    """Whether ``REPRO_TELEMETRY`` asks for telemetry (default: on)."""
    return os.environ.get(ENV_TELEMETRY, "on").strip().lower() not in _OFF_VALUES


def is_wall(name):
    """Is ``name`` a wall-clock-derived (nondeterministic) metric?"""
    return name.endswith(WALL_SUFFIXES)


class Counter:
    """A monotonically increasing named value (int or float)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name, registry):
        self.name = name
        self.value = 0
        self._registry = registry

    def inc(self, amount=1):
        if self._registry.enabled:
            self.value += amount


class Gauge:
    """A named value that can move both ways (pool size, queue depth)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name, registry):
        self.name = name
        self.value = 0
        self._registry = registry

    def set(self, value):
        if self._registry.enabled:
            self.value = value

    def max(self, value):
        if self._registry.enabled and value > self.value:
            self.value = value


class Registry:
    """A process-wide set of named counters, gauges, and histograms.

    Metrics are created on first use and live for the process lifetime;
    handles are cached so hot callers pay one dict lookup at
    instrumentation-site setup, then one attribute store per event.
    """

    def __init__(self, enabled=None):
        self.enabled = env_enabled() if enabled is None else bool(enabled)
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- handle creation ----------------------------------------------
    def _check_name(self, name, kind_map):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % name)
        return kind_map.get(name)

    def counter(self, name):
        handle = self._check_name(name, self._counters)
        if handle is None:
            handle = self._counters[name] = Counter(name, self)
        return handle

    def gauge(self, name):
        handle = self._check_name(name, self._gauges)
        if handle is None:
            handle = self._gauges[name] = Gauge(name, self)
        return handle

    def histogram(self, name):
        handle = self._check_name(name, self._histograms)
        if handle is None:
            handle = self._histograms[name] = Histogram(name=name)
        return handle

    def observe(self, name, value):
        """Record ``value`` into histogram ``name`` (no-op when off)."""
        if self.enabled:
            self.histogram(name).record(value)

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self, include_wall=True):
        """JSON-native state: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` (plus a ``meta`` header). Zero-valued
        counters/gauges are included — a zero crash count is a
        statement, not noise."""
        keep = (lambda _name: True) if include_wall else (lambda name: not is_wall(name))
        return {
            "meta": {"format": FORMAT, "wall_suffixes": list(WALL_SUFFIXES)},
            "counters": {
                name: handle.value
                for name, handle in self._counters.items()
                if keep(name)
            },
            "gauges": {
                name: handle.value
                for name, handle in self._gauges.items()
                if keep(name)
            },
            "histograms": {
                # The standard Histogram snapshot plus the exact total,
                # so merges reconstruct sums without float round-trips.
                name: dict(hist.snapshot(), total=hist.total)
                for name, hist in self._histograms.items()
                if keep(name)
            },
        }

    def dumps(self, include_wall=True):
        """The snapshot as sorted-key JSON text (the canonical dump the
        determinism tests compare)."""
        return json.dumps(self.snapshot(include_wall), sort_keys=True, indent=2)

    def merge(self, snapshot):
        """Fold a snapshot dict (e.g. shipped back by a worker process)
        into this registry: counters add, histograms merge bucket
        counts exactly, gauges keep the maximum — all three are
        insensitive to merge order, so streaming worker completions in
        any order yields the same merged state."""
        if not isinstance(snapshot, dict):
            return
        for name, value in snapshot.get("counters", {}).items():
            if isinstance(value, (int, float)):
                self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            if isinstance(value, (int, float)):
                gauge = self.gauge(name)
                if value > gauge.value:
                    gauge.value = value
        for name, snap in snapshot.get("histograms", {}).items():
            if isinstance(snap, dict):
                self.histogram(name).merge(_histogram_from_snapshot(snap))

    def take_snapshot(self, include_wall=True):
        """Snapshot-and-reset: what the workers ship after each chunk so
        the parent merge sees *deltas*, never double counts."""
        snap = self.snapshot(include_wall)
        self.reset()
        return snap

    def reset(self):
        """Zero every metric (keeps the handles alive — cached handles
        at instrumentation sites stay valid)."""
        for handle in self._counters.values():
            handle.value = 0
        for handle in self._gauges.values():
            handle.value = 0
        for name, hist in self._histograms.items():
            self._histograms[name] = Histogram(name=name)


def _histogram_from_snapshot(snap):
    """Rebuild a mergeable :class:`Histogram` from its snapshot dict
    (the canonical inverse now lives on the class itself; the fleet
    layer uses the same path to merge per-host latency histograms)."""
    return Histogram.from_snapshot(snap)


# ----------------------------------------------------------------------
# the process-wide registry
# ----------------------------------------------------------------------
REGISTRY = Registry()


def counter(name):
    return REGISTRY.counter(name)


def gauge(name):
    return REGISTRY.gauge(name)


def histogram(name):
    return REGISTRY.histogram(name)


def observe(name, value):
    REGISTRY.observe(name, value)


def snapshot(include_wall=True):
    return REGISTRY.snapshot(include_wall)


def merge(snap):
    REGISTRY.merge(snap)


def reset():
    REGISTRY.reset()


def set_enabled(value):
    """Flip telemetry at runtime (tests and the overhead benchmark;
    normal use reads ``REPRO_TELEMETRY`` once at import)."""
    REGISTRY.enabled = bool(value)


# ----------------------------------------------------------------------
# persistence (so `repro telemetry` outlives the run process)
# ----------------------------------------------------------------------
def snapshot_path(cache_dir=None):
    """Where the last run's merged snapshot lives: ``meta/`` next to
    the result cache entries (the directory resolves independently of
    whether result caching is enabled)."""
    from ..runner import cache as result_cache  # lazy: avoids a cycle

    return result_cache.cache_dir(cache_dir) / "meta" / "telemetry.json"


def persist(cache_dir=None):
    """Write the registry's current snapshot (atomic tmp + rename,
    best-effort — telemetry must never fail a run). Overwrites: the
    file always describes exactly one process's runs, so identical
    processes leave identical files modulo wall metrics."""
    if not REGISTRY.enabled:
        return None
    path = snapshot_path(cache_dir)
    tmp = path.with_name("telemetry.json.tmp.%d" % os.getpid())
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(REGISTRY.dumps() + "\n", encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        return None
    return path


def load_persisted(cache_dir=None, path=None):
    """The last persisted snapshot dict, or ``None`` when no run has
    persisted one (or the file is unreadable)."""
    target = path if path is not None else snapshot_path(cache_dir)
    try:
        with open(target, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_PREFIX = "repro_"


def prom_name(name):
    """Sanitise a registry name into a Prometheus metric name:
    ``pool.jobs.completed`` → ``repro_pool_jobs_completed``."""
    cleaned = _PROM_INVALID.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return _PROM_PREFIX + cleaned


def render_prom(snap):
    """Render a snapshot dict as Prometheus text exposition format.

    Counters and gauges map directly; log2 histograms export as native
    Prometheus histograms with cumulative ``le`` buckets at the log2
    upper edges plus the mandatory ``+Inf`` bucket, ``_sum`` and
    ``_count`` samples. Families are emitted in sorted name order so
    the output is deterministic.
    """
    lines = []
    for name in sorted(snap.get("counters", {})):
        metric = prom_name(name)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _prom_value(snap["counters"][name])))
    for name in sorted(snap.get("gauges", {})):
        metric = prom_name(name)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _prom_value(snap["gauges"][name])))
    for name in sorted(snap.get("histograms", {})):
        hist = snap["histograms"][name]
        metric = prom_name(name)
        lines.append("# TYPE %s histogram" % metric)
        cumulative = 0
        for index, count in hist.get("buckets", []):
            cumulative += count
            upper = Histogram.bucket_bounds(index)[1]
            lines.append('%s_bucket{le="%d"} %d' % (metric, upper, cumulative))
        lines.append('%s_bucket{le="+Inf"} %d' % (metric, hist.get("count", 0)))
        total = hist.get("total")
        if total is None:
            total = hist.get("mean", 0.0) * hist.get("count", 0)
        lines.append("%s_sum %s" % (metric, _prom_value(total)))
        lines.append("%s_count %d" % (metric, hist.get("count", 0)))
    return "\n".join(lines) + "\n"


def _prom_value(value):
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return "%d" % int(value)


#: One exposition sample line: ``name{labels} value`` (no timestamp —
#: we never emit one).
_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*\})?"
    r" (?P<value>[+-]?(Inf|NaN|[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?))$"
)
_PROM_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$"
)


def validate_prom(text):
    """Check ``text`` against the Prometheus text exposition grammar
    (the useful subset: TYPE comments, samples, histogram structure).
    Returns a list of problem strings — empty means valid. No external
    dependencies; this is the checker the tests and CI run against
    ``repro telemetry --format prom`` output."""
    problems = []
    types = {}
    samples = {}  # family name -> [(labels, value)]
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue  # blank lines are tolerated by every real scraper
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            match = _PROM_TYPE_RE.match(line)
            if match is None:
                problems.append("line %d: malformed TYPE comment: %r" % (lineno, line))
                continue
            name = match.group("name")
            if name in types:
                problems.append("line %d: duplicate TYPE for %s" % (lineno, name))
            types[name] = match.group("type")
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = _PROM_SAMPLE_RE.match(line)
        if match is None:
            problems.append("line %d: malformed sample line: %r" % (lineno, line))
            continue
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            problems.append("line %d: sample %s has no preceding TYPE" % (lineno, name))
        samples.setdefault(family, []).append((name, match.group("labels"), match.group("value")))
    for family, declared in types.items():
        rows = samples.get(family, [])
        if declared != "histogram":
            continue
        buckets = [row for row in rows if row[0] == family + "_bucket"]
        if not any(row[1] and 'le="+Inf"' in row[1] for row in buckets):
            problems.append("histogram %s: missing le=\"+Inf\" bucket" % family)
        if not any(row[0] == family + "_sum" for row in rows):
            problems.append("histogram %s: missing _sum sample" % family)
        if not any(row[0] == family + "_count" for row in rows):
            problems.append("histogram %s: missing _count sample" % family)
        counts = [float(row[2]) for row in buckets]
        if counts != sorted(counts):
            problems.append("histogram %s: bucket counts are not cumulative" % family)
    return problems
