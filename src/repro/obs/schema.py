"""Trace record schema — the typed vocabulary of ``repro.obs``.

Every trace kind declares its field set here; :class:`repro.sim.trace.Tracer`
validates emits against it (unknown kinds are allowed for ad-hoc test
probes, but a known kind with the wrong fields is a programming error
worth failing loudly on). The schema doubles as the documentation the
``analyze`` tool and ``docs/observability.md`` are written against, in
the spirit of xentrace's fixed record formats.

Reserved top-level keys in the exported JSONL form: ``seq`` (per-tracer
monotonic sequence number), ``t`` (simulation time, ns), ``kind``, and
``job`` (added by multi-job exports). Field names below must never
collide with those.
"""

#: kind -> frozenset of required detail fields.
TRACE_SCHEMA = {
    # -- scheduling ----------------------------------------------------
    "deschedule": frozenset({"vcpu", "reason", "runtime_ns"}),
    "yield": frozenset({"vcpu", "domain", "cause"}),
    "sched_boost": frozenset({"vcpu", "pcpu"}),
    "sched_tickle": frozenset({"vcpu", "pcpu", "why"}),
    "sched_steal": frozenset({"vcpu", "from_pcpu", "to_pcpu"}),
    # Emitted by alternative repro.sched backends only (the default
    # credit backend stays silent so traced baseline runs are unchanged).
    "sched_switch": frozenset({"vcpu", "pcpu", "backend"}),
    "gang_idle": frozenset({"pcpu", "domain"}),
    "accelerate": frozenset({"vcpu", "wake"}),
    "pool_move": frozenset({"pcpu", "from_pool", "to_pool"}),
    # -- IPI / vIRQ flow -----------------------------------------------
    "ipi_send": frozenset({"op", "ipi_kind", "src", "dst"}),
    "ipi_complete": frozenset({"op", "ipi_kind", "initiator", "latency_ns"}),
    "virq_inject": frozenset({"vcpu", "domain"}),
    # -- guest locks ---------------------------------------------------
    "lock_acquired": frozenset({"vcpu", "lock", "wait_ns"}),
    "lock_release": frozenset({"vcpu", "lock"}),
    # -- adaptive controller (the Algorithm-1 audit log) ---------------
    "adaptive_resize": frozenset({"cores", "prev_cores", "ipi", "ple", "irq"}),
    # -- fault injection (repro.faults) --------------------------------
    "fault_inject": frozenset({"fault", "target"}),
    "fault_recover": frozenset({"fault", "target", "action"}),
    # -- runstate accounting -------------------------------------------
    "runstate": frozenset({"vcpu", "from_state", "to_state"}),
    "runstate_final": frozenset(
        {"vcpu", "domain", "running", "runnable", "blocked", "offline", "elapsed"}
    ),
    # -- collection metadata (always recorded, bypasses kind filters) --
    "meta": frozenset({"scenario", "duration_ns", "pcpus", "domains"}),
}

#: Kinds recorded even under a ``--trace-kinds`` filter: without them an
#: exported file cannot be analyzed (no duration, no runstate tables).
META_KINDS = frozenset({"meta", "runstate_final"})

#: Reserved top-level JSONL keys (never valid as detail field names).
RESERVED_KEYS = frozenset({"seq", "t", "kind", "job"})


def known_kinds():
    return sorted(TRACE_SCHEMA)
