"""``repro.obs`` — the observability subsystem.

The paper's evaluation *is* observability: xentrace-style profiling of
yields, PLE exits, delayed IPI acks, and vIRQ latency, consumed both by
humans (Tables/Figures) and by Algorithm 1 itself. This package holds
the pieces that are not tied to a single simulator layer:

* :mod:`repro.obs.schema`   — the typed trace-record vocabulary;
* :mod:`repro.obs.runstate` — per-vCPU time-in-state (steal-time)
  accounting plus its conservation invariant;
* :mod:`repro.obs.analyze`  — the ``repro analyze`` engine: span
  reconstruction, runstate tables, yield decompositions, trace diffs;
* :mod:`repro.obs.telemetry` — the *runner-stack* metrics registry
  (pool/cache/cost-model/engine counters, gauges, log2 histograms)
  with JSON and Prometheus exposition export (``repro telemetry``).

The emitting side lives where the events happen —
:class:`repro.sim.trace.Tracer` (the buffer/export machinery),
:class:`repro.metrics.histogram.Histogram` (deterministic latency
tails), and emit sites threaded through ``hypervisor/``, ``guest/``,
and ``core/adaptive.py``.

``analyze`` is imported lazily (it pulls in the reporting stack); the
schema and runstate modules stay import-light so the simulator core can
use them without cycles.
"""

from . import telemetry
from .runstate import (
    STATES,
    RunstateAccount,
    steal_fraction,
    steal_report,
    validate,
    validate_result,
)
from .schema import META_KINDS, RESERVED_KEYS, TRACE_SCHEMA, known_kinds

__all__ = [
    "META_KINDS",
    "RESERVED_KEYS",
    "RunstateAccount",
    "STATES",
    "TRACE_SCHEMA",
    "known_kinds",
    "steal_fraction",
    "steal_report",
    "telemetry",
    "validate",
    "validate_result",
]
