"""The ``repro analyze`` engine — xenalyze for exported traces.

Consumes the JSONL files written by ``repro run --trace --trace-out``
(or :meth:`repro.sim.trace.Tracer.write_jsonl`) and reconstructs what a
human wants from a raw event stream:

* per-kind record counts;
* the yield decomposition per domain (must match the run's
  ``HvStats`` counters record for record — the round-trip invariant);
* per-vCPU runstate tables with the conservation check
  (``sum(states) == elapsed``);
* latency spans rebuilt from paired records — IPI first-send → complete
  and lock acquire → release — summarised with the deterministic
  :class:`~repro.metrics.histogram.Histogram`;
* the adaptive controller's resize timeline (Algorithm 1's audit log);
* a diff mode comparing two trace files kind by kind.

Everything here is pure post-processing over record dicts: no simulator
state is needed, so traces can be analyzed long after (and far from)
the run that produced them.
"""

from ..metrics.histogram import Histogram
from ..metrics.report import render_table
from ..sim.trace import load_jsonl
from .runstate import STATES
from .schema import META_KINDS


def group_by_job(records):
    """Split a flat record list into ``{job_label: [records]}``,
    preserving first-seen job order. Single-job exports (no ``job``
    field) land under ``""``."""
    jobs = {}
    for record in records:
        jobs.setdefault(record.get("job", ""), []).append(record)
    return jobs


class TraceAnalysis:
    """Everything derived from one job's record stream."""

    def __init__(self, job, records):
        self.job = job
        self.records = records
        self.meta = None
        self.counts = {}
        self.yields = {}          # domain -> {cause: count}
        self.runstates = {}       # domain -> {vcpu: {state: ns, elapsed: ns}}
        self.violations = []      # (domain, vcpu, difference_ns)
        self.ipi_spans = {}       # ipi kind -> Histogram of send->complete ns
        self.lock_waits = {}      # lock -> Histogram of wait ns
        self.lock_holds = {}      # lock -> Histogram of hold ns
        self.adaptive = []        # adaptive_resize records, in order
        self.fault_events = []    # fault_inject/fault_recover, in order
        self.seq_gaps = 0
        self._scan()

    # ------------------------------------------------------------------
    def _scan(self):
        first_send = {}           # op id -> (ipi kind, first send t)
        open_holds = {}           # (vcpu, lock) -> acquire t
        last_seq = None
        for record in self.records:
            kind = record["kind"]
            self.counts[kind] = self.counts.get(kind, 0) + 1
            seq = record.get("seq")
            if seq is not None:
                if last_seq is not None and seq != last_seq + 1:
                    self.seq_gaps += 1
                last_seq = seq
            if kind == "meta":
                self.meta = record
            elif kind == "yield":
                causes = self.yields.setdefault(record["domain"], {})
                causes[record["cause"]] = causes.get(record["cause"], 0) + 1
            elif kind == "runstate_final":
                snap = {name: record[name] for name in STATES}
                snap["elapsed"] = record["elapsed"]
                self.runstates.setdefault(record["domain"], {})[record["vcpu"]] = snap
                total = sum(snap[name] for name in STATES)
                if total != snap["elapsed"]:
                    self.violations.append(
                        (record["domain"], record["vcpu"], total - snap["elapsed"])
                    )
            elif kind == "ipi_send":
                if record["op"] not in first_send:
                    first_send[record["op"]] = (record["ipi_kind"], record["t"])
            elif kind == "ipi_complete":
                sent = first_send.pop(record["op"], None)
                if sent is not None:
                    ipi_kind, sent_at = sent
                    hist = self.ipi_spans.setdefault(
                        ipi_kind, Histogram(name="ipi_span_" + ipi_kind)
                    )
                    hist.record(record["t"] - sent_at)
            elif kind == "lock_acquired":
                lock = record["lock"]
                self.lock_waits.setdefault(
                    lock, Histogram(name="lock_wait_" + lock)
                ).record(record["wait_ns"])
                open_holds[(record["vcpu"], lock)] = record["t"]
            elif kind == "lock_release":
                acquired_at = open_holds.pop((record["vcpu"], record["lock"]), None)
                if acquired_at is not None:
                    self.lock_holds.setdefault(
                        record["lock"], Histogram(name="lock_hold_" + record["lock"])
                    ).record(record["t"] - acquired_at)
            elif kind == "adaptive_resize":
                self.adaptive.append(record)
            elif kind in ("fault_inject", "fault_recover"):
                self.fault_events.append(record)

    # ------------------------------------------------------------------
    def event_counts(self):
        """Non-meta record counts by kind (sorted)."""
        return {
            kind: count
            for kind, count in sorted(self.counts.items())
            if kind not in META_KINDS
        }

    def steal_report(self):
        """Per-domain runstate rollup (same shape as
        :func:`repro.obs.runstate.steal_report`)."""
        report = {}
        for domain, vcpus in sorted(self.runstates.items()):
            rollup = {name: 0 for name in STATES}
            rollup["elapsed"] = 0
            for snap in vcpus.values():
                for name in STATES:
                    rollup[name] += snap[name]
                rollup["elapsed"] += snap["elapsed"]
            report[domain] = rollup
        return report


def analyze_file(path):
    """Load and analyze a JSONL trace: ``{job_label: TraceAnalysis}``."""
    return {
        job: TraceAnalysis(job, records)
        for job, records in group_by_job(load_jsonl(path)).items()
    }


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def _ms(ns):
    return ns / 1e6


def _span_rows(histograms):
    rows = []
    for key in sorted(histograms):
        snap = histograms[key].snapshot()
        rows.append(
            [
                key,
                snap["count"],
                "%.1f" % (snap["mean"] / 1e3),
                "%.1f" % (snap["p50"] / 1e3),
                "%.1f" % (snap["p95"] / 1e3),
                "%.1f" % (snap["p99"] / 1e3),
                "%.1f" % (snap["max"] / 1e3),
            ]
        )
    return rows


def format_analysis(analysis):
    """Human-readable report for one job's analysis."""
    sections = []
    label = analysis.job or "(unlabelled)"
    if analysis.meta is not None:
        sections.append(
            "job %s: scenario=%s duration=%.0f ms pcpus=%s domains=%s"
            % (
                label,
                analysis.meta["scenario"],
                _ms(analysis.meta["duration_ns"]),
                analysis.meta["pcpus"],
                ",".join(analysis.meta["domains"]),
            )
        )
    else:
        sections.append("job %s: (no meta record)" % label)
    if analysis.seq_gaps:
        sections.append("WARNING: %d sequence gaps (dropped records?)" % analysis.seq_gaps)

    counts = analysis.event_counts()
    if counts:
        sections.append(
            render_table(
                ["event", "count"],
                [[kind, count] for kind, count in counts.items()],
                title="event counts",
            )
        )

    if analysis.yields:
        causes = sorted({c for d in analysis.yields.values() for c in d})
        rows = [
            [domain] + [analysis.yields[domain].get(cause, 0) for cause in causes]
            for domain in sorted(analysis.yields)
        ]
        sections.append(
            render_table(["domain"] + causes, rows, title="yield decomposition")
        )

    if analysis.runstates:
        rows = []
        for domain in sorted(analysis.runstates):
            for vcpu in sorted(analysis.runstates[domain]):
                snap = analysis.runstates[domain][vcpu]
                elapsed = snap["elapsed"]
                steal_pct = 100.0 * snap["runnable"] / elapsed if elapsed else 0.0
                rows.append(
                    [vcpu]
                    + ["%.2f" % _ms(snap[name]) for name in STATES]
                    + ["%.2f" % _ms(elapsed), "%.1f" % steal_pct]
                )
        sections.append(
            render_table(
                ["vcpu"]
                + ["%s_ms" % name for name in STATES]
                + ["elapsed_ms", "steal_pct"],
                rows,
                title="runstate accounting",
            )
        )
        if analysis.violations:
            sections.append(
                "CONSERVATION VIOLATIONS: "
                + ", ".join(
                    "%s/%s off by %d ns" % entry for entry in analysis.violations
                )
            )
        else:
            sections.append("runstate conservation: OK (sum(states) == elapsed)")

    span_headers = ["span", "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"]
    if analysis.ipi_spans:
        sections.append(
            render_table(
                span_headers,
                _span_rows(analysis.ipi_spans),
                title="IPI send -> complete spans",
            )
        )
    if analysis.lock_waits:
        sections.append(
            render_table(span_headers, _span_rows(analysis.lock_waits), title="lock waits")
        )
    if analysis.lock_holds:
        sections.append(
            render_table(span_headers, _span_rows(analysis.lock_holds), title="lock holds")
        )

    if analysis.fault_events:
        rows = [
            [
                "%.1f" % _ms(record["t"]),
                "inject" if record["kind"] == "fault_inject" else "recover",
                record["fault"],
                record.get("target") if record.get("target") is not None else "-",
                record.get("action") or "-",
            ]
            for record in analysis.fault_events
        ]
        sections.append(
            render_table(
                ["t_ms", "event", "fault", "target", "action"],
                rows,
                title="fault timeline (repro.faults)",
            )
        )

    if analysis.adaptive:
        rows = [
            [
                "%.1f" % _ms(record["t"]),
                record["prev_cores"],
                record["cores"],
                record["ipi"],
                record["ple"],
                record["irq"],
            ]
            for record in analysis.adaptive
        ]
        sections.append(
            render_table(
                ["t_ms", "from", "to", "ipi", "ple", "irq"],
                rows,
                title="adaptive resize decisions (Algorithm 1)",
            )
        )
    return "\n\n".join(sections)


def format_report(analyses):
    """Render every job's analysis in one report."""
    return ("\n\n" + "=" * 72 + "\n\n").join(
        format_analysis(analyses[job]) for job in analyses
    )


# ----------------------------------------------------------------------
# machine-readable output (repro analyze --json)
# ----------------------------------------------------------------------
def _span_dicts(histograms):
    return {key: histograms[key].snapshot() for key in sorted(histograms)}


def analysis_to_dict(analysis):
    """One job's analysis as a JSON-native dict — the same sections the
    human report renders (meta, event counts, yield decomposition,
    runstate accounting + conservation, IPI/lock span histograms, fault
    timeline, adaptive decisions), in data form. Span histograms use
    the standard :meth:`~repro.metrics.histogram.Histogram.snapshot`
    shape. Deterministic for a given trace file; dump with
    ``sort_keys=True`` for byte-stable output."""
    return {
        "job": analysis.job,
        "meta": analysis.meta,
        "seq_gaps": analysis.seq_gaps,
        "event_counts": analysis.event_counts(),
        "yields": {
            domain: dict(sorted(causes.items()))
            for domain, causes in sorted(analysis.yields.items())
        },
        "runstates": {
            domain: {str(vcpu): dict(snap) for vcpu, snap in sorted(vcpus.items())}
            for domain, vcpus in sorted(analysis.runstates.items())
        },
        "conservation_violations": [
            {"domain": domain, "vcpu": vcpu, "off_by_ns": delta}
            for domain, vcpu, delta in analysis.violations
        ],
        "ipi_spans": _span_dicts(analysis.ipi_spans),
        "lock_waits": _span_dicts(analysis.lock_waits),
        "lock_holds": _span_dicts(analysis.lock_holds),
        "fault_events": list(analysis.fault_events),
        "adaptive": list(analysis.adaptive),
    }


def report_dict(analyses):
    """Every job's analysis as ``{job_label: analysis dict}`` (what
    ``repro analyze FILE --json`` prints)."""
    return {job: analysis_to_dict(analyses[job]) for job in analyses}


def diff_dict(path_a, path_b):
    """The trace diff as data: ``{job_label: {kind: {"a": .., "b": ..,
    "delta": ..}}}`` — only kinds whose counts differ appear, so an
    empty inner dict means identical event counts for that job."""
    a = analyze_file(path_a)
    b = analyze_file(path_b)
    report = {}
    for job in sorted(set(a) | set(b)):
        counts_a = a[job].counts if job in a else {}
        counts_b = b[job].counts if job in b else {}
        deltas = {}
        for kind in sorted(set(counts_a) | set(counts_b)):
            left = counts_a.get(kind, 0)
            right = counts_b.get(kind, 0)
            if left != right:
                deltas[kind] = {"a": left, "b": right, "delta": right - left}
        report[job] = deltas
    return report


def diff_files(path_a, path_b):
    """Compare two trace files kind by kind, per job label."""
    a = analyze_file(path_a)
    b = analyze_file(path_b)
    sections = []
    for job in sorted(set(a) | set(b)):
        counts_a = a[job].counts if job in a else {}
        counts_b = b[job].counts if job in b else {}
        rows = []
        for kind in sorted(set(counts_a) | set(counts_b)):
            left = counts_a.get(kind, 0)
            right = counts_b.get(kind, 0)
            if left != right:
                rows.append([kind, left, right, right - left])
        title = "job %s" % (job or "(unlabelled)")
        if rows:
            sections.append(
                render_table(["event", "a", "b", "delta"], rows, title=title)
            )
        else:
            sections.append("%s: identical event counts" % title)
    return "\n\n".join(sections) if sections else "no jobs found"
