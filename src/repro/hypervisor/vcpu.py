"""Virtual CPUs.

A :class:`VCpu` is the hypervisor's schedulable unit. It carries the
guest-side execution state (task scheduler, pending kernel work, the
instruction-pointer symbol the detector reads) and the hypervisor-side
scheduling state (pool, priority, credits, affinity).
"""

from collections import deque

from ..guest.sched import GuestCpu
from ..guest.task import ExecContext
from ..hw.cache import CacheState
from ..obs.runstate import RunstateAccount

#: vCPU states.
RUNNING = "running"
RUNNABLE = "runnable"   # wants a pCPU but is preempted / queued
BLOCKED = "blocked"     # halted: idle guest or parked lock waiter


class VCpu:
    """One virtual CPU of a domain."""

    def __init__(self, domain, index, cache_model, now=0):
        self.domain = domain
        self.index = index
        self.name = "%s.v%d" % (domain.name, index)
        self.hv = domain.hv
        self.runstate = RunstateAccount(now, RUNNABLE)
        self._state = RUNNABLE
        # Hoisted runstate emit handle (the hottest trace kind: every
        # state transition); None unless the tracer records it.
        tracer = self.hv.tracer
        self._trace_runstate = tracer.want("runstate") if tracer is not None else None
        self.pool = None
        self.pcpu = None           # executor currently running us
        self.priority = None       # managed by the pool scheduler
        self.credits = 0
        self.affinity = None       # None = any pCPU, else frozenset of indices
        self.guest_cpu = GuestCpu(self)
        self.kernel_work = deque()
        self.current_symbol = None
        self.cache = CacheState(cache_model, now=now)
        #: True while halted idle (Linux lazy-TLB mode: skipped by
        #: shootdowns).
        self.lazy_tlb = False
        self.total_ran = 0
        self.migrations_to_micro = 0
        #: credit1 bookkeeping: one-shot yield flag, placement hints.
        self.yield_flag = False
        self.last_pcpu = None
        self.runq_pcpu = None
        #: Comparator policies (vTurbo/vTRS models) pin vCPUs to the
        #: short-slice pool permanently instead of bouncing them back.
        self.micro_resident = False

    # ------------------------------------------------------------------
    # runstate accounting
    # ------------------------------------------------------------------
    @property
    def state(self):
        return self._state

    @state.setter
    def state(self, value):
        """Every transition flows through here, so the runstate ledger
        (time running / runnable / blocked — steal-time accounting) is
        exact by construction."""
        if value == self._state:
            return
        now = self.hv.sim._now
        self.runstate.transition(now, value)
        emit = self._trace_runstate
        if emit is not None:
            emit(vcpu=self.name, from_state=self._state, to_state=value)
        self._state = value

    # ------------------------------------------------------------------
    # detector-visible state
    # ------------------------------------------------------------------
    @property
    def ip(self):
        """Instruction pointer: the address inside the symbol the vCPU
        was last executing (user-space address when in user code)."""
        return self.domain.kernel.addr_for(self.current_symbol)

    @property
    def running(self):
        return self.state == RUNNING

    # ------------------------------------------------------------------
    # cross-CPU notification
    # ------------------------------------------------------------------
    def notify(self, cause):
        """Break this vCPU's executor out of an in-progress wait (lock
        granted, IPI completed, kernel work posted). No-op unless the
        vCPU is on a pCPU right now."""
        pcpu = self.pcpu
        if pcpu is not None:
            pcpu.interrupt_current(cause, self)

    def post_kernel_work(self, gen, name=""):
        """Queue IRQ-context work (IPI/vIRQ handler). Wakes a halted
        vCPU through the hypervisor (the BOOST path); pokes a running
        one so the work is serviced at the next boundary."""
        self.kernel_work.append(ExecContext(gen, name=name))
        if self.state == BLOCKED:
            self.hv.wake_vcpu(self)
        elif self.state == RUNNING:
            self.notify(("kernel_work",))

    # ------------------------------------------------------------------
    # execution-context selection (IRQ work preempts tasks)
    # ------------------------------------------------------------------
    def next_context(self):
        """``(context, task, switched)`` to execute next; context is
        ``None`` when the guest is fully idle."""
        if self.kernel_work:
            return self.kernel_work[0], None, False
        task, switched = self.guest_cpu.pick()
        if task is None:
            return None, None, False
        return task.context, task, switched

    def finish_kernel_work(self, ctx):
        """Pop an exhausted IRQ-work context."""
        if self.kernel_work and self.kernel_work[0] is ctx:
            self.kernel_work.popleft()

    @property
    def has_work(self):
        return bool(self.kernel_work) or self.guest_cpu.has_runnable

    def __repr__(self):
        return "<VCpu %s %s>" % (self.name, self.state)
