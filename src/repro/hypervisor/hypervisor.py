"""The hypervisor facade.

Owns the pools, domains, executors, stats, and the relay paths (vIRQ,
vIPI, kicks) through which guest kernels and devices reach the
scheduler. The micro-slicing *policy* (the paper's contribution) is
pluggable: the baseline installs a no-op policy, the static and dynamic
schemes install :class:`repro.core.microslice.MicroSliceEngine`.
"""

import random

from ..errors import ConfigError, FaultError, SchedulerError
from ..hw.costs import CostModel
from ..hw.ple import PleConfig
from ..hw.topology import Topology
from ..metrics.histogram import HistogramSet
from ..sched import MicroScheduler
from ..sched import registry as sched_registry
from ..sim.rng import derive_seed
from ..sim.time import us
from . import executor as ex
from . import vcpu as vc
from .cpupool import CpuPool
from .domain import Domain
from .stats import HvStats


class NullPolicy:
    """Baseline: no micro-slicing, all hooks are no-ops."""

    active = False

    def on_yield(self, vcpu, cause, detail):
        pass

    def on_vipi(self, src, dst, op):
        pass

    def on_virq(self, vcpu):
        pass

    def start(self, hv):
        pass


class Hypervisor:
    """A consolidated host: pCPUs, pools, and domains."""

    def __init__(
        self,
        sim,
        num_pcpus=12,
        costs=None,
        ple=None,
        scheduler="credit",
        micro_slice=None,
        pv_spin_rounds=1,
        tracer=None,
        seed=0,
    ):
        self.sim = sim
        self.costs = costs if costs is not None else CostModel()
        self.ple = ple if ple is not None else PleConfig()
        self.pv_spin_rounds = pv_spin_rounds
        self.tracer = tracer
        # Hoisted per-kind emit handles (tracer.want): None when the
        # tracer would never record the kind, so each emit site costs a
        # single None check instead of enabled/filter/schema work.
        _want = tracer.want if tracer is not None else lambda kind: None
        self._trace_deschedule = _want("deschedule")
        self._trace_ipi_send = _want("ipi_send")
        self._trace_ipi_complete = _want("ipi_complete")
        self._trace_pool_move = _want("pool_move")
        self._trace_accelerate = _want("accelerate")
        #: Fault injector (repro.faults) or None. Every degradation
        #: hook does one ``is None`` check, so fault-free runs execute
        #: the exact instruction stream they always did.
        self.faults = None
        self.stats = HvStats(tracer=tracer)
        self.histograms = HistogramSet()
        #: Host-wide IPI-op id allocator: per-instance (not
        #: process-global) so trace op ids are deterministic per run
        #: regardless of how many simulations this process ran before.
        self._ipi_seq = 0
        self.topology = Topology(num_pcpus=num_pcpus)
        self.domains = []
        self.nic_owner = {}
        self.policy = NullPolicy()

        # The normal pool's backend is pluggable (repro.sched registry);
        # the RNG stream name stays "hv.credit" so default-backend runs
        # reproduce historical results bit-for-bit.
        backend_cls = sched_registry.get(scheduler)
        scheduler_rng = random.Random(derive_seed(seed, "hv.credit"))
        backend = backend_cls(sim, rng=scheduler_rng, tracer=tracer)
        backend.stats = self.stats
        self.normal_pool = CpuPool("normal", backend)
        self.micro_pool = CpuPool(
            "micro", MicroScheduler(sim, micro_slice or us(100))
        )
        self.pcpus = [ex.PCpu(self, info) for info in self.topology]
        for pcpu in self.pcpus:
            pcpu.pool = self.normal_pool
            self.normal_pool.add_pcpu(pcpu)
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def create_domain(self, name, num_vcpus, weight=256, symbols=None):
        domain = Domain(self, name, num_vcpus, weight=weight, symbols=symbols)
        self.domains.append(domain)
        for vcpu in domain.vcpus:
            vcpu.pool = self.normal_pool
        return domain

    def attach_nic(self, nic, domain):
        """Route the NIC's physical IRQs to ``domain``."""
        self.nic_owner[nic] = domain
        nic.attach_irq_sink(self.on_nic_irq)

    def set_policy(self, policy):
        self.policy = policy

    def start(self):
        """Enqueue every vCPU and start the pCPU executors. Idempotent
        setup must happen before the simulator runs its first event."""
        if self._started:
            raise SchedulerError("hypervisor already started")
        self._started = True
        # Xen inserts vCPUs at UNDER priority (csched_vcpu_insert); a
        # nominal positive credit balance reproduces that without
        # perturbing the credit economy.
        for domain in self.domains:
            for vcpu in domain.vcpus:
                if vcpu.credits <= 0:
                    vcpu.credits = 1
        for domain in self.domains:
            for vcpu in domain.vcpus:
                vcpu.state = vc.RUNNABLE
                self.normal_pool.scheduler.enqueue(vcpu)
        for pcpu in self.pcpus:
            pcpu.start()
        self.sim.process(self._accounting_loop(), name="credit-accounting")
        scheduler = self.normal_pool.scheduler
        stagger = max(1, scheduler.tick // max(1, len(self.pcpus)))
        for offset, pcpu in enumerate(self.pcpus):
            self.sim.process(
                self._tick_loop(pcpu, (offset + 1) * stagger),
                name="tick-pcpu%d" % pcpu.info.index,
            )
        self.policy.start(self)

    def _accounting_loop(self):
        scheduler = self.normal_pool.scheduler
        while True:
            yield scheduler.period
            scheduler.account(self.domains, len(self.normal_pool))

    def _tick_loop(self, pcpu, initial_delay):
        """Per-pCPU scheduler tick: the backend decides what (if
        anything) happens at tick granularity — credit1 preempts an OVER
        vCPU when something better waits on the local runqueue."""
        scheduler = self.normal_pool.scheduler
        yield initial_delay
        while True:
            if pcpu.pool is self.normal_pool:
                scheduler.on_tick(pcpu)
            yield scheduler.tick

    # ------------------------------------------------------------------
    # scheduling callbacks (from executors)
    # ------------------------------------------------------------------
    def mark_running(self, vcpu):
        vcpu.state = vc.RUNNING
        vcpu.lazy_tlb = False

    def on_deschedule(self, vcpu, stop, runtime):
        reason, detail = stop
        if vcpu.micro_resident and vcpu.pool is self.normal_pool:
            vcpu.pool = self.micro_pool
        pool = vcpu.pool
        pool.scheduler.charge(vcpu, runtime)
        vcpu.total_ran += runtime
        if pool is self.micro_pool and not vcpu.micro_resident:
            # One micro slice only; the vCPU always goes home (§5).
            vcpu.pool = self.normal_pool
        emit = self._trace_deschedule
        if emit is not None:
            emit(vcpu=vcpu.name, reason=reason, runtime_ns=runtime)
        if reason == ex.STOP_IDLE:
            vcpu.state = vc.BLOCKED
            vcpu.lazy_tlb = True
            self.stats.count_yield(vcpu, "halt")
            # A halt is a voluntary (software-triggered) yield (§4.1):
            # scan the preempted siblings — e.g. an rwsem writer whose
            # waiters just went to sleep.
            self.policy.on_yield(vcpu, "halt", None)
            return
        if reason == ex.STOP_PARK:
            self.stats.count_yield(vcpu, "spinlock")
            lock = detail
            if lock is not None and lock.granted_to(vcpu):
                # The lock was handed to us between the park decision and
                # this point; the pv-kick saw us still running and was a
                # no-op, so parking now would deadlock the lock. Stay
                # runnable instead.
                vcpu.state = vc.RUNNABLE
                self.normal_pool.scheduler.requeue(vcpu)
            else:
                vcpu.state = vc.BLOCKED
            self.policy.on_yield(vcpu, "spinlock", detail)
            return
        vcpu.state = vc.RUNNABLE
        yielded = reason in (ex.STOP_PLE, ex.STOP_IPI_WAIT)
        if vcpu.pool is self.micro_pool:
            # A resident short-slice vCPU goes straight back into its
            # pool's slot (comparator policies).
            if not self.micro_pool.scheduler.assign(vcpu):
                vcpu.pool = self.normal_pool
                self.normal_pool.scheduler.requeue(vcpu, yielded=yielded)
        else:
            self.normal_pool.scheduler.requeue(vcpu, yielded=yielded)
        if reason == ex.STOP_PLE:
            self.stats.count_yield(vcpu, "spinlock")
            self.policy.on_yield(vcpu, "spinlock", detail)
        elif reason == ex.STOP_IPI_WAIT:
            self.stats.count_yield(vcpu, "ipi")
            self.policy.on_yield(vcpu, "ipi", detail)
        elif reason == ex.STOP_PREEMPT:
            self.stats.count_preempt(vcpu)

    def on_task_exit(self, vcpu, task):
        from ..guest import task as task_mod

        task.state = task_mod.EXITED
        guest_cpu = vcpu.guest_cpu
        if guest_cpu.current is task:
            guest_cpu.current = None

    # ------------------------------------------------------------------
    # wake / relay paths
    # ------------------------------------------------------------------
    def wake_vcpu(self, vcpu):
        """Wake a blocked vCPU (BOOST path). No-op otherwise."""
        if vcpu.state != vc.BLOCKED:
            return
        vcpu.state = vc.RUNNABLE
        vcpu.lazy_tlb = False
        if vcpu.pool is self.micro_pool:
            if vcpu.micro_resident and self.micro_pool.scheduler.assign(vcpu):
                return
            vcpu.pool = self.normal_pool
        self.normal_pool.scheduler.wake(vcpu)

    def make_micro_resident(self, vcpu):
        """Permanently pin a vCPU to the micro-sliced pool (comparator
        policies: vTurbo's turbo cores, vTRS's short-slice class).
        Returns False when no slot is available."""
        vcpu.micro_resident = True
        if vcpu.pool is self.micro_pool:
            return True
        if vcpu.state == vc.RUNNABLE and self.normal_pool.scheduler.remove(vcpu):
            vcpu.pool = self.micro_pool
            if not self.micro_pool.scheduler.assign(vcpu):
                vcpu.pool = self.normal_pool
                vcpu.micro_resident = False
                self.normal_pool.scheduler.requeue(vcpu)
                return False
            return True
        if vcpu.state == vc.BLOCKED:
            vcpu.pool = self.micro_pool
            return True
        # RUNNING, or already dequeued by a pCPU about to run it:
        # pulled over at its next deschedule (on_deschedule honours the
        # resident flag).
        return True

    def release_micro_resident(self, vcpu):
        """Undo make_micro_resident."""
        vcpu.micro_resident = False
        if vcpu.pool is self.micro_pool and vcpu.state == vc.RUNNABLE:
            if self.micro_pool.scheduler.remove(vcpu):
                vcpu.pool = self.normal_pool
                self.normal_pool.scheduler.requeue(vcpu)

    def kick_vcpu(self, vcpu):
        """pv-spinlock kick (event-channel notification)."""
        self.wake_vcpu(vcpu)

    def next_ipi_id(self):
        """Allocate a host-unique, run-deterministic IPI-op id."""
        self._ipi_seq += 1
        return self._ipi_seq

    def relay_vipi(self, src, dst, op, work, name=""):
        """Relay a guest IPI: deliver the handler work to ``dst`` after
        the wire latency. The policy sees the relay first, mirroring the
        paper's interception point."""
        self.stats.count_vipi(src, dst, op.kind)
        self._observe_ipi(op)
        emit = self._trace_ipi_send
        if emit is not None:
            emit(op=op.id, ipi_kind=op.kind, src=src.name, dst=dst.name)
        if self.faults is not None:
            self.faults.note_ipi_send(op)
            self._send_vipi(src, dst, op, work, name, attempt=0)
            return

        def _deliver(_arg):
            self.policy.on_vipi(src, dst, op)
            dst.post_kernel_work(work, name=name or op.kind)

        self.sim.schedule(self.costs.ipi_deliver, _deliver)

    def _send_vipi(self, src, dst, op, work, name, attempt):
        """Fault-aware transmit of one vIPI message. A dropped message
        is re-sent after the watchdog timeout; once the resend budget is
        spent the op is force-acked (and accounted dropped) so barrier
        protocols like TLB shootdown degrade instead of hanging."""
        faults = self.faults
        verdict, delay = (
            ("deliver", 0) if faults is None else faults.ipi_decision(dst, attempt)
        )
        if verdict == "drop":
            self.sim.schedule(delay, self._retry_vipi, (src, dst, op, work, name, attempt + 1))
            return
        if verdict == "timeout":
            faults.warn_degraded(
                "ipi_drop",
                "vIPI resend budget exhausted; forcing acknowledgements "
                "so waiters cannot hang",
            )
            faults.trace("fault_recover", "ipi_drop", dst.name, action="forced_ack")
            op.ack(dst, self.sim.now)
            return

        def _deliver(_arg):
            self.policy.on_vipi(src, dst, op)
            dst.post_kernel_work(work, name=name or op.kind)

        self.sim.schedule(self.costs.ipi_deliver + delay, _deliver)

    def _retry_vipi(self, arg):
        src, dst, op, work, name, attempt = arg
        if op.complete:
            return  # force-acked or otherwise finished while queued
        self._send_vipi(src, dst, op, work, name, attempt)

    def _observe_ipi(self, op):
        """Chain onto the op's completion callback (once per op — a
        multi-target shootdown relays many messages for one op) to
        close the send→last-ack span: histogram the latency and emit the
        matching ``ipi_complete`` trace record."""
        if getattr(op, "_hv_observed", False):
            return
        op._hv_observed = True
        chained = op.on_complete

        def _complete(completed, _chained=chained):
            if _chained is not None:
                _chained(completed)
            if self.faults is not None:
                self.faults.note_ipi_complete(completed)
            self.histograms.record("ipi_ack_" + completed.kind, completed.latency)
            emit = self._trace_ipi_complete
            if emit is not None:
                initiator = completed.initiator
                emit(
                    op=completed.id,
                    ipi_kind=completed.kind,
                    initiator=initiator.name if initiator is not None else None,
                    latency_ns=completed.latency,
                )

        op.on_complete = _complete

    def on_nic_irq(self, nic):
        """Physical NIC interrupt: inject a vIRQ into the owner VM's
        designated vCPU."""
        domain = self.nic_owner.get(nic)
        if domain is None or domain.kernel.net is None:
            raise ConfigError("NIC %r raised an IRQ but is not attached" % nic.name)
        vcpu = domain.kernel.net.irq_vcpu
        self.stats.count_virq(vcpu)
        raised_at = self.sim.now

        def _inject(_arg):
            from ..guest import irqwork

            self.policy.on_virq(vcpu)
            vcpu.post_kernel_work(
                irqwork.net_rx_work(domain.kernel, vcpu, nic, raised_at=raised_at),
                name="net_rx",
            )

        self.sim.schedule(self.costs.irq_inject, _inject)

    # ------------------------------------------------------------------
    # micro pool management
    # ------------------------------------------------------------------
    def reserved_pcpu_indices(self):
        """pCPUs pinned by some vCPU's affinity; never moved to the
        micro pool."""
        reserved = set()
        for domain in self.domains:
            for vcpu in domain.vcpus:
                if vcpu.affinity is not None:
                    reserved |= set(vcpu.affinity)
        return reserved

    def micro_core_count(self):
        return len(self.micro_pool) + sum(
            1 for p in self.pcpus if p.pending_pool is self.micro_pool
        )

    def set_micro_cores(self, count):
        """Grow/shrink the micro pool to ``count`` pCPUs (asynchronous:
        running vCPUs are preempted, membership flips at the executor
        loop boundary)."""
        if count < 0:
            raise ConfigError("negative micro core count")
        if count >= len(self.pcpus):
            raise ConfigError("cannot micro-slice every pCPU")
        if self.faults is not None and self.faults.poolmove_refused():
            raise FaultError(
                "cpupool resize to %d micro cores refused (fault injection)" % count
            )
        current = self.micro_core_count()
        if count > current:
            reserved = self.reserved_pcpu_indices()
            candidates = [
                p
                for p in reversed(self.pcpus)
                if p.pool is self.normal_pool
                and p.pending_pool is None
                and not p.offline_requested
                and p.info.index not in reserved
            ]
            for pcpu in candidates[: count - current]:
                pcpu.request_pool_change(self.micro_pool)
        elif count < current:
            victims = [
                p
                for p in self.pcpus
                if (p.pool is self.micro_pool or p.pending_pool is self.micro_pool)
            ]
            for pcpu in victims[: current - count]:
                pcpu.request_pool_change(self.normal_pool)

    def complete_pool_change(self, pcpu):
        """Called by the executor at its loop boundary."""
        target = pcpu.pending_pool
        emit = self._trace_pool_move
        if emit is not None:
            emit(pcpu=pcpu.info.index, from_pool=pcpu.pool.name, to_pool=target.name)
        stranded = pcpu.pool.remove_pcpu(pcpu)
        target.add_pcpu(pcpu)
        pcpu.pool = target
        if stranded is not None:
            stranded.pool = self.normal_pool
            if stranded.state == vc.RUNNABLE:
                self.normal_pool.scheduler.requeue(stranded)

    # ------------------------------------------------------------------
    # pCPU hotplug (fault injection: a core leaves / rejoins the host)
    # ------------------------------------------------------------------
    def offline_pcpu(self, index):
        """Request that a pCPU leave its pool. Takes effect at the
        executor's next loop boundary (like a pool change); the executor
        then parks in :meth:`~repro.hypervisor.executor.PCpu` offline
        wait until :meth:`online_pcpu`. Returns False if already
        offline/offlining."""
        pcpu = self.pcpus[index]
        if pcpu.offline_requested:
            return False
        pcpu.offline_requested = True
        pcpu.request_preempt()
        return True

    def online_pcpu(self, index):
        """Bring a previously offlined pCPU back (into the normal
        pool). Returns False if it was not offline."""
        pcpu = self.pcpus[index]
        if not pcpu.offline_requested:
            return False
        pcpu.offline_requested = False
        if pcpu.proc is not None:
            pcpu.proc.interrupt(("online",))
        return True

    def on_pcpu_offline(self, pcpu):
        """Executor loop boundary reached with an offline request: pull
        the pCPU out of its pool (stranding its slot vCPU back into the
        normal pool, exactly like a pool move)."""
        pool = pcpu.pool
        emit = self._trace_pool_move
        if emit is not None:
            emit(pcpu=pcpu.info.index, from_pool=pool.name, to_pool="offline")
        pcpu.pending_pool = None
        stranded = pool.remove_pcpu(pcpu)
        pcpu.pool = None
        pcpu.offline = True
        if stranded is not None:
            stranded.pool = self.normal_pool
            if stranded.state == vc.RUNNABLE:
                self.normal_pool.scheduler.requeue(stranded)

    def on_pcpu_online(self, pcpu):
        """Executor waking from offline wait: rejoin the normal pool."""
        pcpu.offline = False
        pcpu.pool = self.normal_pool
        self.normal_pool.add_pcpu(pcpu)
        emit = self._trace_pool_move
        if emit is not None:
            emit(
                pcpu=pcpu.info.index,
                from_pool="offline",
                to_pool=self.normal_pool.name,
            )

    def accelerate(self, vcpu, wake=False):
        """Migrate a preempted (or, with ``wake``, blocked) vCPU onto a
        micro-sliced core. Returns ``True`` on success."""
        if vcpu.state == vc.RUNNING or vcpu.pool is self.micro_pool:
            return False
        if not self.micro_pool.pcpus:
            return False
        if vcpu.state == vc.BLOCKED:
            if not wake:
                return False
            vcpu.state = vc.RUNNABLE
            vcpu.lazy_tlb = False
        elif not self.normal_pool.scheduler.remove(vcpu):
            # Not actually in the runqueue: a pCPU has already dequeued
            # it and is about to run it. Migrating now would let two
            # pCPUs execute the same vCPU.
            return False
        vcpu.pool = self.micro_pool
        if not self.micro_pool.scheduler.assign(vcpu):
            # Every micro runqueue is full; send the vCPU home.
            vcpu.pool = self.normal_pool
            self.normal_pool.scheduler.requeue(vcpu)
            return False
        self.stats.count_migration(vcpu)
        emit = self._trace_accelerate
        if emit is not None:
            emit(vcpu=vcpu.name, wake=wake)
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def utilization(self, elapsed_ns):
        """Fraction of pCPU time spent running vCPUs."""
        if elapsed_ns <= 0:
            return 0.0
        busy = sum(p.busy_ns for p in self.pcpus)
        return busy / (elapsed_ns * len(self.pcpus))
