"""Backwards-compatibility shim.

The schedulers moved to :mod:`repro.sched` (pluggable backends behind a
name registry — see ``docs/schedulers.md``). This module keeps the old
import path working::

    from repro.hypervisor.credit import CreditScheduler, MicroScheduler
"""

from ..sched import (  # noqa: F401
    BOOST,
    OVER,
    PRIORITY_NAMES,
    UNDER,
    CreditScheduler,
    MicroScheduler,
    Scheduler,
)

__all__ = [
    "BOOST",
    "UNDER",
    "OVER",
    "PRIORITY_NAMES",
    "Scheduler",
    "CreditScheduler",
    "MicroScheduler",
]
