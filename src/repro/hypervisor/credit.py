"""The normal-pool scheduler: a model of Xen's credit1 scheduler.

Faithful behaviours (the ones the paper's pathologies depend on):

* 30 ms default time slice;
* **per-pCPU runqueues**, priority-ordered (BOOST > UNDER > OVER), with
  work stealing only when a pCPU would otherwise idle — so in an
  overcommitted host a descheduled vCPU waits out the slice of whatever
  its local pCPU runs next;
* credits refilled every accounting period in proportion to domain
  weight; priority is UNDER while credits remain, OVER when exhausted;
* **BOOST**: a vCPU that wakes from blocked with credits left enters
  BOOST priority and may preempt a non-BOOST vCPU — but a vCPU that is
  *already runnable* (the mixed-workload case) gets no boost;
* **yield flag** (``csched_vcpu_yield``): a vCPU that yielded (PLE exit
  or voluntary hypercall) is passed over once in favour of anything else
  runnable, even lower priority — this is what makes every yield cost
  up to a full co-runner slice, the heart of the VTD problem;
* a small random slice perturbation models the desynchronisation that
  Xen's 100 Hz ticks and wakeup traffic produce (without it the two VMs
  run in artificial lockstep and no preemption ever lands mid-service).
"""

from ..errors import SchedulerError
from ..sim.time import ms

#: Priorities, best first.
BOOST = 0
UNDER = 1
OVER = 2

PRIORITY_NAMES = {BOOST: "boost", UNDER: "under", OVER: "over"}
_PRIORITIES = (BOOST, UNDER, OVER)


class CreditScheduler:
    """Per-pCPU-runqueue credit scheduler for one cpupool."""

    def __init__(
        self,
        sim,
        slice_ns=None,
        period_ns=None,
        credit_cap_periods=2,
        rng=None,
        slice_jitter=0.10,
        tick_ns=None,
        tracer=None,
    ):
        self.sim = sim
        self.tracer = tracer
        self.slice = ms(30) if slice_ns is None else slice_ns
        self.period = ms(30) if period_ns is None else period_ns
        #: credit1 runs its scheduler at every 10 ms tick: queued UNDER/
        #: BOOST vCPUs preempt an OVER vCPU at tick granularity instead
        #: of waiting out its whole slice.
        self.tick = ms(10) if tick_ns is None else tick_ns
        self.credit_cap = credit_cap_periods * self.period
        self._rng = rng
        self.slice_jitter = slice_jitter
        self._runqs = {}        # pcpu -> {priority: list of vcpus}
        self._idle = []
        self.pool = None
        self.steals = 0

    # ------------------------------------------------------------------
    # runqueue plumbing
    # ------------------------------------------------------------------
    def register_pcpu(self, pcpu):
        self._runqs.setdefault(pcpu, {p: [] for p in _PRIORITIES})

    def unregister_pcpu(self, pcpu):
        """Detach a pCPU, respreading its queued vCPUs."""
        self.remove_idle(pcpu)
        queues = self._runqs.pop(pcpu, None)
        if queues:
            for priority in _PRIORITIES:
                for vcpu in queues[priority]:
                    vcpu.runq_pcpu = None
                    self._place(vcpu, priority)
        return None

    def _eligible(self, vcpu, pcpu):
        return vcpu.affinity is None or pcpu.info.index in vcpu.affinity

    def _depth(self, pcpu):
        queues = self._runqs[pcpu]
        return sum(len(queues[p]) for p in _PRIORITIES)

    def _place(self, vcpu, priority):
        """Insert ``vcpu`` into a pCPU runqueue: last-ran pCPU when
        eligible (cache affinity), else the shallowest eligible queue."""
        target = None
        last = vcpu.last_pcpu
        if last is not None and last in self._runqs and self._eligible(vcpu, last):
            target = last
        if target is None:
            best_depth = None
            for pcpu in self._runqs:
                if not self._eligible(vcpu, pcpu):
                    continue
                depth = self._depth(pcpu)
                if best_depth is None or depth < best_depth:
                    target, best_depth = pcpu, depth
            if target is None:
                raise SchedulerError(
                    "no pCPU in pool %r satisfies affinity of %s"
                    % (self.pool.name if self.pool else "?", vcpu.name)
                )
        self._runqs[target][priority].append(vcpu)
        vcpu.runq_pcpu = target
        return target

    # ------------------------------------------------------------------
    # scheduling entry points
    # ------------------------------------------------------------------
    def pick(self, pcpu):
        """Next vCPU for ``pcpu``: best priority from its own runqueue
        (yield-flagged vCPUs are passed over once), stealing from other
        runqueues only when the local one is empty."""
        vcpu = self._pick_from(pcpu, pcpu)
        if vcpu is not None:
            return vcpu
        # Local queue exhausted: steal rather than idle (work conserving).
        for other in self._runqs:
            if other is pcpu:
                continue
            vcpu = self._pick_from(other, pcpu)
            if vcpu is not None:
                self.steals += 1
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.emit(
                        "sched_steal",
                        vcpu=vcpu.name,
                        from_pcpu=other.info.index,
                        to_pcpu=pcpu.info.index,
                    )
                return vcpu
        return None

    def _pick_from(self, owner, runner):
        """Take the best eligible vCPU from ``owner``'s runqueue for
        ``runner`` to execute.

        Yield-flag semantics follow csched_vcpu_yield: a yielding vCPU
        is inserted *behind its own priority class* — it defers to
        same-priority peers once, but still beats lower-priority vCPUs.
        (A spinner therefore keeps burning its share in spin/yield
        cycles instead of silently donating it to the other VM.)
        """
        queues = self._runqs.get(owner)
        if queues is None:
            return None
        for priority in _PRIORITIES:
            queue = queues[priority]
            flagged = None
            skipped = []
            for position, vcpu in enumerate(queue):
                if not self._eligible(vcpu, runner):
                    continue
                if vcpu.yield_flag:
                    skipped.append(vcpu)
                    if flagged is None:
                        flagged = vcpu
                    continue
                del queue[position]
                vcpu.runq_pcpu = None
                # Same-priority vCPUs we passed over were "skipped once".
                for passed in skipped:
                    passed.yield_flag = False
                return vcpu
            if flagged is not None:
                queue.remove(flagged)
                flagged.runq_pcpu = None
                flagged.yield_flag = False
                return flagged
        return None

    def enqueue(self, vcpu, boost=False, yielded=False):
        """Queue a runnable vCPU and tickle a pCPU for it."""
        # Xen boosts a waking vCPU whose priority is (still) UNDER; the
        # priority label is sticky between accounting points, so a vCPU
        # that slept before burning through its credits keeps its boost
        # eligibility even if the balance dipped to zero.
        eligible = vcpu.credits > 0 or vcpu.priority in (BOOST, UNDER)
        if boost and eligible:
            priority = BOOST
        else:
            priority = UNDER if vcpu.credits > 0 else OVER
        vcpu.priority = priority
        vcpu.yield_flag = yielded
        tracer = self.tracer
        trace_on = tracer is not None and tracer.enabled
        # Prefer an idle pCPU outright (it can run us immediately).
        for position, pcpu in enumerate(self._idle):
            if self._eligible(vcpu, pcpu):
                del self._idle[position]
                self._runqs[pcpu][priority].append(vcpu)
                vcpu.runq_pcpu = pcpu
                if trace_on:
                    if priority == BOOST:
                        tracer.emit(
                            "sched_boost", vcpu=vcpu.name, pcpu=pcpu.info.index
                        )
                    tracer.emit(
                        "sched_tickle",
                        vcpu=vcpu.name,
                        pcpu=pcpu.info.index,
                        why="idle",
                    )
                pcpu.tickle()
                return
        target = self._place(vcpu, priority)
        if trace_on and priority == BOOST:
            tracer.emit("sched_boost", vcpu=vcpu.name, pcpu=target.info.index)
        if priority == BOOST:
            current = target.current
            if (
                current is not None
                and not target.preempt_requested
                and current.priority is not None
                and current.priority > BOOST
            ):
                if trace_on:
                    tracer.emit(
                        "sched_tickle",
                        vcpu=vcpu.name,
                        pcpu=target.info.index,
                        why="boost_preempt",
                    )
                target.request_preempt()

    def requeue(self, vcpu, yielded=False):
        """Re-queue after a slice end or yield (no boost — boost is
        consumed by being scheduled once)."""
        self.enqueue(vcpu, boost=False, yielded=yielded)

    def wake(self, vcpu):
        """Queue a vCPU waking from blocked: the BOOST path."""
        self.enqueue(vcpu, boost=True)

    def remove(self, vcpu):
        """Pull a queued vCPU out (migration to the micro pool).

        Returns ``True`` when the vCPU was found in a runqueue.
        """
        owner = vcpu.runq_pcpu
        candidates = [owner] if owner in self._runqs else list(self._runqs)
        for pcpu in candidates:
            queues = self._runqs[pcpu]
            for priority in _PRIORITIES:
                try:
                    queues[priority].remove(vcpu)
                except ValueError:
                    continue
                vcpu.runq_pcpu = None
                return True
        return False

    def queued(self):
        return [
            vcpu
            for queues in self._runqs.values()
            for priority in _PRIORITIES
            for vcpu in queues[priority]
        ]

    def queue_depth(self):
        return sum(self._depth(pcpu) for pcpu in self._runqs)

    def best_waiting_priority(self, pcpu):
        """Best priority queued on ``pcpu``'s local runqueue; the tick
        uses it to preempt an OVER vCPU when something better waits."""
        queues = self._runqs.get(pcpu)
        if queues is None:
            return None
        for priority in _PRIORITIES:
            for vcpu in queues[priority]:
                if self._eligible(vcpu, pcpu):
                    return priority
        return None

    # ------------------------------------------------------------------
    # idling
    # ------------------------------------------------------------------
    def add_idle(self, pcpu):
        if pcpu not in self._idle:
            self._idle.append(pcpu)

    def remove_idle(self, pcpu):
        try:
            self._idle.remove(pcpu)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # credit accounting
    # ------------------------------------------------------------------
    def charge(self, vcpu, runtime):
        vcpu.credits -= runtime

    def account(self, domains, num_pcpus):
        """Periodic credit refill (one accounting period's worth of pCPU
        time, split by domain weight, then evenly inside the domain)."""
        total_weight = sum(d.weight for d in domains) or 1
        budget = self.period * num_pcpus
        for domain in domains:
            share = budget * domain.weight // total_weight
            if not domain.vcpus:
                continue
            per_vcpu = share // len(domain.vcpus)
            for vcpu in domain.vcpus:
                vcpu.credits = min(self.credit_cap, vcpu.credits + per_vcpu)
        self._rebucket_queued()

    def _rebucket_queued(self):
        """Refresh the priority class of queued vCPUs after an
        accounting refill (csched_acct updates every vCPU's priority,
        not just running ones -- otherwise a vCPU queued as OVER starves
        behind an UNDER co-runner forever)."""
        for queues in self._runqs.values():
            for priority in (UNDER, OVER):
                queue = queues[priority]
                for vcpu in list(queue):
                    wanted = UNDER if vcpu.credits > 0 else OVER
                    if wanted != priority:
                        queue.remove(vcpu)
                        queues[wanted].append(vcpu)
                        vcpu.priority = wanted

    def slice_for(self, vcpu):
        if self._rng is None or not self.slice_jitter:
            return self.slice
        spread = 1.0 + self.slice_jitter * (2.0 * self._rng.random() - 1.0)
        return int(self.slice * spread)


class MicroScheduler:
    """Micro-pool scheduler: per-pCPU runqueues capped at one vCPU
    (§5 of the paper), sub-millisecond slice, no boosting, no load
    balancing."""

    def __init__(self, sim, slice_ns):
        self.sim = sim
        self.slice = slice_ns
        self.pool = None
        self._slots = {}   # pcpu -> pending vcpu (not running yet)
        self._idle = []

    def register_pcpu(self, pcpu):
        self._slots.setdefault(pcpu, None)

    def unregister_pcpu(self, pcpu):
        """Drop a pCPU from the pool; returns any vCPU stranded in its
        slot so the caller can send it home."""
        self.remove_idle(pcpu)
        return self._slots.pop(pcpu, None)

    def has_free_slot(self):
        return any(v is None for v in self._slots.values())

    def free_slots(self):
        return sum(1 for v in self._slots.values() if v is None)

    def assign(self, vcpu):
        """Place a migrated vCPU into a free slot; returns ``False`` when
        every runqueue already holds its one allowed vCPU."""
        target = None
        for pcpu in self._idle:
            if self._slots.get(pcpu) is None:
                target = pcpu
                break
        if target is None:
            for pcpu, pending in self._slots.items():
                if pending is None and pcpu.current is None:
                    target = pcpu
                    break
        if target is None:
            for pcpu, pending in self._slots.items():
                if pending is None:
                    target = pcpu
                    break
        if target is None:
            return False
        self._slots[target] = vcpu
        if target in self._idle:
            self._idle.remove(target)
            target.tickle()
        return True

    def pick(self, pcpu):
        vcpu = self._slots.get(pcpu)
        if vcpu is not None:
            self._slots[pcpu] = None
        return vcpu

    def enqueue(self, vcpu, boost=False, yielded=False):  # noqa: ARG002
        raise SchedulerError("vCPUs cannot be enqueued directly on the micro pool")

    def remove(self, vcpu):
        for pcpu, pending in self._slots.items():
            if pending is vcpu:
                self._slots[pcpu] = None
                return True
        return False

    def add_idle(self, pcpu):
        if pcpu not in self._idle:
            self._idle.append(pcpu)

    def remove_idle(self, pcpu):
        try:
            self._idle.remove(pcpu)
        except ValueError:
            pass

    def charge(self, vcpu, runtime):
        # Credits are managed by the parent pool's master (per the
        # paper's implementation); the micro pool burns none.
        pass

    def slice_for(self, vcpu):
        return self.slice
