"""CPU pools.

Mirrors Xen's ``cpupool`` mechanism as the paper extends it: a *normal*
pool running the credit scheduler with the default 30 ms slice, and a
child *micro-sliced* pool with a 0.1 ms slice whose membership changes
at runtime. pCPUs move between pools at executor loop boundaries (a
running vCPU is preempted first).
"""

from ..errors import SchedulerError


class CpuPool:
    """A named set of pCPUs driven by one scheduler."""

    def __init__(self, name, scheduler):
        self.name = name
        self.scheduler = scheduler
        scheduler.pool = self
        self.pcpus = []

    @property
    def slice(self):
        return self.scheduler.slice

    def add_pcpu(self, pcpu):
        if pcpu in self.pcpus:
            raise SchedulerError("%s already in pool %s" % (pcpu, self.name))
        self.pcpus.append(pcpu)
        register = getattr(self.scheduler, "register_pcpu", None)
        if register is not None:
            register(pcpu)

    def remove_pcpu(self, pcpu):
        """Detach a pCPU; returns a stranded pending vCPU, if any."""
        try:
            self.pcpus.remove(pcpu)
        except ValueError:
            raise SchedulerError("%s not in pool %s" % (pcpu, self.name)) from None
        self.scheduler.remove_idle(pcpu)
        unregister = getattr(self.scheduler, "unregister_pcpu", None)
        if unregister is not None:
            return unregister(pcpu)
        return None

    def __len__(self):
        return len(self.pcpus)

    def __repr__(self):
        return "<CpuPool %s pcpus=%d>" % (self.name, len(self.pcpus))
