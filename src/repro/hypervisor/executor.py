"""pCPU executors.

Each physical CPU is a simulation process: it asks its pool's scheduler
for a vCPU, charges the world-switch cost, and then interprets the
vCPU's action stream (task programs and IRQ-context kernel work)
against shared guest state until the slice expires, the vCPU blocks, or
it yields. All VTD pathologies emerge here: a descheduled vCPU's
in-flight action (a held lock's critical section, an unacknowledged
shootdown) simply stays frozen until the vCPU runs again.

Hot-path notes (this module dominates the engine's per-event cost; see
``docs/performance.md``):

* Timer waits yield bare ``int`` delays — the engine's handle-level
  timer wait — instead of allocating a Timeout per chunk. The two
  spellings are byte-identical by construction.
* Actions dispatch through a class-keyed table (``_GEN_EXEC`` /
  ``_PLAIN_EXEC``); :meth:`PCpu._dispatch` remains as the fallback for
  Action subclasses.
* The short fixed-cost charges (world switch, lock release, wake) are
  inlined rather than delegated to a ``_charge`` sub-generator, saving
  a generator frame per action.
* The loops read ``sim._now`` directly; the ``now`` property shows up
  at these call rates.
"""

from math import ceil as _ceil

from ..errors import SimulationError
from ..guest import actions as act
from ..guest import spinlock as sl
from ..sim.events import Interrupt

#: Stop reasons returned by the executor to the hypervisor.
STOP_SLICE = "slice"          # time slice expired
STOP_PREEMPT = "preempt"      # tickled off for a BOOST vCPU / pool change
STOP_IDLE = "idle"            # guest has nothing to run (halt)
STOP_PARK = "park"            # pv_wait: parked lock waiter
STOP_PLE = "ple"              # pause-loop exit while spinning on a lock
STOP_IPI_WAIT = "ipi_wait"    # voluntary yield while awaiting IPI acks


class PCpu:
    """Executor bound to one physical CPU."""

    def __init__(self, hv, info):
        self.hv = hv
        self.sim = hv.sim
        self.info = info
        self.pool = None
        self.pending_pool = None
        self.current = None
        self.preempt_requested = False
        #: Hotplug (fault injection): ``offline_requested`` is the
        #: desired state, ``offline`` the actual one — the flip happens
        #: at the loop boundary, like pool changes.
        self.offline_requested = False
        self.offline = False
        self.proc = None
        tracer = hv.tracer
        self._trace_release = tracer.want("lock_release") if tracer is not None else None
        self.slice_end = 0
        self.idle_since = None
        self.busy_ns = 0
        self._last_vcpu = None

    def __repr__(self):
        return "<PCpu %d pool=%s cur=%s>" % (
            self.info.index,
            self.pool.name if self.pool else None,
            self.current.name if self.current else None,
        )

    # ------------------------------------------------------------------
    # external pokes
    # ------------------------------------------------------------------
    def tickle(self):
        """Wake this pCPU out of its idle wait."""
        if self.proc is not None and self.current is None:
            self.proc.interrupt(("tickle",))

    def request_preempt(self):
        """Ask the executor to deschedule its current vCPU ASAP."""
        self.preempt_requested = True
        if self.proc is not None:
            self.proc.interrupt(("preempt",))

    def interrupt_current(self, cause, vcpu):
        """Deliver a wait-breaking cause to the vCPU running here."""
        if self.current is vcpu and self.proc is not None:
            self.proc.interrupt(cause)

    def request_pool_change(self, pool):
        self.pending_pool = pool
        if self.current is not None:
            self.request_preempt()
        else:
            self.tickle()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def start(self):
        self.proc = self.sim.process(self._loop(), name="pcpu%d" % self.info.index)
        return self.proc

    def _loop(self):
        while True:
            if self.offline_requested:
                yield from self._offline_wait()
                continue
            if self.pending_pool is not None and self.pending_pool is not self.pool:
                self.hv.complete_pool_change(self)
            self.pending_pool = None
            vcpu = self.pool.scheduler.pick(self)
            if vcpu is None:
                yield from self._idle()
                continue
            yield from self._run(vcpu)

    def _offline_wait(self):
        """Leave the pool and park until brought back online."""
        self.hv.on_pcpu_offline(self)
        while self.offline_requested:
            try:
                yield self.sim.event(name="offline:pcpu%d" % self.info.index)
            except Interrupt:
                pass
        self.hv.on_pcpu_online(self)

    def _idle(self):
        scheduler = self.pool.scheduler
        scheduler.add_idle(self)
        self.idle_since = self.sim.now
        try:
            yield self.sim.event(name="idle:pcpu%d" % self.info.index)
        except Interrupt:
            pass
        finally:
            scheduler.remove_idle(self)
            self.idle_since = None

    def _charge(self, duration):
        """Burn uninterruptible pCPU time (world switches); interrupts
        land but only set flags consumed later."""
        sim = self.sim
        end = sim._now + duration
        while sim._now < end:
            try:
                yield end - sim._now
            except Interrupt:
                continue

    def _run(self, vcpu):
        sim = self.sim
        hv = self.hv
        self.preempt_requested = False
        if vcpu is self._last_vcpu:
            # Re-entering the vCPU we just ran (e.g. after a PLE yield
            # with no competitor): a VMEXIT/VMENTER round trip, not a
            # full world switch.
            cost = hv.costs.vmexit
        else:
            cost = hv.costs.ctx_switch
        end = sim._now + cost
        while sim._now < end:
            try:
                yield end - sim._now
            except Interrupt:
                pass
        polluted = self._last_vcpu is not None and self._last_vcpu is not vcpu
        self._last_vcpu = vcpu
        self.current = vcpu
        vcpu.pcpu = self
        vcpu.last_pcpu = self
        hv.mark_running(vcpu)
        vcpu.cache.on_schedule_in(sim._now, polluted=polluted)
        hv.stats.count_schedule(vcpu)
        started = sim._now
        self.slice_end = slice_end = started + self.pool.scheduler.slice_for(vcpu)
        guest_ctx_cost = hv.costs.guest_ctx_switch
        kernel_work = vcpu.kernel_work
        guest_pick = vcpu.guest_cpu.pick
        gen_exec = _GEN_EXEC
        plain_exec = _PLAIN_EXEC
        cls_compute = act.Compute
        cls_release = act.Release
        emit_release = self._trace_release
        cache_speed = vcpu.cache.speed
        stop = None
        while stop is None:
            if self.preempt_requested or self.pending_pool is not None:
                stop = (STOP_PREEMPT, None)
                break
            if sim._now >= slice_end:
                stop = (STOP_SLICE, None)
                break
            # Inlined vcpu.next_context(): IRQ work preempts tasks.
            if kernel_work:
                ctx = kernel_work[0]
                task = None
            else:
                task, switched = guest_pick()
                if task is None:
                    stop = (STOP_IDLE, None)
                    break
                ctx = task.context
                if switched:
                    vcpu.current_symbol = "schedule"
                    end = sim._now + guest_ctx_cost
                    while sim._now < end:
                        try:
                            yield end - sim._now
                        except Interrupt:
                            pass
            # Inlined ctx.peek() fast path: the in-flight action.
            action = ctx.current
            if action is None or action.done:
                action = ctx.peek()
            if action is None:
                # Exhausted context: IRQ work completes; a task exits.
                if task is None:
                    vcpu.finish_kernel_work(ctx)
                else:
                    hv.on_task_exit(vcpu, task)
                continue
            acls = action.__class__
            if acls is cls_compute:
                # Inlined _exec_compute (kept in sync with the method,
                # which still serves the _dispatch subclass fallback):
                # Compute dominates the action mix, and at this call
                # rate the generator frame per dispatch is measurable.
                remaining = action.remaining
                while True:
                    if self.preempt_requested or self.pending_pool is not None:
                        stop = (STOP_PREEMPT, None)
                        break
                    now = sim._now
                    if now >= slice_end:
                        stop = (STOP_SLICE, None)
                        break
                    if task is not None and kernel_work:
                        break
                    if action.user:
                        speed = cache_speed(now)
                        want = _ceil(remaining / speed)
                    else:
                        speed = 1.0
                        want = remaining
                    dt = slice_end - now
                    if want < dt:
                        dt = want
                    vcpu.current_symbol = action.symbol
                    interrupted = False
                    try:
                        yield dt
                    except Interrupt:
                        interrupted = True
                    elapsed = sim._now - now
                    if not interrupted and dt == want:
                        progressed = remaining
                    else:
                        progressed = min(remaining, int(elapsed * speed))
                        if progressed == 0 and elapsed > 0:
                            progressed = min(remaining, 1)
                    if task is not None:
                        task.ran_ns += elapsed
                        task.total_ns += elapsed
                    if progressed >= remaining:
                        action.remaining = 0
                        action.done = True
                        break
                    action.remaining = remaining = remaining - progressed
            elif acls is cls_release:
                # Inlined _exec_release (same sync caveat as above).
                lock = action.lock
                vcpu.current_symbol = action.symbol
                end = sim._now + 300
                while sim._now < end:
                    try:
                        yield end - sim._now
                    except Interrupt:
                        pass
                if emit_release is not None:
                    emit_release(vcpu=vcpu.name, lock=lock.name)
                grantee = lock.release(vcpu)
                if grantee is not None and lock.user_level:
                    self._futex_wake(vcpu, lock, grantee)
                action.done = True
            else:
                handler = gen_exec.get(acls)
                if handler is not None:
                    stop = yield from handler(self, vcpu, task, action)
                else:
                    handler = plain_exec.get(acls)
                    if handler is not None:
                        stop = handler(self, vcpu, task, action)
                    else:
                        stop = yield from self._dispatch(vcpu, task, action)
        runtime = sim._now - started
        self.busy_ns += runtime
        vcpu.cache.on_schedule_out(sim._now)
        vcpu.pcpu = None
        self.current = None
        self.preempt_requested = False
        hv.on_deschedule(vcpu, stop, runtime)

    # ------------------------------------------------------------------
    # action dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, vcpu, task, action):
        """isinstance-chain fallback for Action *subclasses* (the run
        loop dispatches exact classes through the tables below)."""
        if isinstance(action, act.Compute):
            return (yield from self._exec_compute(vcpu, task, action))
        if isinstance(action, act.Acquire):
            return (yield from self._exec_acquire(vcpu, task, action))
        if isinstance(action, act.Release):
            return (yield from self._exec_release(vcpu, task, action))
        if isinstance(action, act.Shootdown):
            return (yield from self._exec_shootdown(vcpu, task, action))
        if isinstance(action, act.Wake):
            return (yield from self._exec_wake(vcpu, task, action))
        if isinstance(action, act.SmpCallSingle):
            return (yield from self._exec_smp_call(vcpu, task, action))
        if isinstance(action, act.Sleep):
            return self._exec_sleep(vcpu, task, action)
        if isinstance(action, act.GYield):
            return self._exec_gyield(vcpu, task, action)
        if isinstance(action, act.Emit):
            return (yield from self._exec_emit(vcpu, task, action))
        raise SimulationError("unknown action %r" % (action,))

    def _exec_compute(self, vcpu, task, action):
        sim = self.sim
        slice_end = self.slice_end
        while not action.done:
            # Inlined deschedule/IRQ checks (the old _should_break).
            if self.preempt_requested or self.pending_pool is not None:
                return (STOP_PREEMPT, None)
            now = sim._now
            if now >= slice_end:
                return (STOP_SLICE, None)
            if task is not None and vcpu.kernel_work:
                return None
            remaining = action.remaining
            if action.user:
                speed = vcpu.cache.speed(now)
                want = _ceil(remaining / speed)
            else:
                speed = 1.0
                want = remaining
            dt = slice_end - now
            if want < dt:
                dt = want
            vcpu.current_symbol = action.symbol
            interrupted = False
            try:
                yield dt
            except Interrupt:
                interrupted = True
            elapsed = sim._now - now
            if not interrupted and dt == want:
                progressed = remaining
            else:
                progressed = min(remaining, int(elapsed * speed))
                if progressed == 0 and elapsed > 0:
                    progressed = min(remaining, 1)
            action.consume(progressed)
            if task is not None:
                task.ran_ns += elapsed
                task.total_ns += elapsed
        return None

    def _exec_acquire(self, vcpu, task, action):
        sim = self.sim
        lock = action.lock
        if lock.granted_to(vcpu):
            lock.finish_grant(vcpu)
            self._finish_lock_wait(vcpu, lock, action)
            return None
        if action.wait_started is None and lock.try_acquire(vcpu):
            action.done = True
            return None
        waiter = lock.add_waiter(vcpu)
        if action.wait_started is None:
            action.wait_started = sim._now
        ple_budget = self.hv.ple.spin_budget()
        while True:
            if waiter.granted:
                lock.finish_grant(vcpu)
                self._finish_lock_wait(vcpu, lock, action)
                return None
            if self.preempt_requested or self.pending_pool is not None:
                waiter.state = sl.WAITING
                return (STOP_PREEMPT, None)
            if sim._now >= self.slice_end:
                waiter.state = sl.WAITING
                return (STOP_SLICE, None)
            if task is not None and vcpu.kernel_work:
                waiter.state = sl.WAITING
                return None
            slice_left = self.slice_end - sim._now
            budget = slice_left if ple_budget is None else min(ple_budget, slice_left)
            waiter.state = sl.SPINNING
            vcpu.current_symbol = action.symbol
            start = sim._now
            interrupted = False
            try:
                yield budget
            except Interrupt:
                interrupted = True
            if task is not None:
                elapsed = sim._now - start
                task.ran_ns += elapsed
                task.total_ns += elapsed
            if interrupted:
                continue
            if waiter.granted:
                continue
            if ple_budget is not None and budget == ple_budget:
                # Full PLE window elapsed: PAUSE-loop VMEXIT. The pv
                # slowpath parks after its spin rounds are exhausted; a
                # user-level mutex futex-sleeps the task instead so the
                # vCPU stays available for other guest work.
                action.spun += 1
                if action.spun >= self.hv.pv_spin_rounds:
                    action.spun = 0
                    if lock.user_level and task is not None:
                        waiter.state = sl.FUTEX
                        waiter.task = task
                        if waiter.waitq is None:
                            from ..guest.waitqueue import WaitQueue

                            waiter.waitq = WaitQueue(name="futex:%s" % lock.name)
                        vcpu.current_symbol = None
                        vcpu.guest_cpu.sleep(task, waiter.waitq)
                        return None
                    waiter.state = sl.PARKED
                    return (STOP_PARK, lock)
                waiter.state = sl.WAITING
                return (STOP_PLE, lock)
            waiter.state = sl.WAITING
            return (STOP_SLICE, None)

    def _finish_lock_wait(self, vcpu, lock, action):
        action.done = True
        if action.wait_started is not None:
            kernel = vcpu.domain.kernel
            kernel.record_lock_wait(lock, self.sim.now - action.wait_started, vcpu=vcpu)

    def _exec_release(self, vcpu, task, action):
        sim = self.sim
        lock = action.lock
        vcpu.current_symbol = action.symbol
        end = sim._now + 300
        while sim._now < end:
            try:
                yield end - sim._now
            except Interrupt:
                pass
        emit = self._trace_release
        if emit is not None:
            emit(vcpu=vcpu.name, lock=lock.name)
        grantee = lock.release(vcpu)
        if grantee is not None and lock.user_level:
            self._futex_wake(vcpu, lock, grantee)
        action.done = True
        return None

    def _futex_wake(self, vcpu, lock, grantee):
        """futex wake: make the sleeping task runnable (cross-vCPU wakes
        ride a fire-and-forget reschedule IPI)."""
        waiter = lock.waiter(grantee)
        if waiter is not None and waiter.state == sl.FUTEX:
            woken = waiter.task
            waiter.waitq.discard_sleeper(woken)
            woken.sleeping_on = None
            if woken.vcpu is vcpu:
                vcpu.guest_cpu.enqueue(woken)
            else:
                vcpu.domain.kernel.send_resched_ipi(vcpu, woken, self.sim._now)

    def _exec_shootdown(self, vcpu, task, action):
        sim = self.sim
        kernel = vcpu.domain.kernel
        if action.op is None:
            vcpu.current_symbol = "native_flush_tlb_others"
            yield from self._charge(kernel.costs.tlb_flush_local)
            action.op = kernel.tlb.start(vcpu, sim._now)
            action.wait_started = sim._now
        op = action.op
        stop = yield from self._await_ipi(vcpu, task, action, op)
        return stop

    def _exec_wake(self, vcpu, task, action):
        sim = self.sim
        kernel = vcpu.domain.kernel
        if action.ipi_op is None:
            vcpu.current_symbol = action.symbol
            yield from self._charge(700)
            woken = action.waitq.pop_sleeper()
            if woken is None:
                action.done = True
                return None
            woken.sleeping_on = None
            if woken.vcpu is vcpu:
                vcpu.guest_cpu.enqueue(woken)
                action.done = True
                return None
            action.ipi_op = kernel.send_resched_ipi(vcpu, woken, sim._now)
            action.wait_started = sim._now
            if not action.sync:
                action.done = True
                return None
        return (yield from self._await_ipi(vcpu, task, action, action.ipi_op))

    def _exec_smp_call(self, vcpu, task, action):
        sim = self.sim
        kernel = vcpu.domain.kernel
        if action.op is None:
            vcpu.current_symbol = action.symbol
            yield from self._charge(500)
            siblings = vcpu.domain.siblings_of(vcpu)
            if not siblings:
                action.done = True
                return None
            if action.target_index is not None:
                target = vcpu.domain.vcpus[action.target_index]
            else:
                target = siblings[vcpu.index % len(siblings)]
            action.op = kernel.send_call_function(vcpu, target, sim._now)
            action.wait_started = sim._now
        return (yield from self._await_ipi(vcpu, task, action, action.op))

    def _await_ipi(self, vcpu, task, action, op):
        """Spin until ``op`` completes, yielding the pCPU (an ``ipi``
        yield) every exhausted spin window — the
        ``smp_call_function_*`` wait behaviour."""
        sim = self.sim
        ple_budget = self.hv.ple.spin_budget()
        while not op.complete:
            if self.preempt_requested or self.pending_pool is not None:
                return (STOP_PREEMPT, None)
            if sim._now >= self.slice_end:
                return (STOP_SLICE, None)
            if task is not None and vcpu.kernel_work:
                return None
            slice_left = self.slice_end - sim._now
            budget = slice_left if ple_budget is None else min(ple_budget, slice_left)
            vcpu.current_symbol = action.symbol
            start = sim._now
            interrupted = False
            try:
                yield budget
            except Interrupt:
                interrupted = True
            if task is not None:
                elapsed = sim._now - start
                task.ran_ns += elapsed
                task.total_ns += elapsed
            if interrupted or op.complete:
                continue
            if ple_budget is not None and budget == ple_budget:
                return (STOP_IPI_WAIT, op)
            return (STOP_SLICE, None)
        action.done = True
        return None

    def _exec_sleep(self, vcpu, task, action):
        if task is None:
            raise SimulationError("Sleep action in IRQ context")
        vcpu.current_symbol = "schedule"
        vcpu.guest_cpu.sleep(task, action.waitq)
        action.done = True
        return None

    def _exec_gyield(self, vcpu, task, action):
        if task is not None:
            vcpu.guest_cpu.yield_current()
        action.done = True
        return None

    def _exec_emit(self, vcpu, task, action):
        if action.cost:
            vcpu.current_symbol = action.symbol
            yield from self._charge(action.cost)
        action.fn(self.sim.now)
        action.done = True
        return None


#: Class-keyed dispatch tables for the run loop: generator handlers are
#: driven with ``yield from``, plain handlers called directly. Exact
#: class match only — subclasses fall back to :meth:`PCpu._dispatch`.
_GEN_EXEC = {
    act.Compute: PCpu._exec_compute,
    act.Acquire: PCpu._exec_acquire,
    act.Release: PCpu._exec_release,
    act.Shootdown: PCpu._exec_shootdown,
    act.Wake: PCpu._exec_wake,
    act.SmpCallSingle: PCpu._exec_smp_call,
    act.Emit: PCpu._exec_emit,
}
_PLAIN_EXEC = {
    act.Sleep: PCpu._exec_sleep,
    act.GYield: PCpu._exec_gyield,
}
