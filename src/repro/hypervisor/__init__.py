"""Hypervisor: domains, vCPUs, credit scheduler, cpupools, executors."""

from .cpupool import CpuPool
from .credit import BOOST, OVER, UNDER, CreditScheduler, MicroScheduler
from .domain import Domain
from .executor import (
    STOP_IDLE,
    STOP_IPI_WAIT,
    STOP_PARK,
    STOP_PLE,
    STOP_PREEMPT,
    STOP_SLICE,
    PCpu,
)
from .hypervisor import Hypervisor, NullPolicy
from .stats import YIELD_CAUSES, YIELD_HALT, YIELD_IPI, YIELD_OTHER, YIELD_SPINLOCK, HvStats
from .vcpu import BLOCKED, RUNNABLE, RUNNING, VCpu

__all__ = [
    "BLOCKED",
    "BOOST",
    "CpuPool",
    "CreditScheduler",
    "Domain",
    "HvStats",
    "Hypervisor",
    "MicroScheduler",
    "NullPolicy",
    "OVER",
    "PCpu",
    "RUNNABLE",
    "RUNNING",
    "STOP_IDLE",
    "STOP_IPI_WAIT",
    "STOP_PARK",
    "STOP_PLE",
    "STOP_PREEMPT",
    "STOP_SLICE",
    "UNDER",
    "VCpu",
    "YIELD_CAUSES",
    "YIELD_HALT",
    "YIELD_IPI",
    "YIELD_OTHER",
    "YIELD_SPINLOCK",
]
