"""Hypervisor-wide event statistics.

Feeds three consumers: the paper's tables/figures (yield counts by
cause, Table 2 / Figure 7), the adaptive controller's profiling windows
(IPI/PLE/vIRQ deltas, Algorithm 1), and the test suite's invariants.
"""

from ..metrics.counters import CounterSet

#: Yield causes (Figure 7's decomposition).
YIELD_SPINLOCK = "spinlock"
YIELD_IPI = "ipi"
YIELD_HALT = "halt"
YIELD_OTHER = "other"

YIELD_CAUSES = (YIELD_IPI, YIELD_SPINLOCK, YIELD_HALT, YIELD_OTHER)


class HvStats:
    """Global counters plus per-domain mirrors.

    The tracer reference keeps the trace's ``yield``/``virq_inject``
    records emitted at exactly the counter increments, so an exported
    trace's yield decomposition always matches these counters record
    for record (the ``repro analyze`` round-trip guarantee).
    """

    def __init__(self, tracer=None):
        self.counters = CounterSet()
        self.tracer = tracer
        # Hoisted per-kind emit handles (tracer.want): None unless this
        # tracer records the kind.
        self._trace_yield = tracer.want("yield") if tracer is not None else None
        self._trace_virq = tracer.want("virq_inject") if tracer is not None else None

    # ------------------------------------------------------------------
    def count_yield(self, vcpu, cause):
        if cause not in YIELD_CAUSES:
            cause = YIELD_OTHER
        self.counters.inc("yield")
        self.counters.inc("yield_" + cause)
        domain = vcpu.domain
        domain.counters.inc("yield")
        domain.counters.inc("yield_" + cause)
        emit = self._trace_yield
        if emit is not None:
            emit(vcpu=vcpu.name, domain=domain.name, cause=cause)

    def count_vipi(self, src, dst, kind):
        self.counters.inc("vipi")
        self.counters.inc("vipi_" + kind)
        src.domain.counters.inc("vipi")

    def count_virq(self, vcpu):
        self.counters.inc("virq")
        vcpu.domain.counters.inc("virq")
        emit = self._trace_virq
        if emit is not None:
            emit(vcpu=vcpu.name, domain=vcpu.domain.name)

    def count_migration(self, vcpu):
        self.counters.inc("migrations")
        vcpu.domain.counters.inc("migrations")
        vcpu.migrations_to_micro += 1

    def count_schedule(self, vcpu):
        self.counters.inc("schedules")

    def count_preempt(self, vcpu):
        self.counters.inc("preempts")

    # ------------------------------------------------------------------
    # profiling windows (adaptive controller)
    # ------------------------------------------------------------------
    def mark_window(self):
        self.counters.mark_window()

    def window_events(self):
        """The urgent-event deltas Algorithm 1 inspects."""
        return {
            "ipi": self.counters.window_delta("yield_ipi"),
            "ple": self.counters.window_delta("yield_spinlock"),
            "irq": self.counters.window_delta("virq"),
        }

    def yields_by_cause(self, domain=None):
        source = domain.counters if domain is not None else self.counters
        return {cause: source.get("yield_" + cause) for cause in YIELD_CAUSES}

    def total_yields(self, domain=None):
        source = domain.counters if domain is not None else self.counters
        return source.get("yield")
