"""Domains (virtual machines)."""

from ..errors import ConfigError
from ..guest.kernel import GuestKernel
from ..metrics.counters import CounterSet
from .vcpu import VCpu


class Domain:
    """One VM: a set of vCPUs plus its guest kernel state."""

    def __init__(self, hv, name, num_vcpus, weight=256, symbols=None):
        if num_vcpus <= 0:
            raise ConfigError("domain %r needs at least one vCPU" % name)
        self.hv = hv
        self.name = name
        self.weight = weight
        self.counters = CounterSet()
        self.kernel = GuestKernel(self, hv.costs, symbols=symbols)
        self.kernel.attach_hypervisor(hv)
        self.vcpus = [
            VCpu(self, index, hv.costs.cache, now=hv.sim.now) for index in range(num_vcpus)
        ]
        self.workloads = []

    def vcpu(self, index):
        return self.vcpus[index]

    def siblings_of(self, vcpu):
        return [v for v in self.vcpus if v is not vcpu]

    def pin_all(self, pcpu_indices):
        """Restrict every vCPU of this domain to the given pCPUs."""
        mask = frozenset(pcpu_indices)
        for vcpu in self.vcpus:
            vcpu.affinity = mask

    def __repr__(self):
        return "<Domain %s %d vCPUs>" % (self.name, len(self.vcpus))
