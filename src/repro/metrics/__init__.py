"""Measurement substrate: counters, latency stats, lockstat, flow metrics."""

from .counters import CounterSet
from .histogram import Histogram, HistogramSet
from .jitter import FlowMetrics
from .latency import LatencyStat
from .lockstat import LockStat
from .report import ratio, render_table
from .timeline import Series, TimelineSampler, standard_probes

__all__ = [
    "CounterSet",
    "FlowMetrics",
    "Histogram",
    "HistogramSet",
    "LatencyStat",
    "LockStat",
    "Series",
    "TimelineSampler",
    "ratio",
    "render_table",
    "standard_probes",
]
