"""Latency statistics.

:class:`LatencyStat` keeps O(1) aggregates (count/total/min/max) plus a
bounded reservoir sample for percentile queries — enough for every
latency table in the paper (spinlock waits, TLB-sync completion times)
without storing full distributions.
"""

import random


class LatencyStat:
    """Streaming latency aggregate with reservoir percentiles."""

    def __init__(self, name="", reservoir=2048, seed=1):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._reservoir_size = reservoir
        self._sample = []
        self._rng = random.Random(seed)

    def record(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._sample) < self._reservoir_size:
            self._sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._sample[slot] = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Approximate ``q``-th percentile (0..100) from the reservoir."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        if len(ordered) == 1:
            return float(ordered[0])
        pos = (q / 100.0) * (len(ordered) - 1)
        low = int(pos)
        high = min(low + 1, len(ordered) - 1)
        frac = pos - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def merge(self, other):
        """Fold ``other``'s aggregates into this stat.

        The reservoir merge is approximate but *deterministic*: samples
        are pooled, sorted, and re-trimmed by picking evenly spaced
        order statistics. No RNG is involved, so merging ``a.merge(b)``
        and ``b.merge(a)`` yields identical percentiles — a random
        re-trim (the previous behaviour) made pooled percentiles depend
        on merge order and RNG state across otherwise-identical runs.
        """
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        pooled = sorted(self._sample + other._sample)
        size = self._reservoir_size
        if len(pooled) > size:
            # Evenly spaced order statistics keep both endpoints and
            # preserve the pooled quantile shape.
            last = len(pooled) - 1
            step = size - 1
            pooled = [pooled[(i * last) // step] for i in range(size)]
        self._sample = pooled

    def snapshot(self):
        """Plain-dict summary (ns units preserved) including reservoir
        tail percentiles, so experiment results can report latency
        tails, not just means."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return "<LatencyStat %s n=%d mean=%.1f>" % (self.name, self.count, self.mean)
