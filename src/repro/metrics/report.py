"""Plain-text table rendering for experiment output.

Benches print paper-style tables through :func:`render_table`; keeping
the formatter here means every experiment reports consistently.
"""


def _fmt_cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return "%.1f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)


def render_table(headers, rows, title=None):
    """Render an aligned ASCII table; ``rows`` are sequences matching
    ``headers``."""
    str_rows = [[_fmt_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ratio(new, old):
    """Safe ratio ``new/old`` (0 when the base is 0)."""
    return new / old if old else 0.0
