"""Time-series sampling of simulation state.

A :class:`TimelineSampler` runs as a simulation process and records
named probes at a fixed period — micro-pool size over time, per-domain
runnable/blocked counts, pCPU busyness. Used by the adaptive-sizing
example and by tests that assert *trajectories* rather than end states.
"""

from ..sim.time import ms


class Series:
    """One sampled series: parallel (time, value) lists."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name):
        self.name = name
        self.times = []
        self.values = []

    def append(self, time, value):
        self.times.append(time)
        self.values.append(value)

    def __len__(self):
        return len(self.values)

    def last(self):
        return self.values[-1] if self.values else None

    def max(self):
        return max(self.values) if self.values else None

    def min(self):
        return min(self.values) if self.values else None

    def mean(self):
        return sum(self.values) / len(self.values) if self.values else 0.0

    def changes(self):
        """(time, new_value) at every transition."""
        out = []
        previous = object()
        for time, value in zip(self.times, self.values):
            if value != previous:
                out.append((time, value))
                previous = value
        return out


class TimelineSampler:
    """Periodic sampler of named probes.

    Probes are ``name -> zero-arg callable``; each period the sampler
    records every probe's current value. Start it *after*
    ``hv.start()`` so the first sample sees a live system.
    """

    def __init__(self, sim, period=None):
        self.sim = sim
        self.period = ms(5) if period is None else period
        self._probes = {}
        self.series = {}
        self._proc = None

    def probe(self, name, fn):
        self._probes[name] = fn
        self.series[name] = Series(name)
        return self

    def start(self):
        if self._proc is None:
            self._proc = self.sim.process(self._loop(), name="timeline-sampler")
        return self

    def _loop(self):
        while True:
            now = self.sim.now
            for name, fn in self._probes.items():
                self.series[name].append(now, fn())
            yield int(self.period)

    def __getitem__(self, name):
        return self.series[name]


def standard_probes(sampler, hv):
    """Attach the probes most experiments care about."""
    sampler.probe("micro_cores", lambda: len(hv.micro_pool))
    sampler.probe(
        "running_vcpus",
        lambda: sum(1 for d in hv.domains for v in d.vcpus if v.state == "running"),
    )
    sampler.probe(
        "blocked_vcpus",
        lambda: sum(1 for d in hv.domains for v in d.vcpus if v.state == "blocked"),
    )
    for domain in hv.domains:
        sampler.probe(
            "%s_runnable" % domain.name,
            lambda d=domain: sum(1 for v in d.vcpus if v.state == "runnable"),
        )
    return sampler
