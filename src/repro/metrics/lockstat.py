"""Per-lock-class wait-time accounting, modelled on Linux ``lockstat``.

Table 4a of the paper reports average spinlock wait times per kernel
component (page reclaim, page allocator, dentry, runqueue); this module
collects exactly those rows.
"""

from .latency import LatencyStat


class LockStat:
    """Wait-time statistics keyed by lock class name."""

    def __init__(self):
        self._classes = {}

    def record_wait(self, lock_class, wait_ns):
        stat = self._classes.get(lock_class)
        if stat is None:
            stat = LatencyStat(name=lock_class)
            self._classes[lock_class] = stat
        stat.record(wait_ns)

    def stat(self, lock_class):
        return self._classes.get(lock_class)

    def classes(self):
        return sorted(self._classes)

    def mean_wait_us(self, lock_class):
        stat = self._classes.get(lock_class)
        return (stat.mean / 1000.0) if stat else 0.0

    def snapshot(self):
        return {name: stat.snapshot() for name, stat in self._classes.items()}
