"""iPerf-style network flow metrics.

``iperf`` reports *jitter* as the RFC 1889 (RTP) smoothed estimate of
transit-time variation: ``J += (|D| - J) / 16`` where ``D`` is the
difference between consecutive packets' one-way transit times. Table 4c
and Figure 9 of the paper report this jitter plus achieved throughput;
:class:`FlowMetrics` computes both at the point the application consumes
the data.
"""


class FlowMetrics:
    """Throughput + jitter for one flow.

    Two jitter figures are kept: ``final_jitter_ms`` is the RFC 1889
    EWMA at the last packet (exactly what iperf prints at test end,
    but it forgets bursts that happened earlier in the run), and
    ``jitter_ms`` — the headline number used by the tables — is the
    run-average of the same |transit deviation| samples, which captures
    the scheduling bursts the paper's mixed scenario produces no matter
    when the run ends.
    """

    def __init__(self, name=""):
        self.name = name
        self.bytes = 0
        self.packets = 0
        self.jitter_ns = 0.0
        self.first_at = None
        self.last_at = None
        self._last_transit = None
        self.max_transit = 0
        self._dev_total = 0
        self._dev_count = 0

    def on_delivery(self, now, sent_at, size):
        """Record one packet consumed by the application at ``now``."""
        self.bytes += size
        self.packets += 1
        if self.first_at is None:
            self.first_at = now
        self.last_at = now
        transit = now - sent_at
        if transit > self.max_transit:
            self.max_transit = transit
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            self.jitter_ns += (deviation - self.jitter_ns) / 16.0
            self._dev_total += deviation
            self._dev_count += 1
        self._last_transit = transit

    def throughput_mbps(self, duration_ns=None):
        """Achieved goodput in Mbit/s over ``duration_ns`` (defaults to
        first..last delivery)."""
        if duration_ns is None:
            if self.first_at is None or self.last_at is None or self.last_at <= self.first_at:
                return 0.0
            duration_ns = self.last_at - self.first_at
        if duration_ns <= 0:
            return 0.0
        return (self.bytes * 8.0) / (duration_ns / 1e9) / 1e6

    @property
    def jitter_ms(self):
        """Run-average |transit deviation| in ms (see class docstring)."""
        if not self._dev_count:
            return 0.0
        return (self._dev_total / self._dev_count) / 1e6

    @property
    def final_jitter_ms(self):
        """RFC 1889 EWMA at the last delivered packet."""
        return self.jitter_ns / 1e6

    def snapshot(self):
        return {
            "name": self.name,
            "packets": self.packets,
            "bytes": self.bytes,
            "jitter_ms": self.jitter_ms,
            "final_jitter_ms": self.final_jitter_ms,
            "max_transit_ms": self.max_transit / 1e6,
            "throughput_mbps": self.throughput_mbps(),
        }
