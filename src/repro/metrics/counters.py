"""Labelled counters with window snapshots.

The hypervisor counts events (yields by cause, IPIs, PLEs, vIRQs,
migrations); the adaptive controller reads *windowed* deltas of the same
counters, so :class:`CounterSet` supports cheap mark/delta windows.
"""

from collections import defaultdict


class CounterSet:
    """A dictionary of named integer counters."""

    def __init__(self):
        self._values = defaultdict(int)
        self._window_marks = {}

    def inc(self, name, amount=1):
        self._values[name] += amount

    def get(self, name, default=0):
        return self._values.get(name, default)

    def items(self):
        return sorted(self._values.items())

    def as_dict(self):
        return dict(self._values)

    def reset(self):
        """Zero every counter (end of a warmup phase)."""
        self._values.clear()
        self._window_marks = {}

    def mark_window(self):
        """Start a delta window over all counters (current values become
        the baseline for :meth:`window_delta`)."""
        self._window_marks = dict(self._values)

    def window_delta(self, name):
        """Counter increase since the last :meth:`mark_window`."""
        return self._values.get(name, 0) - self._window_marks.get(name, 0)

    def window_deltas(self):
        names = set(self._values) | set(self._window_marks)
        return {name: self.window_delta(name) for name in names}

    def __repr__(self):
        return "CounterSet(%r)" % (dict(self._values),)
