"""Fixed-bucket log2 histograms.

:class:`LatencyStat` answers percentile queries from a reservoir
sample, which is compact but *sampled*: two runs that record the same
values in a different order can report different tails. The paper's
latency tables (and the trace ``analyze`` tool) need percentiles that
export deterministically, so :class:`Histogram` buckets values by
``int(value).bit_length()`` — bucket 0 holds exactly ``{0}``, bucket
``i`` holds ``[2^(i-1), 2^i - 1]`` — and answers p50/p95/p99 by walking
the cumulative counts. The result is a pure function of the recorded
multiset: independent of insertion order, merge order, and RNG state.
"""

import math


class Histogram:
    """Streaming log2 histogram with deterministic percentiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name=""):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._buckets = {}  # bucket index -> count (sparse)

    @staticmethod
    def bucket_index(value):
        """Bucket for ``value``: 0 for 0, else ``bit_length`` (values are
        clamped at 0 — latencies are never negative by construction)."""
        value = int(value)
        return value.bit_length() if value > 0 else 0

    @staticmethod
    def bucket_bounds(index):
        """Inclusive ``(low, high)`` value range of bucket ``index``."""
        if index <= 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def record(self, value):
        value = max(0, int(value))
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self.bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """The ``q``-th percentile (0..100): the upper edge of the bucket
        containing the rank-``ceil(q/100 * count)`` value, clamped into
        the exact observed ``[min, max]`` range. Deterministic — no
        sampling involved."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil((q / 100.0) * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                _low, high = self.bucket_bounds(index)
                return float(min(max(high, self.min), self.max))
        return float(self.max)

    def merge(self, other):
        """Fold ``other`` into this histogram. Exact and commutative:
        bucket counts simply add."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    def buckets(self):
        """Sorted ``[(bucket_index, count), ...]`` (sparse)."""
        return sorted(self._buckets.items())

    @classmethod
    def from_snapshot(cls, snap):
        """Rebuild a mergeable histogram from its :meth:`snapshot` form.

        The inverse is exact for everything percentiles depend on
        (count, min, max, buckets); ``total`` is reconstructed from the
        snapshot mean — a pure function of the snapshot, so replaying
        and merging snapshots stays deterministic. This is how the
        fleet layer folds per-host ``virq_delivery`` histograms (which
        cross a JSON boundary per job) into one fleet-wide tail."""
        hist = cls(name=snap.get("name", ""))
        hist.count = int(snap.get("count", 0))
        total = snap.get("total")
        if total is None:
            total = round(float(snap.get("mean", 0.0)) * hist.count)
        hist.total = int(total)
        if hist.count:
            hist.min = int(snap.get("min", 0))
            hist.max = int(snap.get("max", 0))
        for index, count in snap.get("buckets", ()):
            index = int(index)
            hist._buckets[index] = hist._buckets.get(index, 0) + int(count)
        return hist

    def snapshot(self):
        """JSON-native summary with deterministic tail percentiles."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": [[index, count] for index, count in self.buckets()],
        }

    def __repr__(self):
        return "<Histogram %s n=%d mean=%.1f max=%s>" % (
            self.name,
            self.count,
            self.mean,
            self.max,
        )


class HistogramSet:
    """Named histograms created on first record (the hypervisor's
    latency instrumentation: spinlock waits, TLB-sync completion, IPI
    acks, vIRQ delivery)."""

    def __init__(self):
        self._hists = {}

    def get(self, name):
        hist = self._hists.get(name)
        if hist is None:
            hist = Histogram(name=name)
            self._hists[name] = hist
        return hist

    def record(self, name, value):
        self.get(name).record(value)

    def names(self):
        return sorted(self._hists)

    def snapshot(self):
        return {name: self._hists[name].snapshot() for name in self.names()}

    def reset(self):
        self._hists.clear()

    def __len__(self):
        return len(self._hists)
