"""Pause-Loop Exiting (PLE) model.

Intel/AMD processors count PAUSE instructions executed in a tight spin;
when the count inside a window exceeds a threshold the CPU raises a
VMEXIT (``EXIT_REASON_PAUSE_INSTRUCTION``) so the hypervisor can
deschedule the spinning vCPU. In time terms that contract is simply
"spinning continuously for longer than a window traps", which is how we
model it: the executor lets a vCPU spin for :attr:`window` nanoseconds
and then reports a PLE exit.
"""

from dataclasses import dataclass, field

from ..sim.time import us


@dataclass
class PleConfig:
    """PLE hardware configuration.

    The default ``ple_window`` is 4096 cycles — ~1.7 µs at the E5645's
    2.4 GHz; we charge 3 µs per spin round (window plus trap/re-entry
    overhead). Xen 4.x used the static hardware default, which is what
    produces the paper's tens-of-millions co-run yield counts (Table 2):
    any wait stretched by a preempted peer traps within microseconds.
    """

    enabled: bool = True
    window: int = field(default_factory=lambda: us(3))

    def spin_budget(self):
        """How long a vCPU may spin before the hardware traps, or ``None``
        when PLE is disabled (it spins until its slice expires)."""
        return self.window if self.enabled else None
