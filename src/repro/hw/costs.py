"""Hardware/hypervisor timing constants used by the execution models.

All values are integer nanoseconds. The defaults are in the range
reported for Nehalem/Westmere-class hardware (the paper's Xeon E5645)
and Xen 4.x software paths; every experiment can override them through
its :class:`~repro.experiments.scenarios.Scenario`.
"""

from dataclasses import dataclass, field

from ..sim.time import ms, us


@dataclass
class CacheModel:
    """Parameters of the cache-warmth model (see :mod:`repro.hw.cache`).

    ``max_penalty`` is the fraction of user-level IPC lost when running
    fully cold; warmth rises towards 1 with time constant ``warmup_tc``
    while on-CPU and decays with ``decay_tc`` while off-CPU (other vCPUs
    evict the working set).
    """

    max_penalty: float = 0.30
    warmup_tc: int = field(default_factory=lambda: ms(1))
    decay_tc: int = field(default_factory=lambda: ms(10))
    #: Fraction of warmth lost when another vCPU ran on the pCPU in
    #: between (working-set eviction).
    pollution: float = 0.5


@dataclass
class CostModel:
    """Fixed costs charged by the executors."""

    #: Hypervisor world switch when a pCPU changes vCPU.
    ctx_switch: int = field(default_factory=lambda: us(3))
    #: VMEXIT/VMENTER round trip (PLE exits, yield hypercalls).
    vmexit: int = field(default_factory=lambda: us(1))
    #: Wire latency of an IPI between cores.
    ipi_deliver: int = field(default_factory=lambda: us(1))
    #: CPU time consumed by an IPI handler at the target.
    ipi_handle: int = field(default_factory=lambda: us(2))
    #: Local TLB flush executed by a shootdown recipient.
    tlb_flush_local: int = field(default_factory=lambda: us(3))
    #: Hypervisor virtual-IRQ injection path.
    irq_inject: int = field(default_factory=lambda: us(1))
    #: Waking a halted vCPU (hypervisor wakeup path).
    halt_wake: int = field(default_factory=lambda: us(2))
    #: Guest-level task context switch.
    guest_ctx_switch: int = field(default_factory=lambda: us(2))
    cache: CacheModel = field(default_factory=CacheModel)
