"""Per-vCPU cache-warmth model.

A vCPU's user-level progress rate depends on how much of its working set
is resident. We track a scalar ``warmth`` in [0, 1]:

* while the vCPU runs, warmth approaches 1 exponentially with time
  constant ``warmup_tc`` (the working set is re-fetched);
* while it is descheduled, warmth decays towards 0 with time constant
  ``decay_tc`` (background eviction), and additionally takes a
  multiplicative ``pollution`` hit when a *different* vCPU ran on the
  same pCPU in between — footprint eviction does not need wall time,
  only a competing working set. This is the term that makes globally
  short time slices (the MICRO'14 approach) expensive for user code.

User compute executed at warmth ``w`` progresses at speed
``1 - max_penalty * (1 - w)``. Kernel services are charged at full speed
— they are short and mostly touch hot per-CPU state — which matches the
paper's observation that only *user-level* execution suffers from short
slices (the rationale for offloading just the kernel services to the
micro-sliced pool instead of shortening every slice as MICRO'14 did).
"""

import math


class CacheState:
    """Warmth tracker for one vCPU."""

    __slots__ = ("model", "warmth", "_stamp", "_running")

    def __init__(self, model, now=0):
        self.model = model
        self.warmth = 0.0
        self._stamp = now
        self._running = False

    def _advance(self, now):
        dt = now - self._stamp
        if dt <= 0:
            self._stamp = now
            return
        if self._running:
            factor = math.exp(-dt / self.model.warmup_tc)
            self.warmth = 1.0 - (1.0 - self.warmth) * factor
        else:
            self.warmth *= math.exp(-dt / self.model.decay_tc)
        self._stamp = now

    def on_schedule_in(self, now, polluted=False):
        self._advance(now)
        if polluted:
            self.warmth *= 1.0 - self.model.pollution
        self._running = True

    def on_schedule_out(self, now):
        self._advance(now)
        self._running = False

    def speed(self, now):
        """Current user-level progress rate in (0, 1]."""
        self._advance(now)
        return 1.0 - self.model.max_penalty * (1.0 - self.warmth)
