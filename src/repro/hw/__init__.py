"""Hardware models: topology, timing costs, cache warmth, PLE, NIC."""

from .cache import CacheState
from .costs import CacheModel, CostModel
from .nic import Nic, Packet
from .ple import PleConfig
from .topology import PCpuInfo, Topology

__all__ = [
    "CacheModel",
    "CacheState",
    "CostModel",
    "Nic",
    "PCpuInfo",
    "Packet",
    "PleConfig",
    "Topology",
]
