"""Physical CPU topology.

The paper's testbed is one socket of a dual Xeon E5645 (12 hardware
threads used, hyperthreading siblings and the second socket excluded).
The default topology mirrors that: a single socket with 12 pCPUs.
"""

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class PCpuInfo:
    """Identity of one physical CPU."""

    index: int
    socket: int = 0

    def __str__(self):
        return "pCPU%d" % self.index


class Topology:
    """An ordered collection of :class:`PCpuInfo`."""

    def __init__(self, num_pcpus=12, sockets=1):
        if num_pcpus <= 0:
            raise ConfigError("need at least one pCPU, got %d" % num_pcpus)
        if sockets <= 0 or num_pcpus % sockets != 0:
            raise ConfigError(
                "pCPU count %d not divisible into %d sockets" % (num_pcpus, sockets)
            )
        per_socket = num_pcpus // sockets
        self.pcpus = tuple(
            PCpuInfo(index=i, socket=i // per_socket) for i in range(num_pcpus)
        )

    def __len__(self):
        return len(self.pcpus)

    def __iter__(self):
        return iter(self.pcpus)

    def __getitem__(self, index):
        return self.pcpus[index]

    def socket_of(self, index):
        return self.pcpus[index].socket
