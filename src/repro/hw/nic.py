"""Network interface card model.

The NIC receives packets from an external traffic source (the iPerf
client model), queues them, and raises a physical IRQ towards the
hypervisor. Interrupts are coalesced the way NAPI-era NICs behave: while
an interrupt is pending/unserviced no further interrupt is raised; the
guest driver drains the whole RX queue per IRQ.
"""

from collections import deque
from dataclasses import dataclass, field

from ..sim.time import us


@dataclass
class Packet:
    """One frame on the wire."""

    flow: str
    size: int
    seq: int
    sent_at: int
    payload: dict = field(default_factory=dict)


class Nic:
    """RX-side NIC with interrupt coalescing and a bounded ring."""

    def __init__(self, sim, name="eth0", ring_size=4096, irq_latency=None):
        self.sim = sim
        self.name = name
        self.ring_size = ring_size
        self.irq_latency = us(2) if irq_latency is None else irq_latency
        self.rx_queue = deque()
        self.dropped = 0
        self.delivered = 0
        self._irq_pending = False
        self._irq_sink = None

    def attach_irq_sink(self, sink):
        """``sink(nic)`` is invoked (after ``irq_latency``) when the NIC
        raises a physical interrupt; the hypervisor registers here."""
        self._irq_sink = sink

    def receive(self, packet):
        """A packet arrives from the wire."""
        if len(self.rx_queue) >= self.ring_size:
            self.dropped += 1
            return False
        self.rx_queue.append(packet)
        self.delivered += 1
        if not self._irq_pending:
            self._irq_pending = True
            self.sim.schedule(self.irq_latency, self._raise_irq)
        return True

    def _raise_irq(self, _arg=None):
        if self._irq_sink is not None:
            self._irq_sink(self)

    def drain(self, budget=None):
        """Guest driver pulls up to ``budget`` packets (all if ``None``).

        Clears the pending-interrupt latch once the ring is empty so the
        next arrival raises a fresh IRQ.
        """
        taken = []
        while self.rx_queue and (budget is None or len(taken) < budget):
            taken.append(self.rx_queue.popleft())
        if not self.rx_queue:
            self._irq_pending = False
        else:
            # Budget exhausted with packets left: the poll loop re-arms
            # itself (NAPI re-poll) so the remainder is not stranded
            # until the next arrival.
            self._irq_pending = True
            self.sim.schedule(self.irq_latency, self._raise_irq)
        return taken

    @property
    def pending(self):
        return len(self.rx_queue)
