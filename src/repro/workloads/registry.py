"""Name → workload factory registry.

Scenarios and the CLI refer to workloads by the paper's benchmark
names; this registry instantiates the matching model with its calibrated
defaults. Factories accept an optional ``name`` plus model-specific
keyword overrides.
"""

from ..errors import ConfigError
from .cpu_bound import (
    CpuBoundWorkload,
    LookbusyWorkload,
    SpecCpuWorkload,
    SwaptionsWorkload,
    bzip2,
    perlbench,
    sjeng,
)
from .iperf import IperfWorkload
from .mosbench import EximWorkload, GmakeWorkload, MemcloneWorkload, PsearchyWorkload
from .userlock import UserLockWorkload
from .parsec import (
    BarrierComputeWorkload,
    DedupWorkload,
    TlbStormWorkload,
    VipsWorkload,
    blackscholes,
    bodytrack,
    raytrace,
    streamcluster,
)

_FACTORIES = {
    "swaptions": SwaptionsWorkload,
    "lookbusy": LookbusyWorkload,
    "cpu_bound": CpuBoundWorkload,
    "speccpu": SpecCpuWorkload,
    "perlbench": perlbench,
    "sjeng": sjeng,
    "bzip2": bzip2,
    "exim": EximWorkload,
    "gmake": GmakeWorkload,
    "psearchy": PsearchyWorkload,
    "memclone": MemcloneWorkload,
    "dedup": DedupWorkload,
    "vips": VipsWorkload,
    "tlb_storm": TlbStormWorkload,
    "blackscholes": blackscholes,
    "bodytrack": bodytrack,
    "streamcluster": streamcluster,
    "raytrace": raytrace,
    "barrier_compute": BarrierComputeWorkload,
    "iperf": IperfWorkload,
    "ulock": UserLockWorkload,
    "iperf_tcp": lambda **kw: IperfWorkload(mode="tcp", **kw),
    "iperf_udp": lambda **kw: IperfWorkload(mode="udp", **kw),
}


def available():
    """Sorted list of registered workload names."""
    return sorted(_FACTORIES)


def create(kind, **kwargs):
    """Instantiate the workload registered under ``kind``."""
    factory = _FACTORIES.get(kind)
    if factory is None:
        raise ConfigError(
            "unknown workload %r (available: %s)" % (kind, ", ".join(available()))
        )
    workload = factory(**kwargs)
    if workload.name in ("workload", workload.kind) and "name" not in kwargs:
        workload.name = kind
    return workload
