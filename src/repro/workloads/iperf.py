"""iPerf workload: an external traffic source driving the guest RX
stack.

The client is *not* a guest — it models the remote load generator on
the paper's 1 GbE testbed, so it runs as a plain simulation process.

* TCP mode: a fixed window of unacknowledged bytes; the client sends at
  line rate while the window is open and stalls otherwise, so achieved
  throughput is set by how quickly the guest's vIRQ → softirq → app
  pipeline turns data around (the paper's Table 4c / Figure 9
  mechanism).
* UDP mode: constant-rate sends, no acks; drops happen at the NIC ring.

Jitter is the RFC 1889 estimate computed where the *application*
consumes data, matching what iperf reports.
"""

from ..errors import WorkloadError
from ..hw.nic import Nic, Packet
from ..metrics.jitter import FlowMetrics
from ..sim.time import us
from ..guest.actions import Compute, Emit, Sleep
from .base import Workload

#: 1 Gbit/s line rate expressed as ns per byte.
GIGABIT_NS_PER_BYTE = 8.0


class IperfWorkload(Workload):
    """iPerf server task + external client process."""

    kind = "iperf"

    def __init__(
        self,
        name=None,
        mode="tcp",
        unit_bytes=16 * 1024,
        window_bytes=256 * 1024,
        udp_rate_mbps=800.0,
        wire_latency_us=20.0,
        server_vcpu=0,
        app_cost_per_unit_us=2.0,
        ring_size=64,
        duration_ns=None,
    ):
        super().__init__(name=name)
        if mode not in ("tcp", "udp"):
            raise WorkloadError("iperf mode must be tcp or udp, got %r" % mode)
        self.mode = mode
        self.unit_bytes = unit_bytes
        self.window_bytes = window_bytes
        self.udp_rate_mbps = udp_rate_mbps
        self.wire_latency = us(wire_latency_us)
        self.server_vcpu = server_vcpu
        self.app_cost = us(app_cost_per_unit_us)
        self.ring_size = ring_size
        self.duration_ns = duration_ns
        self.flow = None
        self.nic = None
        self.socket = None
        self._inflight = 0
        self._blocked = None
        self._seq = 0
        self._sim = None

    # ------------------------------------------------------------------
    def _build(self, domain, rng_hub):
        hv = domain.hv
        sim = hv.sim
        self._sim = sim
        flow_name = "%s.%s" % (domain.name, self.name)
        self.flow = FlowMetrics(name=flow_name)
        self.nic = Nic(sim, name="nic:%s" % flow_name, ring_size=self.ring_size)
        hv.attach_nic(self.nic, domain)
        if domain.kernel.net is None:
            domain.kernel.attach_netstack(self.nic, irq_vcpu_index=self.server_vcpu)
        self.socket = domain.kernel.net.socket(flow_name)
        vcpu = domain.vcpus[self.server_vcpu]
        self.spawn(vcpu, lambda: self._server(), "server")
        if self.mode == "tcp":
            sim.process(self._client_tcp(), name="%s.client" % flow_name)
        else:
            sim.process(self._client_udp(), name="%s.client" % flow_name)

    # ------------------------------------------------------------------
    # external client
    # ------------------------------------------------------------------
    def _line_gap(self):
        return int(self.unit_bytes * GIGABIT_NS_PER_BYTE)

    def _send_packet(self, sim):
        self._seq += 1
        packet = Packet(self.flow.name, self.unit_bytes, self._seq, sim.now)
        sim.schedule(self.wire_latency, lambda _a, p=packet: self.nic.receive(p))

    def _client_tcp(self):
        sim = self._sim
        while True:
            if self.duration_ns is not None and sim.now >= self.duration_ns:
                return
            if self._inflight + self.unit_bytes <= self.window_bytes:
                self._inflight += self.unit_bytes
                self._send_packet(sim)
                yield self._line_gap()
            else:
                self._blocked = sim.event(name="iperf.window")
                yield self._blocked
                self._blocked = None

    def _client_udp(self):
        sim = self._sim
        gap = max(
            self._line_gap(),
            int(self.unit_bytes * 8.0 / (self.udp_rate_mbps * 1e6) * 1e9),
        )
        while True:
            if self.duration_ns is not None and sim.now >= self.duration_ns:
                return
            self._send_packet(sim)
            yield gap

    def _on_ack(self, nbytes):
        self._inflight = max(0, self._inflight - nbytes)
        if self._blocked is not None and not self._blocked.triggered:
            self._blocked.trigger()

    # ------------------------------------------------------------------
    # guest-side server task
    # ------------------------------------------------------------------
    def _server(self):
        sock = self.socket
        while True:
            yield Sleep(sock.waitq)
            packets = sock.take()
            if not packets:
                continue
            yield Compute(self.app_cost * len(packets))

            def _consume(now, batch=packets):
                total = 0
                for packet in batch:
                    self.flow.on_delivery(now, packet.sent_at, packet.size)
                    total += packet.size
                if self.mode == "tcp":
                    self._on_ack(total)
                self.tick(len(batch))

            yield Emit(_consume, cost=us(0.5), symbol="do_syscall_64")

    # ------------------------------------------------------------------
    def reset_progress(self):
        super().reset_progress()
        if self.flow is not None:
            self.flow = FlowMetrics(name=self.flow.name)
        if self.nic is not None:
            self.nic.dropped = 0

    def extra_results(self):
        return {
            "throughput_mbps": self.flow.throughput_mbps() if self.flow else 0.0,
            "jitter_ms": self.flow.jitter_ms if self.flow else 0.0,
            "final_jitter_ms": self.flow.final_jitter_ms if self.flow else 0.0,
            "max_transit_ms": (self.flow.max_transit / 1e6) if self.flow else 0.0,
            "packets": self.flow.packets if self.flow else 0,
            "dropped": self.nic.dropped if self.nic else 0,
        }
