"""Workload abstraction.

A workload synthesises the *kernel-interaction profile* of one of the
paper's benchmarks: how often its threads compute in user space, take
which kernel locks for how long, trigger TLB shootdowns, sleep/wake, or
touch the network. What the real application computes is irrelevant to
the evaluation — only this profile reaches the hypervisor.

Progress is counted in work units (transactions, jobs, compute chunks);
experiments compare unit *rates* between configurations, which is how
the paper's "normalized execution time" and "throughput improvement"
series are reproduced.

Programs must interleave at least one ``Compute`` into every loop
iteration — a zero-cost action loop would spin the executor without
advancing simulated time.
"""

from ..errors import WorkloadError
from ..guest.task import GuestTask


class Workload:
    """Base class for all benchmark models."""

    #: Registry/scenario name; subclasses override.
    kind = "workload"

    def __init__(self, name=None):
        self.name = name or self.kind
        self.completed = 0.0
        self.domain = None
        self.tasks = []

    # ------------------------------------------------------------------
    def install(self, domain, rng_hub):
        """Create this workload's tasks inside ``domain``. Called once
        by the scenario builder, before the hypervisor starts."""
        if self.domain is not None:
            raise WorkloadError("workload %s already installed" % self.name)
        self.domain = domain
        domain.workloads.append(self)
        self._build(domain, rng_hub)

    def _build(self, domain, rng_hub):
        raise NotImplementedError

    # ------------------------------------------------------------------
    def spawn(self, vcpu, program_factory, label=""):
        """Create and register one guest task on ``vcpu``."""
        task = GuestTask(
            "%s.%s" % (self.name, label or str(len(self.tasks))), vcpu, program_factory
        )
        vcpu.guest_cpu.add_task(task)
        self.tasks.append(task)
        return task

    def tick(self, units=1.0):
        """Record completed work (called inline from programs)."""
        self.completed += units

    def progress(self):
        """Total completed work units."""
        return self.completed

    def reset_progress(self):
        """Zero the measurement state (end of a warmup phase)."""
        self.completed = 0.0

    def rate(self, duration_ns):
        """Work units per simulated second."""
        if duration_ns <= 0:
            return 0.0
        return self.progress() / (duration_ns / 1e9)

    def extra_results(self):
        """Workload-specific result payload (overridden by e.g. iperf)."""
        return {}

    def __repr__(self):
        return "<Workload %s done=%.0f>" % (self.name, self.completed)
