"""Synthetic benchmark models matching the paper's workload suite."""

from .base import Workload
from .cpu_bound import (
    CpuBoundWorkload,
    LookbusyWorkload,
    SpecCpuWorkload,
    SwaptionsWorkload,
)
from .iperf import IperfWorkload
from .mosbench import EximWorkload, GmakeWorkload, MemcloneWorkload, PsearchyWorkload
from .parsec import (
    BarrierComputeWorkload,
    DedupWorkload,
    TlbStormWorkload,
    VipsWorkload,
)
from .registry import available, create
from .userlock import UserLockWorkload
from .sync import Barrier, TokenRing

__all__ = [
    "Barrier",
    "BarrierComputeWorkload",
    "CpuBoundWorkload",
    "DedupWorkload",
    "EximWorkload",
    "GmakeWorkload",
    "IperfWorkload",
    "LookbusyWorkload",
    "MemcloneWorkload",
    "PsearchyWorkload",
    "SpecCpuWorkload",
    "SwaptionsWorkload",
    "TlbStormWorkload",
    "TokenRing",
    "UserLockWorkload",
    "VipsWorkload",
    "Workload",
    "available",
    "create",
]
