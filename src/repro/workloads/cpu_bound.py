"""CPU-bound workload models.

``swaptions`` (the paper's fixed co-runner: highest CPU utilisation in
PARSEC, negligible kernel time), ``lookbusy`` (the Figure 9 CPU hog),
and the single-threaded SPEC CPU2006 applications of Figure 8. All of
them compute in user space in chunks with only token kernel entries, so
their progress is governed purely by pCPU share and cache warmth.
"""

from ..guest.actions import Compute
from ..sim.time import us
from .base import Workload


class CpuBoundWorkload(Workload):
    """N threads of pure user computation."""

    kind = "cpu_bound"

    def __init__(
        self,
        name=None,
        threads=None,
        chunk_us=1000.0,
        chunk_jitter=0.10,
        syscall_every=0,
    ):
        super().__init__(name=name)
        self.threads = threads
        self.chunk_ns = us(chunk_us)
        self.chunk_jitter = chunk_jitter
        self.syscall_every = syscall_every

    def _build(self, domain, rng_hub):
        count = self.threads if self.threads is not None else len(domain.vcpus)
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(vcpu, lambda r=rng, v=vcpu: self._program(domain, r), str(index))

    def _program(self, domain, rng):
        kernel = domain.kernel
        iteration = 0
        while True:
            jitter = 1.0 + self.chunk_jitter * (2.0 * rng.random() - 1.0)
            yield Compute(int(self.chunk_ns * jitter))
            iteration += 1
            if self.syscall_every and iteration % self.syscall_every == 0:
                yield from kernel.syscall_overhead()
            self.tick()


class SwaptionsWorkload(CpuBoundWorkload):
    """PARSEC swaptions: one thread per vCPU, ~1 ms user chunks."""

    kind = "swaptions"

    def __init__(self, name=None, threads=None):
        super().__init__(name=name, threads=threads, chunk_us=1000.0)


class LookbusyWorkload(CpuBoundWorkload):
    """lookbusy: a single thread that never blocks (Figure 9's hog)."""

    kind = "lookbusy"

    def __init__(self, name=None):
        super().__init__(name=name, threads=1, chunk_us=500.0, chunk_jitter=0.0)


class SpecCpuWorkload(CpuBoundWorkload):
    """A SPEC CPU2006 component: single-threaded, user-dominated, with a
    sparse sprinkle of system calls (I/O of the reference inputs)."""

    kind = "speccpu"

    def __init__(self, name=None, chunk_us=2000.0):
        super().__init__(
            name=name, threads=1, chunk_us=chunk_us, chunk_jitter=0.05, syscall_every=8
        )


def perlbench(name="perlbench"):
    return SpecCpuWorkload(name=name, chunk_us=1800.0)


def sjeng(name="sjeng"):
    return SpecCpuWorkload(name=name, chunk_us=2200.0)


def bzip2(name="bzip2"):
    return SpecCpuWorkload(name=name, chunk_us=2000.0)
