"""MOSBENCH workload models: exim, gmake, psearchy, memclone.

Profiles follow the paper's §3 analysis and the MOSBENCH paper:

* **exim** — a mail server forking per message: short user bursts, hot
  dentry/page-allocator critical sections, and a constant stream of
  cross-vCPU wakeups (reschedule IPIs). Spinlock-yield dominated under
  consolidation; throughput metric.
* **gmake** — parallel kernel build: medium user bursts with frequent
  short critical sections across four kernel lock classes (Table 4a's
  rows) plus occasional address-space teardown. The canonical
  lock-holder-preemption victim.
* **psearchy** — parallel indexer: user compute, lock traffic, and a
  batched sleep/wake pipeline; throughput metric.
* **memclone** — microbenchmark of per-thread mmap+touch loops:
  page-allocator lock pressure with sparse shootdowns.
"""

from ..guest import mm
from ..guest.actions import Acquire, Compute, Release, Sleep, SmpCallSingle, Wake
from ..guest.spinlock import DENTRY, PAGE_ALLOC, PAGE_RECLAIM, RUNQUEUE
from ..guest.waitqueue import WaitQueue
from ..sim.time import us
from .base import Workload


def _expovariate(rng, mean_ns):
    """Exponential burst length, clamped to a sane band."""
    value = rng.expovariate(1.0 / mean_ns)
    return int(min(max(value, mean_ns * 0.1), mean_ns * 8))


class EximWorkload(Workload):
    """exim mail server: lock-heavy transactions chained by wakeups."""

    kind = "exim"

    def __init__(
        self,
        name=None,
        workers=None,
        user_us=25.0,
        hold_us=2.5,
        fanout=1,
        call_every=20,
    ):
        super().__init__(name=name)
        self.workers = workers
        self.user_ns = us(user_us)
        self.hold_ns = us(hold_us)
        self.fanout = fanout
        self.call_every = call_every
        self.inboxes = []

    def _build(self, domain, rng_hub):
        count = self.workers if self.workers is not None else len(domain.vcpus)
        self.inboxes = [WaitQueue(name="exim.inbox.%d" % i) for i in range(count)]
        # Seed the system: every worker starts with deliverable mail.
        for inbox in self.inboxes:
            inbox.pop_sleeper()
            inbox.pop_sleeper()
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(
                vcpu,
                lambda r=rng, i=index: self._worker(domain, r, i, count),
                str(index),
            )

    def _worker(self, domain, rng, index, count):
        kernel = domain.kernel
        dentry = kernel.lock(DENTRY)
        page_alloc = kernel.lock(PAGE_ALLOC)
        runqueue = kernel.lock(RUNQUEUE)
        iteration = 0
        while True:
            yield Sleep(self.inboxes[index])
            # Receive + parse (user), spool file creation (dentry +
            # page allocator), delivery bookkeeping (runqueue lock).
            yield Compute(_expovariate(rng, self.user_ns))
            yield from kernel.lock_section(dentry, self.hold_ns)
            yield Compute(_expovariate(rng, self.user_ns // 2))
            yield from kernel.lock_section(page_alloc, self.hold_ns)
            yield from kernel.lock_section(runqueue, self.hold_ns // 2 or 1)
            # Hand off follow-up messages to other workers (fork/exec ->
            # cross-vCPU reschedule IPIs).
            for step in range(1, self.fanout + 1):
                target = (index + step) % count
                yield Wake(self.inboxes[target])
            iteration += 1
            if self.call_every and iteration % self.call_every == 0:
                # Journal/timer sync: a synchronous cross-CPU call.
                yield SmpCallSingle()
            self.tick()


class GmakeWorkload(Workload):
    """gmake: parallel build jobs contending on kernel locks."""

    kind = "gmake"

    #: (lock class, relative weight) — the Table 4a components.
    LOCK_MIX = (
        (PAGE_ALLOC, 0.35),
        (DENTRY, 0.30),
        (RUNQUEUE, 0.20),
        (PAGE_RECLAIM, 0.15),
    )

    def __init__(self, name=None, jobs=None, user_us=90.0, hold_us=3.0, munmap_every=150):
        super().__init__(name=name)
        self.jobs = jobs
        self.user_ns = us(user_us)
        self.hold_ns = us(hold_us)
        self.munmap_every = munmap_every

    def _build(self, domain, rng_hub):
        count = self.jobs if self.jobs is not None else len(domain.vcpus)
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(vcpu, lambda r=rng: self._job(domain, r), str(index))

    def _pick_lock(self, kernel, rng):
        draw = rng.random()
        acc = 0.0
        for lock_class, weight in self.LOCK_MIX:
            acc += weight
            if draw <= acc:
                return kernel.lock(lock_class)
        return kernel.lock(self.LOCK_MIX[-1][0])

    def _job(self, domain, rng):
        kernel = domain.kernel
        user_ns = self.user_ns
        hold_ns = self.hold_ns
        iteration = 0
        while True:
            yield Compute(_expovariate(rng, user_ns))
            lock = self._pick_lock(kernel, rng)
            # Inlined kernel.lock_section: same action sequence, minus
            # a generator frame per section (gmake is the corun
            # benchmark's hot workload).
            yield Acquire(lock)
            yield Compute(hold_ns, symbol=lock.cs_symbol)
            yield Release(lock)
            iteration += 1
            if self.munmap_every and iteration % self.munmap_every == 0:
                # Process exit tears down the build job's address space.
                yield from mm.munmap(kernel)
            self.tick()


class PsearchyWorkload(Workload):
    """psearchy: indexing threads with lock traffic and batched
    sleep/wake phases."""

    kind = "psearchy"

    def __init__(self, name=None, threads=None, user_us=70.0, hold_us=3.0, batch=12):
        super().__init__(name=name)
        self.threads = threads
        self.user_ns = us(user_us)
        self.hold_ns = us(hold_us)
        self.batch = batch

    def _build(self, domain, rng_hub):
        count = self.threads if self.threads is not None else len(domain.vcpus)
        self.queues = [WaitQueue(name="psearchy.%d" % i) for i in range(count)]
        for queue in self.queues:
            queue.pop_sleeper()  # bank one token per stage
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(
                vcpu,
                lambda r=rng, i=index: self._thread(domain, r, i, count),
                str(index),
            )

    def _thread(self, domain, rng, index, count):
        kernel = domain.kernel
        dentry = kernel.lock(DENTRY)
        page_alloc = kernel.lock(PAGE_ALLOC)
        iteration = 0
        while True:
            yield Compute(_expovariate(rng, self.user_ns))
            lock = dentry if rng.random() < 0.5 else page_alloc
            yield from kernel.lock_section(lock, self.hold_ns)
            iteration += 1
            if iteration % self.batch == 0:
                # End of an indexing batch: hand results to the next
                # worker and wait for our next shard.
                yield Wake(self.queues[(index + 1) % count])
                yield Sleep(self.queues[index])
            self.tick()


class MemcloneWorkload(Workload):
    """memclone: threads repeatedly mmap and touch memory.

    Modelled through the page-allocator spinlock path (the paper: the
    benchmark "also suffers from the lock holder preemption problem").
    An ``mmap_sem``-centric variant exists in the library
    (``mm.mmap_locked``) but is deliberately not used here: rwsem-writer
    preemption puts every waiter to sleep, which is outside the paper's
    whitelist coverage and does not match memclone's measured +91%
    improvement."""

    kind = "memclone"

    def __init__(self, name=None, threads=None, touch_us=140.0, flush_every=64):
        super().__init__(name=name)
        self.threads = threads
        self.touch_ns = us(touch_us)
        self.flush_every = flush_every

    def _build(self, domain, rng_hub):
        count = self.threads if self.threads is not None else len(domain.vcpus)
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(vcpu, lambda r=rng: self._thread(domain, r), str(index))

    def _thread(self, domain, rng):
        kernel = domain.kernel
        iteration = 0
        while True:
            yield from mm.mmap(kernel)
            yield Compute(_expovariate(rng, self.touch_ns))
            iteration += 1
            if self.flush_every and iteration % self.flush_every == 0:
                yield from mm.munmap(kernel)
            self.tick()
