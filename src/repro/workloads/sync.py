"""Synchronisation helpers used by workload programs."""

from ..guest.actions import Sleep, Wake
from ..guest.waitqueue import WaitQueue


class Barrier:
    """An N-party barrier built from a wait queue: the last arriver
    wakes everyone (one reschedule IPI per remote sleeper — the SMP
    wakeup traffic multi-threaded PARSEC apps generate)."""

    def __init__(self, parties, name="barrier"):
        self.parties = parties
        self.waitq = WaitQueue(name=name)
        self._arrived = 0
        self.generations = 0

    def arrive(self, sync=False):
        """``yield from`` this inside a task program."""
        self._arrived += 1
        if self._arrived < self.parties:
            yield Sleep(self.waitq)
        else:
            self._arrived = 0
            self.generations += 1
            for _ in range(self.parties - 1):
                yield Wake(self.waitq, sync=sync)


class TokenRing:
    """A ring of wait queues with one circulating token per stage; gives
    pipeline workloads (dedup's stages) periodic sleep/wake behaviour
    without ever deadlocking."""

    def __init__(self, stages, name="ring", tokens_per_stage=1):
        self.queues = [WaitQueue(name="%s.%d" % (name, i)) for i in range(stages)]
        for queue in self.queues:
            for _ in range(tokens_per_stage):
                queue.pop_sleeper()  # banks a token

    def pass_token(self, stage, sync=False):
        """Wake the next stage, then wait for our own token."""
        nxt = (stage + 1) % len(self.queues)
        yield Wake(self.queues[nxt], sync=sync)
        yield Sleep(self.queues[stage])
