"""PARSEC workload models.

* **dedup** and **vips** manage a shared address space with intense
  ``mmap``/``munmap`` traffic — every unmap is a TLB shootdown across
  all active sibling vCPUs (the paper: dedup spends 89% of co-run
  cycles waiting for shootdown acks). dedup additionally has pipeline
  stages that sleep/wake, producing the halt yields visible in
  Figure 7.
* **blackscholes**, **bodytrack**, **streamcluster**, **raytrace** are
  the Figure 8 "unaffected" apps: user-dominated compute with periodic
  barriers.
"""

from ..guest import mm
from ..guest.actions import Compute
from ..sim.time import us
from .base import Workload
from .mosbench import _expovariate
from .sync import Barrier, TokenRing


class TlbStormWorkload(Workload):
    """Shared-address-space threads whose unmaps shoot down TLBs."""

    kind = "tlb_storm"

    def __init__(
        self,
        name=None,
        threads=None,
        user_us=250.0,
        flush_every=2,
        pipeline_every=12,
        map_hold_us=3.0,
    ):
        super().__init__(name=name)
        self.threads = threads
        self.user_ns = us(user_us)
        self.flush_every = flush_every
        self.pipeline_every = pipeline_every
        self.map_hold_ns = us(map_hold_us)
        self.ring = None

    def _build(self, domain, rng_hub):
        count = self.threads if self.threads is not None else len(domain.vcpus)
        if self.pipeline_every:
            self.ring = TokenRing(count, name="%s.ring" % self.name)
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(
                vcpu,
                lambda r=rng, i=index: self._thread(domain, r, i),
                str(index),
            )

    def _thread(self, domain, rng, index):
        kernel = domain.kernel
        iteration = 0
        while True:
            yield Compute(_expovariate(rng, self.user_ns))
            iteration += 1
            if iteration % self.flush_every == 0:
                # Window rotation: unmap the previous chunk (shootdown)
                # and map the next one.
                yield from mm.munmap(kernel, hold_ns=self.map_hold_ns)
                yield from mm.mmap(kernel, hold_ns=self.map_hold_ns)
            if self.pipeline_every and iteration % self.pipeline_every == 0:
                yield from self.ring.pass_token(index)
            self.tick()


class DedupWorkload(TlbStormWorkload):
    """PARSEC dedup (native input): heaviest shootdown pressure plus a
    sleep/wake pipeline."""

    kind = "dedup"

    def __init__(self, name=None, threads=None):
        super().__init__(
            name=name,
            threads=threads,
            user_us=220.0,
            flush_every=2,
            pipeline_every=3,
        )


class VipsWorkload(TlbStormWorkload):
    """PARSEC vips: milder shootdown rate, fewer sleeps."""

    kind = "vips"

    def __init__(self, name=None, threads=None):
        super().__init__(
            name=name,
            threads=threads,
            user_us=350.0,
            flush_every=5,
            pipeline_every=0,
        )


class BarrierComputeWorkload(Workload):
    """User-dominated data-parallel app with periodic barriers (the
    Figure 8 PARSEC apps)."""

    kind = "barrier_compute"

    def __init__(self, name=None, threads=None, chunk_us=1500.0, barrier_every=30):
        super().__init__(name=name)
        self.threads = threads
        self.chunk_ns = us(chunk_us)
        self.barrier_every = barrier_every
        self.barrier = None

    def _build(self, domain, rng_hub):
        count = self.threads if self.threads is not None else len(domain.vcpus)
        self.barrier = Barrier(count, name="%s.barrier" % self.name)
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(vcpu, lambda r=rng: self._thread(domain, r), str(index))

    def _thread(self, domain, rng):
        iteration = 0
        while True:
            yield Compute(_expovariate(rng, self.chunk_ns))
            iteration += 1
            if self.barrier_every and iteration % self.barrier_every == 0:
                yield from self.barrier.arrive()
            self.tick()


def blackscholes(name="blackscholes"):
    return BarrierComputeWorkload(name=name, chunk_us=1800.0, barrier_every=40)


def bodytrack(name="bodytrack"):
    return BarrierComputeWorkload(name=name, chunk_us=1200.0, barrier_every=25)


def streamcluster(name="streamcluster"):
    return BarrierComputeWorkload(name=name, chunk_us=900.0, barrier_every=20)


def raytrace(name="raytrace"):
    return BarrierComputeWorkload(name=name, chunk_us=2000.0, barrier_every=50)
