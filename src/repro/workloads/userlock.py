"""A user-space-lock workload for the §4.4 extension.

Threads serialize on a process-level mutex (pthread-mutex style:
user-space fast path, kernel sleep on contention — modelled with the
same queue/park machinery as kernel locks, but with the critical
section's instruction pointer in *user* space). The baseline scheme is
blind to it: a preempted holder's IP resolves to no kernel symbol, so
nothing is accelerated. With the application's critical region
registered (``enable_user_critical`` + ``registry.register``), the
user-aware detector recognises and accelerates it.
"""

from ..core.usercrit import enable_user_critical
from ..guest.actions import Compute
from ..guest.spinlock import LockClass
from ..sim.time import us
from .base import Workload
from .mosbench import _expovariate


class UserLockWorkload(Workload):
    """N threads contending on one registered user-level mutex.

    With ``background=True`` (default) every hosting vCPU also runs a
    compute task, so the VM consumes its full CPU share: its vCPUs go
    OVER and get preempted at scheduler ticks like any busy guest —
    sometimes inside the user critical section. That is the
    lock-holder-preemption exposure the §4.4 extension targets (a VM
    whose lock threads merely park would never have a holder caught
    off-CPU)."""

    kind = "ulock"

    def __init__(self, name=None, threads=None, user_us=80.0, hold_us=4.0,
                 region="ulock_cs", background=True):
        super().__init__(name=name)
        self.threads = threads
        self.user_ns = us(user_us)
        self.hold_ns = us(hold_us)
        self.region = region
        self.background = background
        self.lock = None

    def _build(self, domain, rng_hub):
        registry = enable_user_critical(domain)
        registry.register(self.region)
        symbol = "user:%s" % self.region
        lock_class = LockClass(
            "user_mutex", symbol, symbol, user_level=True, spin_symbol=None
        )
        self.lock = domain.kernel.lock(lock_class)
        count = self.threads if self.threads is not None else len(domain.vcpus)
        for index in range(count):
            vcpu = domain.vcpus[index % len(domain.vcpus)]
            rng = rng_hub.stream("%s.%s.%d" % (domain.name, self.name, index))
            self.spawn(vcpu, lambda r=rng: self._thread(domain, r), str(index))
            if self.background:
                bg_rng = rng_hub.stream("%s.%s.bg%d" % (domain.name, self.name, index))
                self.spawn(vcpu, lambda r=bg_rng: self._background(r), "bg%d" % index)

    def _thread(self, domain, rng):
        kernel = domain.kernel
        while True:
            yield Compute(_expovariate(rng, self.user_ns))
            yield from kernel.lock_section(self.lock, self.hold_ns)
            self.tick()

    def _background(self, rng):
        while True:
            yield Compute(_expovariate(rng, us(500)))
