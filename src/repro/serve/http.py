"""Minimal asyncio HTTP/1.1 server — standard library only.

``repro serve`` must not grow a runtime dependency, so this module
implements the small slice of HTTP/1.1 the service needs on top of
``asyncio.start_server``:

* request parsing (request line, headers, ``Content-Length`` bodies,
  bounded by :data:`MAX_BODY_BYTES`);
* fixed-length responses with keep-alive, and **streaming** responses
  via chunked transfer encoding (the NDJSON/SSE job event streams);
* defensive limits everywhere — an oversized body is a 413, a
  malformed request a 400, and an idle keep-alive connection is closed
  after :data:`IDLE_TIMEOUT_SECONDS` — so one misbehaving client can
  never wedge the accept loop.

The application above this (:mod:`repro.serve.app`) supplies one
``async handler(request) -> Response`` callable; routing, metrics, and
job semantics all live there. Nothing in this module knows what a
simulation is.
"""

import asyncio
import json
from urllib.parse import parse_qs, unquote, urlsplit

#: Request bodies larger than this are refused with 413 (a job spec is
#: a few KB; a megabyte of JSON is a client bug or an attack).
MAX_BODY_BYTES = 1 << 20

#: Maximum bytes in the request line + one header line.
MAX_LINE_BYTES = 16 * 1024

#: Keep-alive connections idle longer than this are closed.
IDLE_TIMEOUT_SECONDS = 120.0

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request-level protocol problem, rendered as its status code."""

    def __init__(self, status, detail):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body", "client")

    def __init__(self, method, path, query, headers, body, client):
        self.method = method
        self.path = path
        self.query = query  # {name: [values]}
        self.headers = headers  # lower-cased names
        self.body = body
        self.client = client  # peer address string, e.g. "127.0.0.1"

    def json(self):
        """The body parsed as a JSON object (raises :class:`HttpError`
         400 on anything that is not one)."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise HttpError(400, "invalid JSON body: %s" % err)
        if not isinstance(payload, dict):
            raise HttpError(400, "expected a JSON object body")
        return payload

    def header(self, name, default=None):
        return self.headers.get(name.lower(), default)

    def wants_sse(self):
        return "text/event-stream" in self.header("accept", "")


class Response:
    """A fixed-length response."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status, body=b"", headers=None, content_type="application/json"):
        self.status = status
        if isinstance(body, str):
            body = body.encode("utf-8")
        self.body = body
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", content_type)


def json_response(status, payload, headers=None):
    """A sorted-key JSON response (sorted keys keep identical requests
    byte-identical on the wire, matching the repo's determinism
    habits)."""
    return Response(
        status, json.dumps(payload, sort_keys=True) + "\n", headers=headers
    )


def error_response(status, detail, headers=None):
    return json_response(status, {"error": detail, "status": status}, headers=headers)


class StreamResponse:
    """A chunked streaming response driven by the handler.

    The handler returns one of these and the connection loop calls
    :meth:`run`, which writes the header and then awaits
    ``producer(write)`` — ``write(text)`` sends one chunk. Streaming
    responses always close the connection afterwards (the final
    0-length chunk ends the body; closing keeps the client loop
    trivial)."""

    __slots__ = ("status", "headers", "producer")

    def __init__(self, producer, status=200, content_type="application/x-ndjson",
                 headers=None):
        self.status = status
        self.producer = producer
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", content_type)
        self.headers.setdefault("Cache-Control", "no-store")

    async def run(self, writer):
        header = _render_header(
            self.status,
            dict(self.headers, **{
                "Transfer-Encoding": "chunked",
                "Connection": "close",
            }),
        )
        writer.write(header)
        await writer.drain()

        async def write(text):
            data = text.encode("utf-8") if isinstance(text, str) else text
            if not data:
                return
            writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
            await writer.drain()

        try:
            await self.producer(write)
        finally:
            try:
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass


def _render_header(status, headers):
    lines = ["HTTP/1.1 %d %s" % (status, REASONS.get(status, "Unknown"))]
    for name, value in headers.items():
        lines.append("%s: %s" % (name, value))
    lines.append("\r\n")
    return "\r\n".join(lines).encode("latin-1")


async def _read_line(reader):
    line = await reader.readline()
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "header line too long")
    return line


async def read_request(reader, client):
    """Parse one request off ``reader``; returns ``None`` on a clean
    EOF (client closed the keep-alive connection)."""
    try:
        request_line = await asyncio.wait_for(
            _read_line(reader), timeout=IDLE_TIMEOUT_SECONDS
        )
    except asyncio.TimeoutError:
        raise HttpError(408, "idle connection timed out")
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "unsupported HTTP version %r" % version)

    headers = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "undecodable header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "body exceeds %d bytes" % MAX_BODY_BYTES)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=parse_qs(split.query),
        headers=headers,
        body=body,
        client=client,
    )


class HttpServer:
    """Owns the listening socket and per-connection loops.

    ``handler`` is ``async handler(request) -> Response|StreamResponse``;
    anything it raises is logged as a 500 (``HttpError`` keeps its
    status). Connection tasks are tracked so :meth:`stop` can cancel
    stragglers during drain."""

    def __init__(self, handler):
        self._handler = handler
        self._server = None
        self._tasks = set()

    async def start(self, host, port):
        self._server = await asyncio.start_server(self._on_connection, host, port)
        return self._server.sockets[0].getsockname()[:2]

    async def _on_connection(self, reader, writer):
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer):
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer)
        while True:
            try:
                request = await read_request(reader, client)
            except HttpError as err:
                await self._write_response(
                    writer, error_response(err.status, err.detail), close=True
                )
                return
            except (ConnectionError, OSError):
                return
            if request is None:
                return  # clean EOF
            try:
                response = await self._handler(request)
            except HttpError as err:
                response = error_response(err.status, err.detail)
            except asyncio.CancelledError:
                raise
            except Exception as err:  # the handler must never kill the loop
                response = error_response(500, "internal error: %s" % err)
            if isinstance(response, StreamResponse):
                try:
                    await response.run(writer)
                except (ConnectionError, OSError):
                    pass
                return  # streaming responses close the connection
            close = request.header("connection", "").lower() == "close"
            try:
                await self._write_response(writer, response, close=close)
            except (ConnectionError, OSError):
                return
            if close:
                return

    async def _write_response(self, writer, response, close=False):
        headers = dict(response.headers)
        headers["Content-Length"] = str(len(response.body))
        headers["Connection"] = "close" if close else "keep-alive"
        writer.write(_render_header(response.status, headers))
        writer.write(response.body)
        await writer.drain()

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
