"""Submissions, validation, and the dispatcher behind ``repro serve``.

A **submission** is one client request for simulation work — either a
named experiment (``POST /experiments``) or a raw
:class:`~repro.runner.jobs.SimJob` spec (``POST /jobs``). Submissions
get server-assigned IDs and walk the lifecycle::

    queued -> running -> done | failed
    queued -> cancelled

The :class:`JobManager` owns them end to end:

* **validation first** — experiment names, scenario names, policy
  modes, scheduler backends, fault plans, and placement policies are
  all checked against their registries *at submission time*, so a bad
  spec is a 400 before it costs a queue slot, never a worker-side
  stack trace;
* **cache fast path** — a submission whose every job is already in the
  content-addressed result cache is answered synchronously (state
  ``done`` before ``POST`` even returns, ``X-Repro-Cache: hit``), with
  no pool round-trip and no admission slot consumed;
* **one dispatcher task** — cold submissions queue onto a single
  asyncio consumer that drains waves of them into one
  :func:`repro.runner.execute_many` call each (cross-submission dedup
  and LPT ordering for free), run in a worker thread so the event loop
  keeps serving requests and streams;
* **event streams** — every lifecycle transition and every executor
  progress callback (cache hits, pool pickup heartbeats, completions)
  appends to the submission's ordered event list; any number of
  ``/jobs/<id>/events`` streams replay and then follow it live.
"""

import asyncio
import itertools
import time

from ..errors import ReproError
from ..experiments import registry as experiment_registry
from ..experiments.results import RunResult
from ..obs import telemetry
from ..runner import cache as result_cache
from ..runner import costmodel, execute_many
from ..runner.jobs import (
    KNOWN_OVERRIDES,
    POLICY_MODES,
    SimJob,
    available_scenarios,
)
from ..sched import registry as sched_registry
from ..workloads import registry as workload_registry

_SUBMITTED = telemetry.counter("serve.submissions.accepted")
_CACHE_FAST = telemetry.counter("serve.submissions.cache_fast_path")
_DONE = telemetry.counter("serve.submissions.done")
_FAILED = telemetry.counter("serve.submissions.failed")
_CANCELLED = telemetry.counter("serve.submissions.cancelled")
_WAVES = telemetry.counter("serve.dispatch_waves")
_QUEUE_DEPTH = telemetry.gauge("serve.queue_depth")

#: Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)

#: Most submissions folded into one ``execute_many`` wave. Bounded so
#: one wave cannot hold the dispatcher (and every later submission)
#: hostage for arbitrarily long.
WAVE_MAX = 16

#: Coarse wall-time guess for a driver experiment (fleet), which has no
#: enumerable job plan to predict from; feeds Retry-After only.
DRIVER_PREDICT_SECONDS = 5.0

#: Experiment-submission knobs every experiment accepts.
_EXPERIMENT_KEYS = ("experiment", "seed", "scale", "scheduler", "faults")
#: Extra knobs accepted by driver experiments (the fleet spec).
_DRIVER_KEYS = ("policies", "hosts", "epochs", "rate", "overcommit",
                "migration_cost_ms")
#: Keys a raw SimJob submission may carry.
_JOB_KEYS = ("tag", "scenario", "duration_ns", "warmup_ns", "seed",
             "scenario_kwargs", "policy", "overrides", "trace", "faults")

#: Hard ceiling on one raw job's simulated horizon (warmup + duration):
#: 10 simulated seconds is ~40x the longest registry experiment job and
#: already minutes of wall time — anything larger is a typo'd unit.
MAX_JOB_HORIZON_NS = 10_000_000_000


class ValidationError(ReproError):
    """A submission failed registry/type validation (HTTP 400)."""


def _require(condition, detail):
    if not condition:
        raise ValidationError(detail)


def _int_field(payload, key, default, minimum=None, maximum=None):
    value = payload.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             "%r must be an integer" % key)
    if minimum is not None:
        _require(value >= minimum, "%r must be >= %d" % (key, minimum))
    if maximum is not None:
        _require(value <= maximum, "%r must be <= %d" % (key, maximum))
    return value


def _number_field(payload, key, default, minimum=None):
    value = payload.get(key, default)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             "%r must be a number" % key)
    if minimum is not None:
        _require(value > minimum, "%r must be > %g" % (key, minimum))
    return value


class Work:
    """A validated submission compiled to something executable: either
    a job plan plus a finalizer, or a driver callable."""

    __slots__ = ("kind", "name", "jobs", "finalize", "driver")

    def __init__(self, kind, name, jobs=None, finalize=None, driver=None):
        self.kind = kind  # "experiment" | "job"
        self.name = name
        self.jobs = jobs  # [SimJob] or None for drivers
        self.finalize = finalize  # {tag: RunResult} -> result dict
        self.driver = driver  # (workers, cache, progress) -> result dict


def _validate_scheduler(name):
    if name is None:
        return None
    _require(isinstance(name, str), "'scheduler' must be a backend name")
    try:
        sched_registry.get(name)
    except ReproError as err:
        raise ValidationError(str(err))
    return name


def _validate_faults(faults):
    """A fault request: builtin plan name or canonical plan dict."""
    if faults is None:
        return None
    from ..faults import builtin_plans

    if isinstance(faults, str):
        _require(faults in builtin_plans(),
                 "unknown fault plan %r (available: %s)"
                 % (faults, ", ".join(builtin_plans())))
        return faults
    _require(isinstance(faults, dict), "'faults' must be a plan name or dict")
    return faults


def compile_experiment(payload):
    """Validate an experiment submission and compile it to
    :class:`Work`. Raises :class:`ValidationError` on anything a
    registry does not recognise."""
    _require(isinstance(payload, dict), "expected a JSON object")
    name = payload.get("experiment")
    _require(isinstance(name, str) and name,
             "'experiment' is required (see GET /experiments)")
    try:
        module = experiment_registry.get(name)
    except ReproError as err:
        raise ValidationError(str(err))
    driver = experiment_registry.is_driver(module)
    allowed = _EXPERIMENT_KEYS + (_DRIVER_KEYS if driver else ())
    unknown = sorted(set(payload) - set(allowed))
    _require(not unknown, "unknown field(s) %s (allowed: %s)"
             % (", ".join(map(repr, unknown)), ", ".join(allowed)))

    seed = _int_field(payload, "seed", 42)
    scale = payload.get("scale")
    if scale is not None:
        scale = _number_field(payload, "scale", None, minimum=0.0)
    scheduler = _validate_scheduler(payload.get("scheduler"))
    faults = _validate_faults(payload.get("faults"))

    if driver:
        _require(faults is None,
                 "driver experiment %r does not accept 'faults'" % name)
        kwargs = {"seed": seed, "scale_override": scale, "scheduler": scheduler}
        if "policies" in payload:
            from ..fleet import placement

            policies = payload["policies"]
            _require(isinstance(policies, list) and policies
                     and all(isinstance(p, str) for p in policies),
                     "'policies' must be a non-empty list of names")
            for policy in policies:
                _require(policy in placement.available(),
                         "unknown placement policy %r (available: %s)"
                         % (policy, ", ".join(placement.available())))
            kwargs["policies"] = policies
        for key in ("hosts", "epochs"):
            if key in payload:
                kwargs[key] = _int_field(payload, key, None, minimum=1)
        for key in ("rate", "overcommit", "migration_cost_ms"):
            if key in payload:
                kwargs[key] = _number_field(payload, key, None, minimum=0.0)

        def drive(workers, cache, progress):
            results = module.drive(
                workers=workers, cache=cache, progress=progress, **kwargs
            )
            return {"results": results, "formatted": module.format_result(results)}

        return Work("experiment", name, driver=drive)

    try:
        jobs = module.plan(seed=seed, scale_override=scale)
        experiment_registry._prepare_plan(
            jobs, trace=None, faults=faults, scheduler=scheduler
        )
    except ReproError as err:
        raise ValidationError(str(err))

    def finalize(by_tag):
        experiment_registry._check_fault_invariants(by_tag)
        results = module.reduce(by_tag)
        return {"results": results, "formatted": module.format_result(results)}

    return Work("experiment", name, jobs=jobs, finalize=finalize)


def compile_job(payload):
    """Validate a raw SimJob submission against the scenario, policy,
    scheduler, workload, and fault registries; compile to
    :class:`Work`."""
    _require(isinstance(payload, dict), "expected a JSON object")
    unknown = sorted(set(payload) - set(_JOB_KEYS))
    _require(not unknown, "unknown field(s) %s (allowed: %s)"
             % (", ".join(map(repr, unknown)), ", ".join(_JOB_KEYS)))

    scenario = payload.get("scenario")
    scenarios = available_scenarios()
    _require(scenario in scenarios,
             "unknown scenario %r (available: %s)"
             % (scenario, ", ".join(scenarios)))

    tag = payload.get("tag", "job")
    _require(isinstance(tag, str) and tag, "'tag' must be a non-empty string")
    duration_ns = _int_field(payload, "duration_ns", None, minimum=1)
    warmup_ns = _int_field(payload, "warmup_ns", 0, minimum=0)
    _require(warmup_ns + duration_ns <= MAX_JOB_HORIZON_NS,
             "simulated horizon %d ns exceeds the %d ns service limit"
             % (warmup_ns + duration_ns, MAX_JOB_HORIZON_NS))
    seed = _int_field(payload, "seed", 42)

    scenario_kwargs = payload.get("scenario_kwargs", {})
    _require(isinstance(scenario_kwargs, dict), "'scenario_kwargs' must be an object")
    workload = scenario_kwargs.get("workload_kind")
    if workload is not None:
        _require(workload in workload_registry.available(),
                 "unknown workload %r (available: %s)"
                 % (workload, ", ".join(workload_registry.available())))

    policy = payload.get("policy", {"mode": "baseline"})
    _require(isinstance(policy, dict), "'policy' must be an object")
    mode = policy.get("mode", "baseline")
    _require(mode in POLICY_MODES,
             "unknown policy mode %r (available: %s)"
             % (mode, ", ".join(POLICY_MODES)))

    overrides = payload.get("overrides", {})
    _require(isinstance(overrides, dict), "'overrides' must be an object")
    bad = sorted(set(overrides) - set(KNOWN_OVERRIDES))
    _require(not bad, "unknown override(s) %s (allowed: %s)"
             % (", ".join(map(repr, bad)), ", ".join(KNOWN_OVERRIDES)))
    _validate_scheduler(overrides.get("scheduler"))

    trace = payload.get("trace")
    if trace is not None:
        _require(isinstance(trace, dict) and set(trace) <= {"kinds"},
                 "'trace' must be an object with an optional 'kinds' list")

    faults = _validate_faults(payload.get("faults"))
    if isinstance(faults, str):
        from ..faults import resolve_plan

        faults = resolve_plan(faults, warmup_ns + duration_ns).to_dict()

    job = SimJob(
        tag=tag,
        scenario=scenario,
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        seed=seed,
        scenario_kwargs=dict(scenario_kwargs),
        policy=dict(policy),
        overrides=dict(overrides),
        trace=dict(trace) if trace is not None else None,
        faults=faults,
    )

    def finalize(by_tag):
        return {"payload": by_tag[tag].to_dict()}

    return Work("job", "%s:%s" % (scenario, tag), jobs=[job], finalize=finalize)


class Submission:
    """One accepted unit of client work and its event history."""

    _ids = itertools.count(1)

    __slots__ = ("id", "work", "client", "state", "events", "result", "error",
                 "cache", "jobs_done", "jobs_total", "created_unix",
                 "_queued_at", "cond", "predicted_seconds")

    def __init__(self, work, client, predicted_seconds=0.0):
        self.id = "j-%06d" % next(Submission._ids)
        self.work = work
        self.client = client
        self.state = QUEUED
        self.events = []
        self.result = None
        self.error = None
        self.cache = None  # "hit" | "miss"
        self.jobs_done = 0
        self.jobs_total = len(work.jobs) if work.jobs is not None else None
        self.created_unix = time.time()
        self._queued_at = time.monotonic()
        self.cond = asyncio.Condition()
        self.predicted_seconds = predicted_seconds

    def summary(self):
        out = {
            "id": self.id,
            "kind": self.work.kind,
            "name": self.work.name,
            "client": self.client,
            "state": self.state,
            "cache": self.cache,
            "jobs_total": self.jobs_total,
            "jobs_done": self.jobs_done,
            "events": len(self.events),
            "created_unix": round(self.created_unix, 3),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Owns every submission, the dispatch queue, and the worker-thread
    bridge. Constructed by :class:`repro.serve.app.ServeApp`; all
    public methods run on the event loop."""

    def __init__(self, workers=1, cache=None, cache_dir=None, history_limit=512):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.cache_dir = cache_dir
        self.history_limit = history_limit
        self.submissions = {}
        self._order = []  # insertion-ordered ids (capped to history_limit)
        self._queue = asyncio.Queue()
        self._active = set()  # ids queued or running
        self._idle = asyncio.Event()
        self._idle.set()
        self._loop = None
        self._dispatcher = None
        self._model = costmodel.CostModel.load(cache_dir)

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self):
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    async def wait_idle(self):
        """Block until no submission is queued or running."""
        await self._idle.wait()

    # -- admission support --------------------------------------------

    def backlog_seconds(self):
        """Predicted wall seconds to drain everything queued or
        running, divided across the workers — the Retry-After basis."""
        pending = sum(
            self.submissions[sid].predicted_seconds
            for sid in self._active
            if sid in self.submissions
        )
        return pending / self.workers

    def predict_seconds(self, work):
        if work.jobs is None:
            return DRIVER_PREDICT_SECONDS
        return sum(self._model.predict(job) for job in work.jobs)

    # -- submission ----------------------------------------------------

    def probe_cache_sync(self, work):
        """Blocking cache probe: ``{tag: payload}`` when *every* job of
        ``work`` is cached, else ``None``. Runs in an executor thread
        (payloads can be megabytes)."""
        if work.jobs is None:
            return None
        if not (result_cache.enabled() if self.cache is None else bool(self.cache)):
            return None
        payloads = {}
        for job in work.jobs:
            hit = result_cache.load(result_cache.job_key(job), self.cache_dir)
            if hit is None:
                return None
            payloads[job.tag] = hit
        return payloads

    async def submit(self, work, client, admission):
        """Admit and enqueue (or fast-path) one compiled submission.
        Returns ``(submission, cache_hit)``; raises
        :class:`~repro.serve.admission.Rejection` on refusal."""
        if admission.draining:
            admission.admit(client)  # raises the 503
        payloads = await asyncio.get_running_loop().run_in_executor(
            None, self.probe_cache_sync, work
        )
        if payloads is not None:
            sub = Submission(work, client)
            self._register(sub)
            sub.cache = "hit"
            sub.jobs_done = sub.jobs_total
            _SUBMITTED.inc()
            _CACHE_FAST.inc()
            self._post_event(sub, {"event": "queued", "cache": "hit"})
            try:
                by_tag = {
                    tag: RunResult.from_dict(payload)
                    for tag, payload in payloads.items()
                }
                sub.result = work.finalize(by_tag)
                self._finish(sub, DONE, {"cache": "hit"})
            except ReproError as err:
                sub.error = str(err)
                self._finish(sub, FAILED, {"error": sub.error})
            return sub, True

        admission.admit(client)
        sub = Submission(work, client, predicted_seconds=self.predict_seconds(work))
        sub.cache = "miss"
        self._register(sub)
        self._active.add(sub.id)
        self._idle.clear()
        _SUBMITTED.inc()
        _QUEUE_DEPTH.set(self._queue.qsize() + 1)
        self._post_event(sub, {"event": "queued", "cache": "miss"})
        await self._queue.put((sub, admission))
        return sub, False

    def _register(self, sub):
        self.submissions[sub.id] = sub
        self._order.append(sub.id)
        # Cap memory: forget the oldest *terminal* submissions past the
        # history limit (active ones are never evicted).
        while len(self._order) > self.history_limit:
            for index, sid in enumerate(self._order):
                old = self.submissions.get(sid)
                if old is None or old.state in TERMINAL:
                    self._order.pop(index)
                    self.submissions.pop(sid, None)
                    break
            else:
                break

    def cancel(self, sub, admission):
        """Cancel a still-queued submission; returns ``False`` when it
        already left the queue (running or terminal)."""
        if sub.state != QUEUED:
            return False
        sub.state = CANCELLED
        self._active.discard(sub.id)
        admission.unqueue(sub.client)
        admission.finished(sub.client)
        _CANCELLED.inc()
        self._post_event(sub, {"event": "cancelled"})
        if not self._active:
            self._idle.set()
        return True

    # -- events --------------------------------------------------------

    def _post_event(self, sub, payload):
        """Append one event and wake the streamers. Loop thread only —
        worker threads go through ``call_soon_threadsafe``."""
        event = dict(payload)
        event["seq"] = len(sub.events)
        event["id"] = sub.id
        event["ts_unix"] = round(time.time(), 3)
        sub.events.append(event)

        async def _notify():
            async with sub.cond:
                sub.cond.notify_all()

        asyncio.ensure_future(_notify())

    def _post_threadsafe(self, sub, payload):
        self._loop.call_soon_threadsafe(self._post_event, sub, payload)

    def _finish(self, sub, state, extra=None):
        sub.state = state
        self._active.discard(sub.id)
        (_DONE if state == DONE else _FAILED if state == FAILED else _CANCELLED).inc()
        self._post_event(sub, dict(extra or {}, event=state))
        if not self._active:
            self._idle.set()

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self):
        while True:
            sub, admission = await self._queue.get()
            wave = [(sub, admission)]
            while len(wave) < WAVE_MAX:
                try:
                    wave.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            live = [(s, a) for s, a in wave if s.state == QUEUED]
            _QUEUE_DEPTH.set(self._queue.qsize())
            if not live:
                continue
            _WAVES.inc()
            for s, a in live:
                s.state = RUNNING
                a.started(s.client)
                telemetry.observe(
                    "serve.queue_wait_us",
                    (time.monotonic() - s._queued_at) * 1e6,
                )
                self._post_event(s, {"event": "running"})
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._run_wave_sync, [s for s, _ in live]
                )
            finally:
                for s, a in live:
                    a.finished(s.client)

    # -- worker-thread side -------------------------------------------

    def _run_wave_sync(self, wave):
        """Execute one wave in a worker thread: a single
        ``execute_many`` over every planned submission (drivers run
        after, one by one). Never raises — failures land on the
        submissions they belong to."""
        planned = [s for s in wave if s.work.jobs is not None]
        drivers = [s for s in wave if s.work.jobs is None]

        if planned:
            self._execute_planned(planned)
        for sub in drivers:
            self._execute_driver(sub)
        self._model = costmodel.CostModel.load(self.cache_dir)

    def _execute_planned(self, subs):
        tag_subs = {}
        for sub in subs:
            for job in sub.work.jobs:
                tag_subs.setdefault(job.tag, []).append(sub)

        def progress(event, tag, done, total):
            for sub in tag_subs.get(tag, ()):
                if event in ("hit", "done"):
                    sub.jobs_done += 1
                self._post_threadsafe(sub, {
                    "event": "progress",
                    "phase": event,
                    "tag": tag,
                    "jobs_done": sub.jobs_done,
                    "jobs_total": sub.jobs_total,
                })

        plans = {sub.id: sub.work.jobs for sub in subs}
        before = _engine_counters()
        try:
            by_plan = execute_many(
                plans,
                workers=self.workers,
                cache=self.cache,
                cache_dir=self.cache_dir,
                progress=progress,
            )
        except Exception:
            # One poisoned job fails a whole batch; isolate by retrying
            # each submission on its own so innocent ones still land.
            if len(subs) == 1:
                self._fail_sync(subs[0])
                return
            for sub in subs:
                self._execute_planned([sub])
            return
        # The engine/cache counter movement this wave caused rides on
        # each terminal event, so streaming clients see what the wave
        # cost without scraping /metrics.
        delta = _counter_delta(before, _engine_counters())
        for sub in subs:
            try:
                sub.result = sub.work.finalize(by_plan[sub.id])
                self._complete_sync(sub, DONE, {"cache": "miss", "telemetry": delta})
            except Exception as err:
                sub.error = str(err)
                self._complete_sync(sub, FAILED, {"error": sub.error})

    def _execute_driver(self, sub):
        def progress(event, tag, done, total):
            if event in ("hit", "done"):
                sub.jobs_done += 1
            self._post_threadsafe(sub, {
                "event": "progress",
                "phase": event,
                "tag": tag,
                "jobs_done": sub.jobs_done,
                "jobs_total": None,
            })

        before = _engine_counters()
        try:
            sub.result = sub.work.driver(self.workers, self.cache, progress)
        except Exception:
            self._fail_sync(sub)
            return
        delta = _counter_delta(before, _engine_counters())
        self._complete_sync(sub, DONE, {"cache": "miss", "telemetry": delta})

    def _fail_sync(self, sub):
        import traceback

        sub.error = traceback.format_exc(limit=8).strip().splitlines()[-1]
        self._complete_sync(sub, FAILED, {"error": sub.error})

    def _complete_sync(self, sub, state, extra):
        self._loop.call_soon_threadsafe(self._finish, sub, state, extra)


def _engine_counters():
    """The deterministic engine/cache counters attached (as a wave
    delta) to completion events."""
    counters = telemetry.snapshot().get("counters", {})
    keep = ("engine.jobs_simulated", "engine.events_simulated",
            "cache.hits", "cache.misses", "cache.stores",
            "pool.jobs_completed", "runner.jobs_inline")
    return {name: counters.get(name, 0) for name in keep}


def _counter_delta(before, after):
    return {name: after[name] - before.get(name, 0) for name in after}
