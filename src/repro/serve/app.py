"""The ``repro serve`` application: routing, streams, drain.

Glues the three layers below it together — :mod:`repro.serve.http`
(protocol), :mod:`repro.serve.admission` (backpressure), and
:mod:`repro.serve.jobs` (validation + dispatch) — and owns everything
HTTP-shaped: the route table, the NDJSON/SSE event streams, the
``/metrics`` exposition, and the SIGTERM drain sequence (stop
admitting → finish in-flight → flush telemetry → exit 0).

Every request is counted (``serve.requests.<METHOD>_<route>.<status>``)
and timed (``serve.request_latency_us``); stream lifetimes move the
``serve.active_streams`` gauge. Latency and other wall-derived metrics
carry the registry's wall suffixes so the determinism contract
(`dumps(include_wall=False)` byte-stable) is unaffected by them.
"""

import asyncio
import json
import signal
import time

from ..obs import telemetry
from ..runner import default_workers
from .admission import (
    DEFAULT_MAX_INFLIGHT_PER_CLIENT,
    DEFAULT_MAX_QUEUE_DEPTH,
    AdmissionController,
    Rejection,
)
from .http import (
    HttpError,
    HttpServer,
    Response,
    StreamResponse,
    error_response,
    json_response,
)
from .jobs import (
    TERMINAL,
    JobManager,
    ValidationError,
    compile_experiment,
    compile_job,
)

_ACTIVE_STREAMS = telemetry.gauge("serve.active_streams")

#: Seconds between liveness nudges on an otherwise-quiet event stream
#: (an SSE comment / NDJSON no-op so proxies do not reap the socket).
STREAM_HEARTBEAT_SECONDS = 15.0


class ServeConfig:
    """Everything ``repro serve`` needs to come up."""

    __slots__ = ("host", "port", "workers", "cache", "cache_dir",
                 "max_queue_depth", "max_inflight")

    def __init__(self, host="127.0.0.1", port=8765, workers=None, cache=None,
                 cache_dir=None, max_queue_depth=DEFAULT_MAX_QUEUE_DEPTH,
                 max_inflight=DEFAULT_MAX_INFLIGHT_PER_CLIENT):
        self.host = host
        self.port = port
        self.workers = default_workers() if workers is None else workers
        self.cache = cache
        self.cache_dir = cache_dir
        self.max_queue_depth = max_queue_depth
        self.max_inflight = max_inflight


class ServeApp:
    """One service instance: a job manager, an admission controller,
    and the HTTP front end."""

    def __init__(self, config=None):
        self.config = config or ServeConfig()
        self.manager = JobManager(
            workers=self.config.workers,
            cache=self.config.cache,
            cache_dir=self.config.cache_dir,
        )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            max_inflight_per_client=self.config.max_inflight,
            predicted_backlog_seconds=self.manager.backlog_seconds,
        )
        self.server = HttpServer(self.handle)
        self.started_unix = time.time()
        self._streams = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        await self.manager.start()
        host, port = await self.server.start(self.config.host, self.config.port)
        return host, port

    async def drain(self):
        """SIGTERM semantics: refuse new work, let queued and running
        submissions finish, flush the telemetry snapshot."""
        self.admission.draining = True
        await self.manager.wait_idle()
        telemetry.persist(self.config.cache_dir)

    async def stop(self):
        await self.manager.stop()
        await self.server.stop()

    # -- request entry point -------------------------------------------

    async def handle(self, request):
        start = time.perf_counter()
        try:
            route, response = await self._route(request)
        except HttpError as err:
            route, response = "error", error_response(err.status, err.detail)
        telemetry.counter(
            "serve.requests.%s_%s.%d"
            % (request.method, route, response.status)
        ).inc()
        telemetry.observe(
            "serve.request_latency_us", (time.perf_counter() - start) * 1e6
        )
        return response

    def _client_of(self, request):
        return request.header("x-repro-client") or request.client

    async def _route(self, request):
        """Dispatch to a handler; returns ``(route_label, response)``
        so metrics bucket by route pattern, not concrete path."""
        path = request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if path == "/healthz":
            return "healthz", self._healthz()
        if path == "/metrics":
            return "metrics", self._metrics()
        if path == "/telemetry":
            return "telemetry", self._telemetry()
        if path == "/experiments":
            if request.method == "GET":
                return "experiments", self._list_experiments()
            if request.method == "POST":
                return "experiments", await self._submit(request, compile_experiment)
            raise HttpError(405, "use GET or POST on /experiments")
        if path == "/jobs" and request.method == "POST":
            return "jobs", await self._submit(request, compile_job)
        if path == "/jobs" and request.method == "GET":
            return "jobs", self._list_jobs()
        if parts and parts[0] == "jobs" and len(parts) >= 2:
            sub = self.manager.submissions.get(parts[1])
            if sub is None:
                raise HttpError(404, "no such submission %r" % parts[1])
            if len(parts) == 2:
                if request.method == "GET":
                    return "jobs_id", json_response(200, sub.summary())
                if request.method == "DELETE":
                    return "jobs_id", self._cancel(sub)
                raise HttpError(405, "use GET or DELETE on /jobs/<id>")
            action = parts[2]
            if action == "result" and request.method == "GET":
                return "jobs_id_result", self._result(sub)
            if action == "events" and request.method == "GET":
                return "jobs_id_events", self._events(request, sub)
            if action == "cancel" and request.method == "POST":
                return "jobs_id_cancel", self._cancel(sub)
            raise HttpError(404, "unknown action %r" % action)
        raise HttpError(404, "no route for %s %s" % (request.method, request.path))

    # -- plain routes --------------------------------------------------

    def _healthz(self):
        return json_response(200, {
            "status": "draining" if self.admission.draining else "ok",
            "uptime_seconds": round(time.time() - self.started_unix, 3),
            "queued": self.admission.queued,
            "workers": self.manager.workers,
        })

    def _metrics(self):
        text = telemetry.render_prom(telemetry.snapshot())
        return Response(200, text, content_type="text/plain; version=0.0.4")

    def _telemetry(self):
        return Response(200, telemetry.REGISTRY.dumps() + "\n")

    def _list_experiments(self):
        from ..experiments import registry

        names = registry.available()
        rows = [
            {"name": name, "driver": registry.is_driver(registry.get(name))}
            for name in names
        ]
        return json_response(200, {"experiments": rows})

    def _list_jobs(self):
        rows = [
            self.manager.submissions[sid].summary()
            for sid in self.manager._order
            if sid in self.manager.submissions
        ]
        return json_response(200, {"jobs": rows})

    # -- submission ----------------------------------------------------

    async def _submit(self, request, compiler):
        payload = request.json()
        client = self._client_of(request)
        try:
            work = compiler(payload)
        except ValidationError as err:
            raise HttpError(400, str(err))
        try:
            sub, hit = await self.manager.submit(work, client, self.admission)
        except Rejection as err:
            return error_response(
                err.status, err.detail,
                headers={"Retry-After": str(err.retry_after)},
            )
        body = sub.summary()
        headers = {"X-Repro-Cache": "hit" if hit else "miss"}
        if hit:
            body["result"] = sub.result
            return json_response(200, body, headers=headers)
        body["links"] = {
            "self": "/jobs/%s" % sub.id,
            "events": "/jobs/%s/events" % sub.id,
            "result": "/jobs/%s/result" % sub.id,
        }
        return json_response(202, body, headers=headers)

    def _result(self, sub):
        if sub.state not in TERMINAL:
            return error_response(
                409, "submission %s is %s; stream /jobs/%s/events or retry"
                % (sub.id, sub.state, sub.id),
                headers={"Retry-After": "1"},
            )
        body = sub.summary()
        body["result"] = sub.result
        return json_response(200, body)

    def _cancel(self, sub):
        if sub.state in TERMINAL:
            return json_response(200, sub.summary())
        if self.manager.cancel(sub, self.admission):
            return json_response(200, sub.summary())
        return error_response(
            409, "submission %s is already running" % sub.id
        )

    # -- event streams -------------------------------------------------

    def _events(self, request, sub):
        sse = request.wants_sse()

        def render(event):
            line = json.dumps(event, sort_keys=True)
            if sse:
                return "event: %s\ndata: %s\n\n" % (event["event"], line)
            return line + "\n"

        async def producer(write):
            self._streams += 1
            _ACTIVE_STREAMS.set(self._streams)
            try:
                index = 0
                while True:
                    while index < len(sub.events):
                        event = sub.events[index]
                        index += 1
                        await write(render(event))
                        if event["event"] in TERMINAL:
                            return
                    async with sub.cond:
                        if index >= len(sub.events):
                            try:
                                await asyncio.wait_for(
                                    sub.cond.wait(), STREAM_HEARTBEAT_SECONDS
                                )
                            except asyncio.TimeoutError:
                                pass
                    if index >= len(sub.events):
                        # Liveness nudge so proxies keep the socket open.
                        await write(": keep-alive\n\n" if sse
                                    else '{"event": "heartbeat"}\n')
            finally:
                self._streams -= 1
                _ACTIVE_STREAMS.set(self._streams)

        return StreamResponse(
            producer,
            content_type=("text/event-stream" if sse
                          else "application/x-ndjson"),
        )


async def serve_forever(config):
    """Run the service until SIGTERM/SIGINT, then drain; the
    ``repro serve`` CLI entry point. Returns the process exit code."""
    app = ServeApp(config)
    host, port = await app.start()
    print("repro serve: listening on http://%s:%d (workers=%d)"
          % (host, port, app.manager.workers), flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops
    await stop.wait()

    print("repro serve: draining (%d queued)" % app.admission.queued, flush=True)
    await app.drain()
    await app.stop()
    print("repro serve: drained cleanly", flush=True)
    return 0


class ServerHandle:
    """A running server on a background thread — the harness tests and
    the benchmark load generator use this instead of a subprocess."""

    def __init__(self, app, host, port, loop, thread):
        self.app = app
        self.host = host
        self.port = port
        self._loop = loop
        self._thread = thread

    @property
    def base_url(self):
        return "http://%s:%d" % (self.host, self.port)

    def run(self, coro):
        """Run a coroutine on the server loop and wait for it."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout=120)

    def drain(self):
        self.run(self.app.drain())

    def stop(self):
        self.run(self.app.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)


def start_in_thread(config=None):
    """Start a :class:`ServeApp` on a dedicated event-loop thread and
    return its :class:`ServerHandle` (bound address resolved, server
    accepting)."""
    import threading

    config = config or ServeConfig(port=0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    state = {}

    def main():
        asyncio.set_event_loop(loop)

        async def boot():
            app = ServeApp(config)
            state["app"] = app
            state["addr"] = await app.start()

        loop.run_until_complete(boot())
        ready.set()
        loop.run_forever()
        # Drain pending callbacks scheduled during shutdown.
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()

    thread = threading.Thread(target=main, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("repro serve failed to start within 30s")
    host, port = state["addr"]
    return ServerHandle(state["app"], host, port, loop, thread)
