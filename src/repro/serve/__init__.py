"""``repro serve`` — a long-running simulation service over HTTP.

The batch CLI (``repro run``) answers one invocation and exits; this
package keeps the warm worker pool, the content-addressed result
cache, and the telemetry registry resident behind a small HTTP API so
many clients can share them:

* ``POST /experiments`` / ``POST /jobs`` — submit named experiments or
  raw :class:`~repro.runner.jobs.SimJob` specs (validated against the
  registries before they cost anything);
* ``GET /jobs/<id>`` + ``GET /jobs/<id>/events`` — lifecycle polling
  and live NDJSON/SSE progress streams;
* ``GET /metrics`` — the telemetry registry in Prometheus exposition
  format;
* admission control with predictive ``Retry-After`` on overload, a
  cache fast path for repeat submissions (``X-Repro-Cache: hit``), and
  graceful drain on SIGTERM.

Standard library only — see :mod:`repro.serve.http` for the protocol
layer, :mod:`repro.serve.admission` for backpressure, and
:mod:`repro.serve.jobs` for validation and dispatch. ``docs/serve.md``
is the API reference.
"""

from .admission import AdmissionController, Rejection
from .app import ServeApp, ServeConfig, serve_forever, start_in_thread
from .jobs import JobManager, Submission, ValidationError

__all__ = [
    "AdmissionController",
    "JobManager",
    "Rejection",
    "ServeApp",
    "ServeConfig",
    "Submission",
    "ValidationError",
    "serve_forever",
    "start_in_thread",
]
