"""Admission control for the simulation service.

The worker pool is shared capacity; an unbounded accept loop would let
one burst (or one greedy client) queue hours of simulation and turn
every later request into a hang. Admission therefore enforces two
budgets **before** a submission is queued:

* a global bound on queued submissions (:attr:`max_queue_depth`), and
* a per-client cap on in-flight submissions — queued plus running —
  keyed by the ``X-Repro-Client`` header (falling back to the peer
  address).

Overload is answered, not absorbed: a refused submission gets **429**
with a ``Retry-After`` estimate derived from the cost model's EWMA
wall-time predictions for everything already queued (a new client told
"try again in 7 s" after a fig7 burst is strictly more useful than a
socket that eventually times out). Draining (SIGTERM received) refuses
with **503** so load balancers fail over immediately.

Every decision is counted (``serve.admission.*``) — rejections are a
monitored, first-class outcome, never an error path.
"""

from ..obs import telemetry

_ADMITTED = telemetry.counter("serve.admission.admitted")
_REJECTED_QUEUE = telemetry.counter("serve.admission.rejected_queue_full")
_REJECTED_CLIENT = telemetry.counter("serve.admission.rejected_client_cap")
_REJECTED_DRAINING = telemetry.counter("serve.admission.rejected_draining")

#: Defaults; `repro serve --max-queue-depth/--max-inflight` override.
DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_MAX_INFLIGHT_PER_CLIENT = 8

#: Retry-After clamp (seconds): never tell a client "0" (a stampede)
#: or "an hour" (it will just leave).
MIN_RETRY_AFTER = 1
MAX_RETRY_AFTER = 600


class Rejection(Exception):
    """Raised by :meth:`AdmissionController.admit` for a refused
    submission; carries the HTTP status and the Retry-After hint."""

    def __init__(self, status, detail, retry_after):
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.retry_after = retry_after


class AdmissionController:
    """Bounded-queue + per-client-cap admission with predictive
    Retry-After.

    The controller owns no queue itself — the caller reports state
    transitions (:meth:`started`, :meth:`finished`) and the controller
    keeps the books. ``predicted_backlog_seconds`` is a callable
    supplied by the job manager returning the cost model's wall-time
    estimate for everything queued but not yet dispatched."""

    def __init__(self, max_queue_depth=DEFAULT_MAX_QUEUE_DEPTH,
                 max_inflight_per_client=DEFAULT_MAX_INFLIGHT_PER_CLIENT,
                 predicted_backlog_seconds=None):
        self.max_queue_depth = max(1, int(max_queue_depth))
        self.max_inflight_per_client = max(1, int(max_inflight_per_client))
        self.draining = False
        self.queued = 0
        self._inflight = {}  # client -> queued + running submissions
        self._predict = predicted_backlog_seconds or (lambda: 0.0)

    # -- bookkeeping ---------------------------------------------------

    def inflight(self, client):
        return self._inflight.get(client, 0)

    def retry_after(self):
        """Seconds a refused client should wait: the predicted wall
        time to drain the current backlog, clamped to something a
        polite client will actually honour."""
        predicted = self._predict()
        return int(min(MAX_RETRY_AFTER, max(MIN_RETRY_AFTER, round(predicted))))

    # -- decisions -----------------------------------------------------

    def admit(self, client):
        """Account one submission for ``client`` or raise
        :class:`Rejection`. On success the submission counts as queued
        until :meth:`started`, and in-flight until :meth:`finished`."""
        if self.draining:
            _REJECTED_DRAINING.inc()
            raise Rejection(503, "server is draining; not accepting work",
                            self.retry_after())
        if self.queued >= self.max_queue_depth:
            _REJECTED_QUEUE.inc()
            raise Rejection(
                429,
                "queue depth limit reached (%d queued)" % self.queued,
                self.retry_after(),
            )
        if self.inflight(client) >= self.max_inflight_per_client:
            _REJECTED_CLIENT.inc()
            raise Rejection(
                429,
                "client %r already has %d submissions in flight"
                % (client, self.inflight(client)),
                self.retry_after(),
            )
        self.queued += 1
        self._inflight[client] = self.inflight(client) + 1
        _ADMITTED.inc()

    def started(self, client):
        """A queued submission was picked up by the dispatcher (it
        still counts against the client's in-flight cap)."""
        self.queued = max(0, self.queued - 1)

    def unqueue(self, client):
        """A queued submission left the queue without running (cache
        fast path, cancellation before dispatch)."""
        self.queued = max(0, self.queued - 1)

    def finished(self, client):
        """A submission reached a terminal state; release its slot."""
        count = self.inflight(client)
        if count <= 1:
            self._inflight.pop(client, None)
        else:
            self._inflight[client] = count - 1
