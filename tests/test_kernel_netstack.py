"""Tests for the guest kernel facade, mm helpers, and the net stack."""

import pytest

from repro.errors import GuestError
from repro.guest import mm
from repro.guest.actions import Acquire, Compute, Release, Shootdown
from repro.guest.netstack import NetStack, Socket
from repro.guest.spinlock import DENTRY, PAGE_ALLOC, PAGE_RECLAIM
from repro.hw.nic import Nic, Packet
from repro.sim.time import ms, us

from helpers import make_domain, make_hv


def _setup(vcpus=2, num_pcpus=2):
    sim, hv = make_hv(num_pcpus=num_pcpus)
    domain = make_domain(hv, vcpus=vcpus)
    return sim, hv, domain


class TestGuestKernel:
    def test_standard_locks_precreated(self):
        _sim, _hv, domain = _setup()
        names = {lock.name for lock in domain.kernel.all_locks()}
        assert {"page_alloc", "page_reclaim", "dentry", "runqueue"} <= names

    def test_lock_by_class_returns_singleton(self):
        _sim, _hv, domain = _setup()
        assert domain.kernel.lock(PAGE_ALLOC) is domain.kernel.lock(PAGE_ALLOC)

    def test_lock_instances_disambiguate(self):
        _sim, _hv, domain = _setup()
        a = domain.kernel.lock(DENTRY, instance="a")
        b = domain.kernel.lock(DENTRY, instance="b")
        assert a is not b
        assert a.lock_class is b.lock_class

    def test_lock_by_unknown_name_rejected(self):
        _sim, _hv, domain = _setup()
        with pytest.raises(GuestError):
            domain.kernel.lock("no_such_lock")

    def test_lock_section_shape(self):
        _sim, _hv, domain = _setup()
        lock = domain.kernel.lock(PAGE_ALLOC)
        actions = list(domain.kernel.lock_section(lock, us(2)))
        assert isinstance(actions[0], Acquire)
        assert isinstance(actions[1], Compute)
        assert actions[1].symbol == lock.cs_symbol
        assert isinstance(actions[2], Release)

    def test_addr_for_user_and_kernel(self):
        _sim, _hv, domain = _setup()
        kernel = domain.kernel
        assert kernel.addr_for(None) < 0xFFFFFFFF81000000
        addr = kernel.addr_for("irq_enter")
        assert kernel.symbols.resolve_name(addr) == "irq_enter"

    def test_record_lock_wait_feeds_lockstat(self):
        _sim, _hv, domain = _setup()
        lock = domain.kernel.lock(PAGE_ALLOC)
        domain.kernel.record_lock_wait(lock, 5_000)
        stat = domain.kernel.lockstat.stat("page_alloc")
        assert stat.count == 1
        assert stat.mean == 5_000


class TestMmHelpers:
    def test_mmap_uses_page_alloc_lock(self):
        _sim, _hv, domain = _setup()
        actions = list(mm.mmap(domain.kernel))
        acquire = [a for a in actions if isinstance(a, Acquire)]
        assert acquire[0].lock.lock_class is PAGE_ALLOC

    def test_munmap_flushes_tlb(self):
        _sim, _hv, domain = _setup()
        actions = list(mm.munmap(domain.kernel))
        assert any(isinstance(a, Shootdown) for a in actions)
        acquire = [a for a in actions if isinstance(a, Acquire)]
        assert acquire[0].lock.lock_class is PAGE_RECLAIM

    def test_munmap_without_flush(self):
        _sim, _hv, domain = _setup()
        actions = list(mm.munmap(domain.kernel, flush=False))
        assert not any(isinstance(a, Shootdown) for a in actions)


class TestSocket:
    def test_delivery_and_take(self):
        sock = Socket("flow")
        sock.deliver(Packet("flow", 100, 1, 0))
        sock.deliver(Packet("flow", 200, 2, 0))
        assert sock.pending == 2
        assert sock.received_bytes == 300
        taken = sock.take(limit=1)
        assert [p.seq for p in taken] == [1]
        assert sock.pending == 1

    def test_take_all(self):
        sock = Socket("flow")
        for seq in range(3):
            sock.deliver(Packet("flow", 10, seq, 0))
        assert len(sock.take()) == 3


class TestNetStack:
    def _net(self, domain, sim):
        nic = Nic(sim)
        return domain.kernel.attach_netstack(nic), nic

    def test_socket_created_per_flow(self):
        sim, _hv, domain = _setup()
        net, _nic = self._net(domain, sim)
        assert net.socket("f") is net.socket("f")

    def test_deliver_routes_by_flow(self):
        sim, _hv, domain = _setup()
        net, _nic = self._net(domain, sim)
        sock_a = net.socket("a")
        sock_b = net.socket("b")
        touched = net.deliver([Packet("a", 10, 1, 0), Packet("a", 10, 2, 0), Packet("b", 10, 3, 0)])
        assert touched == [sock_a, sock_b]
        assert sock_a.pending == 2
        assert sock_b.pending == 1

    def test_deliver_unbound_flow_rejected(self):
        sim, _hv, domain = _setup()
        net, _nic = self._net(domain, sim)
        with pytest.raises(GuestError):
            net.deliver([Packet("ghost", 10, 1, 0)])

    def test_irq_vcpu_selection(self):
        sim, _hv, domain = _setup(vcpus=3)
        nic = Nic(sim)
        net = domain.kernel.attach_netstack(nic, irq_vcpu_index=2)
        assert net.irq_vcpu is domain.vcpus[2]


class TestEndToEndRx:
    def test_packet_reaches_idle_guest_via_boost(self):
        """NIC IRQ wakes a halted vCPU; the IRQ work runs and the
        packet lands in the socket buffer."""
        sim, hv, domain = _setup(vcpus=1, num_pcpus=2)
        nic = Nic(sim)
        hv.attach_nic(nic, domain)
        net = domain.kernel.attach_netstack(nic)
        sock = net.socket("flow")
        hv.start()
        sim.run(until=ms(1))  # guest idles (no tasks) -> vCPU halts
        assert domain.vcpus[0].state == "blocked"
        nic.receive(Packet("flow", 1500, 1, sim.now))
        sim.run(until=sim.now + ms(1))
        assert sock.pending == 1
        assert hv.stats.counters.get("virq") == 1
