"""Tests for the repro.faults subsystem: plans, injection, graceful
degradation, invariants, and the reporting plumbing around them."""

import json

import pytest

from repro.core.adaptive import RESIZE_RETRIES, AdaptiveController
from repro.core.detection import CriticalServiceDetector
from repro.errors import DegradedModeWarning, FaultError, TraceError
from repro.experiments import corun_scenario
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    assert_invariants,
    builtin_plans,
    check_system,
    make_builtin,
    resolve_plan,
)
from repro.guest.symbols import USER_IP, build_table
from repro.runner import SimJob, execute
from repro.runner.jobs import run_job
from repro.sim.engine import Simulator
from repro.sim.time import ms, us


# ----------------------------------------------------------------------
# plan validation and round trips
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultPlan("p").add("cosmic_ray", ms(1))

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultError, match="does not accept"):
            FaultPlan("p").add("ipi_drop", ms(1), ms(2), probability=0.5)

    def test_nonpositive_activation_rejected(self):
        with pytest.raises(FaultError, match="strictly positive"):
            FaultPlan("p").add("stale_profile", 0)

    def test_empty_window_rejected(self):
        with pytest.raises(FaultError, match="window is empty"):
            FaultPlan("p").add("ipi_drop", ms(2), ms(2))

    def test_instant_kind_rejects_window(self):
        with pytest.raises(FaultError, match="instantaneous"):
            FaultPlan("p").add("pcpu_offline", ms(1), ms(2), pcpu=0)

    def test_defaults_merged(self):
        plan = FaultPlan("p").add("ipi_drop", ms(1), ms(2), prob=0.5)
        spec = plan.specs[0]
        assert spec.params["prob"] == 0.5
        assert spec.params["max_resends"] == FAULT_KINDS["ipi_drop"]["max_resends"]

    def test_roundtrip_canonical(self):
        plan = FaultPlan("trip", description="d", seed_salt=3)
        plan.add("ipi_drop", ms(1), ms(5), prob=0.2)
        plan.add("pcpu_offline", ms(2), pcpu=1)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.canonical() == plan.canonical()

    def test_flat_and_nested_params_equivalent(self):
        nested = FaultPlan.from_dict(
            {"name": "p", "faults": [
                {"kind": "ipi_drop", "at_ms": 1, "until_ms": 5,
                 "params": {"prob": 0.3}},
            ]}
        )
        flat = FaultPlan.from_dict(
            {"name": "p", "faults": [
                {"kind": "ipi_drop", "at_ms": 1, "until_ms": 5, "prob": 0.3},
            ]}
        )
        assert nested.canonical() == flat.canonical()

    def test_ms_and_ns_times_equivalent(self):
        by_ms = FaultPlan.from_dict(
            {"name": "p", "faults": [{"kind": "stale_profile", "at_ms": 2}]}
        )
        by_ns = FaultPlan.from_dict(
            {"name": "p", "faults": [{"kind": "stale_profile", "at_ns": int(ms(2))}]}
        )
        assert by_ms.canonical() == by_ns.canonical()

    def test_both_time_spellings_rejected(self):
        with pytest.raises(FaultError, match="both"):
            FaultPlan.from_dict(
                {"name": "p", "faults": [
                    {"kind": "stale_profile", "at_ms": 1, "at_ns": 100},
                ]}
            )

    def test_missing_time_rejected(self):
        with pytest.raises(FaultError, match="needs at_ms or at_ns"):
            FaultPlan.from_dict({"name": "p", "faults": [{"kind": "stale_profile"}]})

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(FaultError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"name": "p", "bogus": 1})

    def test_entry_without_kind_rejected(self):
        with pytest.raises(FaultError, match="missing its 'kind'"):
            FaultPlan.from_dict({"name": "p", "faults": [{"at_ms": 1}]})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_empty_plan_properties(self):
        plan = FaultPlan("nothing")
        assert plan.empty and len(plan) == 0


class TestBuiltinsAndResolve:
    def test_builtin_names_stable(self):
        assert builtin_plans() == [
            "cpu-hotplug", "lossy-ipi", "ple-misconfig", "pool-flap",
            "slow-ipi", "stale-profile", "symbol-corrupt", "symbol-outage",
        ]

    def test_every_builtin_scales_with_horizon(self):
        for name in builtin_plans():
            small = make_builtin(name, ms(100))
            large = make_builtin(name, ms(1000))
            assert not small.empty
            for spec_s, spec_l in zip(small, large):
                assert spec_l.at_ns == 10 * spec_s.at_ns

    def test_unknown_builtin_rejected(self):
        with pytest.raises(FaultError, match="unknown built-in"):
            make_builtin("meteor-strike")

    def test_resolve_accepts_plan_dict_name_and_file(self, tmp_path):
        plan = make_builtin("slow-ipi", ms(100))
        assert resolve_plan(plan) is plan
        assert resolve_plan(plan.to_dict()).canonical() == plan.canonical()
        assert resolve_plan("slow-ipi", ms(100)).canonical() == plan.canonical()
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        assert resolve_plan(str(path)).canonical() == plan.canonical()

    def test_resolve_rejects_non_builtin_non_json(self):
        with pytest.raises(FaultError, match="not a built-in"):
            resolve_plan("no-such-plan")

    def test_resolve_missing_file_rejected(self):
        with pytest.raises(FaultError, match="cannot read"):
            resolve_plan("/nonexistent/plan.json")


# ----------------------------------------------------------------------
# detector degradation (pure unit tests on stubs)
# ----------------------------------------------------------------------
class _StubKernel:
    def __init__(self):
        self.symbols = build_table(("free_one_page", "release_pages", "vfs_read"))
        self.symbol_fault = None


class _StubDomain:
    def __init__(self, kernel):
        self.kernel = kernel


class _StubVcpu:
    name = "stub-vcpu"

    def __init__(self, kernel, ip):
        self.domain = _StubDomain(kernel)
        self.ip = ip


class TestDetectorDegradation:
    def _addr(self, kernel, name):
        return kernel.symbols.addr_of(name) + 4

    def test_healthy_hit_learns_range(self):
        detector = CriticalServiceDetector()
        kernel = _StubKernel()
        hit = detector.inspect(_StubVcpu(kernel, self._addr(kernel, "release_pages")))
        assert hit.critical and hit.symbol == "release_pages"
        assert detector.symbol_misses == 0 and detector.fallback_hits == 0

    def test_miss_falls_back_to_learned_ranges(self):
        detector = CriticalServiceDetector()
        kernel = _StubKernel()
        ip = self._addr(kernel, "release_pages")
        detector.inspect(_StubVcpu(kernel, ip))  # healthy: learn the range
        kernel.symbol_fault = "miss"
        rescued = detector.inspect(_StubVcpu(kernel, ip))
        assert rescued.critical and rescued.symbol == "release_pages"
        assert detector.symbol_misses == 1 and detector.fallback_hits == 1

    def test_miss_without_learned_range_is_blind(self):
        detector = CriticalServiceDetector()
        kernel = _StubKernel()
        kernel.symbol_fault = "miss"
        blind = detector.inspect(_StubVcpu(kernel, self._addr(kernel, "release_pages")))
        assert not blind.critical and blind.symbol is None
        assert detector.symbol_misses == 1 and detector.fallback_hits == 0

    def test_miss_ignores_user_space_ips(self):
        detector = CriticalServiceDetector()
        kernel = _StubKernel()
        kernel.symbol_fault = "miss"
        user = detector.inspect(_StubVcpu(kernel, USER_IP))
        assert not user.critical
        assert detector.symbol_misses == 0  # only kernel-range IPs consult the table

    def test_corrupt_map_misses_real_criticals(self):
        detector = CriticalServiceDetector()
        kernel = _StubKernel()
        kernel.symbol_fault = "corrupt"
        # release_pages resolves to its address-order neighbour vfs_read,
        # which is not whitelisted: a missed critical.
        wrong = detector.inspect(_StubVcpu(kernel, self._addr(kernel, "release_pages")))
        assert wrong.symbol == "vfs_read" and not wrong.critical
        assert detector.symbol_misses == 1

    def test_corrupt_map_creates_false_positives(self):
        detector = CriticalServiceDetector()
        kernel = _StubKernel()
        kernel.symbol_fault = "corrupt"
        # free_one_page's neighbour is release_pages — also critical, so
        # the misfire classifies (under the wrong name).
        fake = detector.inspect(_StubVcpu(kernel, self._addr(kernel, "free_one_page")))
        assert fake.symbol == "release_pages" and fake.critical


# ----------------------------------------------------------------------
# adaptive controller degradation (stub hypervisor)
# ----------------------------------------------------------------------
class _FakeStats:
    def __init__(self, windows=()):
        self.windows = list(windows)

    def mark_window(self):
        pass

    def window_events(self):
        if self.windows:
            return self.windows.pop(0)
        return {"ipi": 0, "ple": 0, "irq": 0}


class _FakeFaults:
    def __init__(self, profile_stale=False):
        self.profile_stale = profile_stale
        self.counters = {}
        self.warnings = []

    def count(self, name, delta=1):
        self.counters[name] = self.counters.get(name, 0) + delta

    def trace(self, kind, fault, target, action=None):
        pass

    def warn_degraded(self, topic, message):
        self.warnings.append(topic)


class _RefusingHv:
    def __init__(self, windows=(), refuse=True, faults=None):
        self.sim = Simulator()
        self.stats = _FakeStats(windows)
        self.refuse = refuse
        self.faults = faults
        self.resize_calls = 0

    def set_micro_cores(self, count):
        self.resize_calls += 1
        if self.refuse:
            raise FaultError("cpupool move refused (injected)")


class TestAdaptiveDegradation:
    def test_refused_resize_retries_then_abandons(self):
        faults = _FakeFaults()
        hv = _RefusingHv(faults=faults)
        controller = AdaptiveController()
        controller.start(hv)
        hv.sim.run(until=ms(100))
        # The initial apply plus every bounded retry was refused …
        assert controller.failed_resizes >= 1 + RESIZE_RETRIES
        # … and the controller gave up rather than retrying forever.
        assert controller.abandoned_resizes >= 1
        assert faults.counters.get("resize_abandoned", 0) >= 1
        assert "poolmove_fail" in faults.warnings

    def test_retry_skipped_when_decision_superseded(self):
        hv = _RefusingHv()
        controller = AdaptiveController()
        controller.hv = hv
        controller._apply(0)
        assert controller.failed_resizes == 1
        hv.refuse = False
        controller.num_ucores = 2  # a newer decision landed meanwhile
        calls = hv.resize_calls
        hv.sim.run(until=ms(100))
        assert hv.resize_calls == calls  # stale retry did not re-apply

    def test_stale_profile_clamps_instead_of_resizing(self):
        faults = _FakeFaults(profile_stale=True)
        hv = _RefusingHv(refuse=False, faults=faults)
        controller = AdaptiveController(epoch_interval=ms(50))
        controller.start(hv)
        hv.sim.run(until=ms(130))
        assert controller.stale_clamps >= 2  # clamped once per epoch
        assert hv.resize_calls == 0
        assert faults.counters.get("stale_profile_clamps", 0) >= 2
        assert "stale_profile" in faults.warnings


# ----------------------------------------------------------------------
# end-to-end injection through real scenarios
# ----------------------------------------------------------------------
def _tiny_corun(plan, duration=ms(25), warmup=ms(5), seed=7):
    from repro.core.policy import PolicySpec

    scenario = corun_scenario("dedup", policy=PolicySpec.baseline(), seed=seed)
    scenario.faults = plan
    system = scenario.build()
    result = system.run(duration, warmup_ns=warmup)
    return system, result


class TestInjectionEndToEnd:
    def test_forced_ack_unwedges_total_ipi_loss(self):
        # dedup's first shootdowns land after ~30 ms, so the window and
        # the run must reach past that point.
        plan = FaultPlan("total-loss").add(
            "ipi_drop", ms(6), ms(40), prob=1.0, max_resends=1, resend_ns=int(us(50))
        )
        with pytest.warns(DegradedModeWarning):
            system, result = _tiny_corun(plan, duration=ms(35))
        counters = result.faults["counters"]
        assert counters["ipi_dropped"] > 0
        assert counters["ipi_timeouts"] > 0  # resend budget exhausted
        assert check_system(system) == []  # …yet nothing wedged

    def test_pcpu_offline_leaves_consistent_pools(self):
        plan = FaultPlan("down").add("pcpu_offline", ms(6), pcpu=3)
        system, result = _tiny_corun(plan)
        hv = system.hv
        assert hv.pcpus[3].offline
        assert all(hv.pcpus[3] not in pool.pcpus
                   for pool in (hv.normal_pool, hv.micro_pool))
        assert result.faults["counters"]["injected_pcpu_offline"] == 1
        assert check_system(system) == []

    def test_pcpu_online_rejoins_normal_pool(self):
        plan = (FaultPlan("flap")
                .add("pcpu_offline", ms(6), pcpu=3)
                .add("pcpu_online", ms(15), pcpu=3))
        system, _result = _tiny_corun(plan)
        hv = system.hv
        assert not hv.pcpus[3].offline
        assert hv.pcpus[3] in hv.normal_pool.pcpus
        assert check_system(system) == []

    def test_offline_invalid_pcpu_index_rejected(self):
        plan = FaultPlan("bad").add("pcpu_offline", ms(6), pcpu=99)
        with pytest.raises(FaultError, match="valid pcpu index"):
            _tiny_corun(plan)

    def test_symbol_fault_unknown_domain_rejected(self):
        plan = FaultPlan("bad").add("symbol_table", ms(6), ms(10), domain="vm9")
        with pytest.raises(FaultError, match="unknown domain"):
            _tiny_corun(plan)

    def test_ple_misconfig_restores_saved_config(self):
        plan = FaultPlan("ple").add("ple_misconfig", ms(6), ms(12), window=0)
        system, result = _tiny_corun(plan)
        assert system.hv.ple.enabled  # restored at window close
        counters = result.faults["counters"]
        assert counters["injected_ple_misconfig"] == 1
        assert counters["recovered_ple_misconfig"] == 1


class TestInjectorWarnings:
    def test_warn_degraded_dedups_per_topic(self):
        injector = FaultInjector(FaultPlan("p"), seed=1)
        with pytest.warns(DegradedModeWarning) as caught:
            injector.warn_degraded("topic-a", "first")
            injector.warn_degraded("topic-a", "repeat (suppressed)")
            injector.warn_degraded("topic-b", "other topic")
        assert len(caught) == 2


class TestDeterminismAndCache:
    def _job(self, tag="faulted", faults=None):
        return SimJob(
            tag=tag,
            scenario="corun",
            scenario_kwargs={"workload_kind": "dedup"},
            policy={"mode": "baseline"},
            seed=7,
            duration_ns=ms(20),
            warmup_ns=ms(5),
            faults=faults,
        )

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        bare = run_job(self._job())
        empty = run_job(self._job(faults={"name": "empty", "faults": []}))
        assert json.dumps(bare, sort_keys=True) == json.dumps(empty, sort_keys=True)
        assert "faults" not in bare

    def test_same_plan_same_seed_reproduces(self):
        faults = make_builtin("lossy-ipi", ms(25)).to_dict()
        first = run_job(self._job(faults=faults))
        second = run_job(self._job(faults=faults))
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert first["faults"]["plan"] == "lossy-ipi"

    def test_faulted_results_survive_the_cache(self, tmp_path):
        jobs = [self._job(faults=make_builtin("lossy-ipi", ms(25)).to_dict())]
        direct = execute(jobs, workers=1, cache=False)
        cold = execute(jobs, workers=1, cache=True, cache_dir=tmp_path)
        warm = execute(jobs, workers=1, cache=True, cache_dir=tmp_path)
        key = jobs[0].tag
        for other in (cold, warm):
            assert (json.dumps(direct[key].to_dict(), sort_keys=True)
                    == json.dumps(other[key].to_dict(), sort_keys=True))

    def test_fault_plan_is_part_of_cache_identity(self):
        bare = self._job()
        faulted = self._job(faults=make_builtin("lossy-ipi", ms(25)).to_dict())
        assert bare.canonical() != faulted.canonical()


# ----------------------------------------------------------------------
# invariant checker
# ----------------------------------------------------------------------
class _SystemWrap:
    def __init__(self, hv):
        self.hv = hv


class TestInvariantChecker:
    def _healthy_system(self):
        from helpers import make_domain, make_hv, spawn_task, spin_program, start_and_run

        sim, hv = make_hv(num_pcpus=4)
        vm = make_domain(hv, name="vm1", vcpus=2)
        for vcpu in vm.vcpus:
            spawn_task(vcpu, spin_program())
        start_and_run(sim, hv, duration_ms=5)
        return sim, hv

    def test_healthy_system_passes(self):
        _sim, hv = self._healthy_system()
        assert check_system(_SystemWrap(hv)) == []

    def test_orphaned_pcpu_is_a_violation(self):
        _sim, hv = self._healthy_system()
        hv.normal_pool.pcpus.remove(hv.pcpus[0])
        violations = check_system(_SystemWrap(hv))
        assert any("pool membership" in v for v in violations)
        with pytest.raises(FaultError, match="invariant check failed"):
            assert_invariants(_SystemWrap(hv))

    def test_stuck_ipi_is_a_violation_past_grace(self):
        _sim, hv = self._healthy_system()
        injector = FaultInjector(FaultPlan("probe"), seed=1).install(hv)

        class _Op:
            id = 99
            kind = "tlb"
            complete = False
            initiator = None
            pending = (1, 2)

        injector.pending_ipis[99] = (_Op(), 0)
        # Young relative to the default multi-slice grace: no violation.
        assert check_system(_SystemWrap(hv)) == []
        # But a 5 ms old incomplete op fails a 1 ms grace.
        violations = check_system(_SystemWrap(hv), ipi_grace_ns=ms(1))
        assert any("ipi accounting" in v for v in violations)

    def test_completed_ipi_still_in_registry_is_fine(self):
        _sim, hv = self._healthy_system()
        injector = FaultInjector(FaultPlan("probe"), seed=1).install(hv)

        class _Op:
            id = 100
            kind = "tlb"
            complete = True
            initiator = None
            pending = ()

        injector.pending_ipis[100] = (_Op(), 0)
        assert check_system(_SystemWrap(hv), ipi_grace_ns=ms(1)) == []


# ----------------------------------------------------------------------
# trace export / analyze integration
# ----------------------------------------------------------------------
class TestTraceIntegration:
    def test_fault_records_flow_into_trace(self):
        from repro.core.policy import PolicySpec

        plan = FaultPlan("traced").add("stale_profile", ms(6), ms(12))
        scenario = corun_scenario("dedup", policy=PolicySpec.baseline(), seed=7)
        scenario.trace = True
        scenario.faults = plan
        system = scenario.build()
        system.run(ms(20), warmup_ns=ms(2))
        kinds = {record.kind for record in system.tracer}
        assert "fault_inject" in kinds and "fault_recover" in kinds

    def test_analyze_renders_fault_timeline(self):
        from repro.obs.analyze import TraceAnalysis, format_analysis

        records = [
            {"kind": "fault_inject", "t": int(ms(3)), "fault": "ipi_drop",
             "target": "vm1:v0"},
            {"kind": "fault_recover", "t": int(ms(9)), "fault": "ipi_drop",
             "target": None, "action": "restored"},
        ]
        analysis = TraceAnalysis("job", records)
        assert len(analysis.fault_events) == 2
        text = format_analysis(analysis)
        assert "fault timeline (repro.faults)" in text
        assert "restored" in text


class TestLoadJsonlValidation:
    def test_missing_file(self):
        from repro.sim.trace import load_jsonl

        with pytest.raises(TraceError, match="cannot read"):
            load_jsonl("/nonexistent/trace.jsonl")

    def test_truncated_json_line(self, tmp_path):
        from repro.sim.trace import load_jsonl

        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "meta", "t": 0}\n{"kind": "yie', encoding="utf-8")
        with pytest.raises(TraceError, match="line 2: malformed JSON"):
            load_jsonl(str(path))

    def test_non_object_record(self, tmp_path):
        from repro.sim.trace import load_jsonl

        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(TraceError, match="must be a JSON object"):
            load_jsonl(str(path))

    def test_record_without_kind(self, tmp_path):
        from repro.sim.trace import load_jsonl

        path = tmp_path / "t.jsonl"
        path.write_text('{"t": 0}\n', encoding="utf-8")
        with pytest.raises(TraceError, match="kind"):
            load_jsonl(str(path))

    def test_valid_file_round_trips(self, tmp_path):
        from repro.sim.trace import load_jsonl

        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "meta"}\n\n{"kind": "yield"}\n', encoding="utf-8")
        assert [r["kind"] for r in load_jsonl(str(path))] == ["meta", "yield"]


# ----------------------------------------------------------------------
# CLI and registry surfaces
# ----------------------------------------------------------------------
class TestCliSurfaces:
    def test_faults_subcommand_lists_plans(self, capsys):
        from repro.cli import main

        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        for name in builtin_plans():
            assert name in out

    def test_faults_kinds_reference(self, capsys):
        from repro.cli import main

        assert main(["faults", "--kinds"]) == 0
        out = capsys.readouterr().out
        for kind in FAULT_KINDS:
            assert kind in out

    def test_unknown_plan_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["corun", "dedup", "--duration-ms", "20",
                     "--faults", "no-such-plan"]) == 2
        assert "unknown fault plan" in capsys.readouterr().err

    def test_faulted_corun_reports_digest(self, capsys):
        from repro.cli import main

        assert main(["corun", "dedup", "--duration-ms", "25",
                     "--faults", "slow-ipi"]) == 0
        out = capsys.readouterr().out
        assert "fault injection: slow-ipi" in out
        assert "invariants: OK" in out

    def test_report_faults_raises_on_violations(self, capsys):
        from repro.cli import _report_faults

        digest = {"plan": "p", "counters": {},
                  "invariant_violations": ["starvation: vm1:v0 stuck"]}
        with pytest.raises(FaultError, match="starvation"):
            _report_faults(digest)

    def test_registry_invariant_gate_raises(self):
        from repro.experiments.registry import _check_fault_invariants

        class _Res:
            faults = {"invariant_violations": ["ipi accounting: op#1 stuck"]}

        with pytest.raises(FaultError, match="faulted job"):
            _check_fault_invariants({"job": _Res()})

    def test_registry_invariant_gate_passes_clean(self):
        from repro.experiments.registry import _check_fault_invariants

        class _Healthy:
            faults = None

        class _Degraded:
            faults = {"invariant_violations": []}

        _check_fault_invariants({"a": _Healthy(), "b": _Degraded()})
