"""Tests for the timeline sampler."""

from repro.metrics.timeline import Series, TimelineSampler, standard_probes
from repro.sim.engine import Simulator
from repro.sim.time import ms

from helpers import make_domain, make_hv, spawn_task, spin_program


class TestSeries:
    def test_aggregates(self):
        series = Series("s")
        for t, v in ((0, 1), (10, 3), (20, 2)):
            series.append(t, v)
        assert series.max() == 3
        assert series.min() == 1
        assert series.mean() == 2.0
        assert series.last() == 2
        assert len(series) == 3

    def test_empty(self):
        series = Series("s")
        assert series.last() is None
        assert series.max() is None
        assert series.mean() == 0.0

    def test_changes_compresses_runs(self):
        series = Series("s")
        for t, v in ((0, 0), (5, 0), (10, 2), (15, 2), (20, 1)):
            series.append(t, v)
        assert series.changes() == [(0, 0), (10, 2), (20, 1)]


class TestSampler:
    def test_samples_at_period(self):
        sim = Simulator()
        counter = {"n": 0}

        def bump(_arg=None):
            counter["n"] += 1
            sim.schedule(ms(1), bump)

        bump()
        sampler = TimelineSampler(sim, period=ms(2)).probe("n", lambda: counter["n"])
        sampler.start()
        sim.run(until=ms(10))
        series = sampler["n"]
        assert len(series) == 6  # t=0,2,4,6,8,10
        assert series.values == sorted(series.values)

    def test_standard_probes_track_scheduler_state(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=3)
        for vcpu in domain.vcpus:
            spawn_task(vcpu, spin_program())
        hv.start()
        sampler = standard_probes(TimelineSampler(sim, period=ms(1)), hv)
        sampler.start()
        sim.run(until=ms(20))
        assert sampler["running_vcpus"].max() == 2     # 2 pCPUs
        assert sampler["vm_runnable"].max() >= 1       # someone always waits
        assert sampler["micro_cores"].max() == 0

    def test_micro_pool_growth_visible(self):
        sim, hv = make_hv(num_pcpus=4)
        domain = make_domain(hv, vcpus=2)
        for vcpu in domain.vcpus:
            spawn_task(vcpu, spin_program())
        hv.start()
        sampler = standard_probes(TimelineSampler(sim, period=ms(1)), hv)
        sampler.start()
        sim.run(until=ms(5))
        hv.set_micro_cores(2)
        sim.run(until=ms(20))
        changes = sampler["micro_cores"].changes()
        assert changes[0][1] == 0
        assert sampler["micro_cores"].last() == 2
