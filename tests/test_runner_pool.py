"""The persistent worker pool: lifetime, scheduling, transport, and
crash resilience.

The contract under test: ``execute()``/``execute_many()`` through the
persistent pool must be byte-identical to serial execution (payloads
travel either through the pipe or through the cache), the pool must
spawn once and be reused across calls, a crashed worker must cost at
most one retry — never a hang — and every degraded path must fall back
inline instead of failing the run.
"""

import json
import os

import pytest

from repro.errors import WorkerError
from repro.runner import SimJob, costmodel, execute, execute_many
from repro.runner import executor as executor_mod
from repro.runner import pool as pool_mod
from repro.sim.time import ms


def _job(tag, seed, duration_ms=10):
    return SimJob(
        tag=tag,
        scenario="solo",
        scenario_kwargs={"workload_kind": "gmake"},
        seed=seed,
        duration_ns=ms(duration_ms),
    )


def _norm(results):
    return json.dumps(
        {tag: res.to_dict() for tag, res in results.items()}, sort_keys=True
    )


@pytest.fixture
def fresh_pool_env():
    """Tear the shared pool down after a test that changed its spawn
    environment (crash hooks leak into workers via os.environ)."""
    pool_mod.shutdown_shared()
    yield
    pool_mod.shutdown_shared()


class TestDefaultWorkers:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(executor_mod.ENV_WORKERS, raising=False)
        assert executor_mod.default_workers() == 1

    def test_integer(self, monkeypatch):
        monkeypatch.setenv(executor_mod.ENV_WORKERS, "3")
        assert executor_mod.default_workers() == 3

    def test_auto_maps_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv(executor_mod.ENV_WORKERS, "auto")
        assert executor_mod.default_workers() == max(1, os.cpu_count() or 1)

    def test_garbage_warns_instead_of_silently_degrading(self, monkeypatch):
        monkeypatch.setenv(executor_mod.ENV_WORKERS, "banana")
        with pytest.warns(RuntimeWarning, match="banana"):
            assert executor_mod.default_workers() == 1


class TestPoolMode:
    def test_default_is_persistent(self, monkeypatch):
        monkeypatch.delenv(pool_mod.ENV_POOL, raising=False)
        assert pool_mod.pool_mode() == "persistent"

    @pytest.mark.parametrize(
        "raw,mode",
        [("legacy", "legacy"), ("off", "off"), ("persistent", "persistent")],
    )
    def test_explicit_modes(self, monkeypatch, raw, mode):
        monkeypatch.setenv(pool_mod.ENV_POOL, raw)
        assert pool_mod.pool_mode() == mode

    def test_unknown_mode_warns(self, monkeypatch):
        monkeypatch.setenv(pool_mod.ENV_POOL, "warp9")
        with pytest.warns(RuntimeWarning, match="warp9"):
            assert pool_mod.pool_mode() == "persistent"


class TestPersistentPool:
    def test_pool_reused_across_execute_calls(self, tmp_path):
        first = execute([_job("a", 1), _job("b", 2)], workers=2, cache=False)
        shared = pool_mod._SHARED
        assert shared is not None and shared.alive
        pids = shared.worker_pids()
        second = execute([_job("c", 3), _job("d", 4)], workers=2, cache=False)
        assert pool_mod._SHARED is shared
        assert shared.worker_pids() == pids  # same processes, no respawn
        assert set(first) == {"a", "b"} and set(second) == {"c", "d"}

    def test_payload_transport_matches_serial(self):
        jobs = [_job("j%d" % i, seed=i) for i in range(4)]
        serial = execute(jobs, workers=1, cache=False)
        pooled = execute(jobs, workers=2, cache=False)
        assert _norm(serial) == _norm(pooled)

    def test_cache_transport_matches_serial(self, tmp_path):
        jobs = [_job("j%d" % i, seed=i) for i in range(4)]
        serial = execute(jobs, workers=1, cache=False)
        pooled = execute(jobs, workers=2, cache=True, cache_dir=tmp_path)
        assert _norm(serial) == _norm(pooled)
        # The workers wrote the entries themselves (cache-as-transport):
        # every unique job has exactly one valid entry on disk.
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == len(jobs)
        for entry in entries:
            payload = json.loads(entry.read_text())
            assert payload["key"] == entry.stem
            assert isinstance(payload["result"], dict)
        # ... and the warm replay serves them back bit-identically.
        warm = execute(jobs, workers=2, cache=True, cache_dir=tmp_path)
        assert _norm(warm) == _norm(serial)

    def test_grow_on_larger_request(self):
        execute([_job("a", 1), _job("b", 2)], workers=2, cache=False)
        size_before = pool_mod._SHARED.size
        execute([_job("c", 3), _job("d", 4), _job("e", 5)], workers=3, cache=False)
        assert pool_mod._SHARED.size == max(size_before, 3)

    def test_mode_off_never_spawns(self, monkeypatch):
        monkeypatch.setenv(pool_mod.ENV_POOL, "off")
        pool_mod.shutdown_shared()
        results = execute([_job("a", 1), _job("b", 2)], workers=2, cache=False)
        assert pool_mod._SHARED is None
        assert set(results) == {"a", "b"}


class TestWorkerPoolPrimitive:
    def test_chunked_run_returns_input_order(self, fresh_pool_env):
        pool = pool_mod.WorkerPool(2)
        try:
            jobs = [_job("c%d" % i, seed=10 + i) for i in range(5)]
            entries = [(job.to_dict(), None, None) for job in jobs]
            outcomes = pool.run(entries, chunk_size=2)
            assert [o.kind for o in outcomes] == ["payload"] * 5
            inline = [executor_mod.run_job(job) for job in jobs]
            assert [o.value for o in outcomes] == inline
            assert all(o.seconds > 0 for o in outcomes)
        finally:
            pool.close()

    def test_in_job_exception_surfaces_as_error_outcome(self, fresh_pool_env):
        pool = pool_mod.WorkerPool(1)
        try:
            bad = SimJob(tag="bad", scenario="no-such-scenario", duration_ns=ms(10))
            (outcome,) = pool.run([(bad.to_dict(), None, None)])
            assert outcome.kind == "error"
            assert "no-such-scenario" in outcome.value
        finally:
            pool.close()


class TestCrashResilience:
    def test_crash_retried_once_then_succeeds(self, tmp_path, monkeypatch, fresh_pool_env):
        marker = tmp_path / "crashed-once"
        monkeypatch.setenv(pool_mod.ENV_TEST_CRASH, "victim:%s" % marker)
        jobs = [_job("j0", 1), _job("victim", 2), _job("j2", 3)]
        with pytest.warns(RuntimeWarning, match="retrying"):
            results = execute(jobs, workers=2, cache=False)
        assert marker.exists()
        assert set(results) == {"j0", "victim", "j2"}
        monkeypatch.delenv(pool_mod.ENV_TEST_CRASH)
        pool_mod.shutdown_shared()
        serial = execute(jobs, workers=1, cache=False)
        assert _norm(results) == _norm(serial)

    def test_repeated_crash_raises_worker_error_not_hang(
        self, monkeypatch, fresh_pool_env
    ):
        monkeypatch.setenv(pool_mod.ENV_TEST_CRASH, "victim")
        jobs = [_job("j0", 1), _job("victim", 2)]
        with pytest.warns(RuntimeWarning, match="retrying"):
            with pytest.raises(WorkerError, match="victim"):
                execute(jobs, workers=2, cache=False)

    def test_worker_error_message_names_the_job(self, monkeypatch, fresh_pool_env):
        monkeypatch.setenv(pool_mod.ENV_TEST_CRASH, "victim")
        with pytest.warns(RuntimeWarning, match="retrying"):
            with pytest.raises(WorkerError, match="died repeatedly"):
                execute([_job("victim", 2), _job("ok", 3)], workers=2, cache=False)


class TestExecuteMany:
    def test_cross_plan_dedup_simulates_once(self, tmp_path):
        plans = {
            "alpha": [_job("a1", seed=1), _job("shared", seed=2)],
            "beta": [_job("b1", seed=2), _job("b2", seed=3)],  # seed 2 shared
        }
        results = execute_many(plans, workers=1, cache=True, cache_dir=tmp_path)
        assert set(results) == {"alpha", "beta"}
        # 4 tags but only 3 unique physical points -> 3 cache entries.
        assert len(list(tmp_path.glob("*.json"))) == 3
        assert (
            results["alpha"]["shared"].to_dict() == results["beta"]["b1"].to_dict()
        )

    def test_duplicate_tags_inside_one_plan_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="alpha"):
            execute_many(
                {"alpha": [_job("x", 1), _job("x", 2)]}, workers=1, cache=False
            )

    def test_empty_batch(self):
        assert execute_many({}, workers=1, cache=False) == {}

    def test_concurrent_callers_serialise_on_the_dispatch_lock(self, tmp_path):
        """Two threads calling execute_many at once (the `repro serve`
        multi-client shape) must both succeed with correct results: the
        dispatch lock serialises them instead of the loser hitting the
        pool's single-dispatcher guard or silently degrading inline.
        Interleaved batches must also leave the shared pool's epoch
        accounting coherent — a third batch afterwards still works."""
        import threading

        pool_mod.shutdown_shared()
        results, failures = {}, []

        def batch(name, seeds):
            try:
                plans = {name: [_job("%s%d" % (name, s), seed=s) for s in seeds]}
                results[name] = execute_many(
                    plans, workers=2, cache=True, cache_dir=tmp_path
                )[name]
            except Exception as err:  # noqa: BLE001 - surfaced after join
                failures.append((name, repr(err)))

        threads = [
            threading.Thread(target=batch, args=("alpha", (101, 102, 103))),
            threading.Thread(target=batch, args=("beta", (201, 202, 203))),
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert failures == []
            assert set(results) == {"alpha", "beta"}

            # Both batches byte-identical to a serial re-run (cache off
            # so the comparison actually re-simulates).
            for name, seeds in (("alpha", (101, 102, 103)), ("beta", (201, 202, 203))):
                serial = execute(
                    [_job("%s%d" % (name, s), seed=s) for s in seeds],
                    workers=1, cache=False,
                )
                assert _norm(results[name]) == _norm(serial)

            # Epoch accounting survived the interleaving: the pool is
            # idle, and a follow-up batch on the same pool completes.
            pool = pool_mod.shared_pool(2)
            assert not pool.running
            again = execute_many(
                {"gamma": [_job("g", seed=301)]},
                workers=2, cache=True, cache_dir=tmp_path,
            )
            assert "g" in again["gamma"]
        finally:
            pool_mod.shutdown_shared()


class TestCostModel:
    def test_observe_then_predict(self):
        model = costmodel.CostModel()
        job = _job("a", 1, duration_ms=10)
        model.observe(job, 2.0)
        assert model.predict(job) == pytest.approx(2.0)
        # Twice the horizon -> twice the prediction within one feature.
        assert model.predict(_job("b", 2, duration_ms=20)) == pytest.approx(4.0)

    def test_unseen_feature_falls_back_to_known_mean(self):
        model = costmodel.CostModel()
        model.observe(_job("a", 1, duration_ms=10), 1.0)
        corun = SimJob(
            tag="c",
            scenario="corun",
            scenario_kwargs={"workload_kind": "gmake"},
            seed=1,
            duration_ns=ms(10),
        )
        assert model.predict(corun) == pytest.approx(1.0)

    def test_ewma_tracks_new_observations(self):
        model = costmodel.CostModel()
        job = _job("a", 1)
        model.observe(job, 1.0)
        model.observe(job, 3.0)
        assert model.predict(job) == pytest.approx(2.0)  # alpha = 0.5

    def test_save_load_roundtrip_and_merge(self, tmp_path):
        model = costmodel.CostModel.load(tmp_path)
        model.observe(_job("a", 1), 1.5)
        model.save()
        assert costmodel.model_path(tmp_path).exists()
        # A second model observing a different feature merges, not clobbers.
        other = costmodel.CostModel.load(tmp_path)
        corun = SimJob(
            tag="c",
            scenario="corun",
            scenario_kwargs={"workload_kind": "gmake"},
            seed=1,
            duration_ns=ms(10),
        )
        other.observe(corun, 0.5)
        other.save()
        merged = costmodel.CostModel.load(tmp_path)
        assert merged.predict(_job("a", 1)) == pytest.approx(1.5)
        assert merged.predict(corun) == pytest.approx(0.5)

    def test_corrupt_model_file_starts_fresh(self, tmp_path):
        path = costmodel.model_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text("{torn")
        model = costmodel.CostModel.load(tmp_path)
        assert model.predict(_job("a", 1)) > 0  # default rate

    def test_longest_first_ordering(self):
        model = costmodel.CostModel()
        short = _job("short", 1, duration_ms=10)
        long = _job("long", 2, duration_ms=40)
        mid = _job("mid", 3, duration_ms=20)
        ordered = costmodel.order_longest_first([short, long, mid], model)
        assert [job.tag for job in ordered] == ["long", "mid", "short"]

    def test_stable_for_equal_costs(self):
        model = costmodel.CostModel()
        jobs = [_job("j%d" % i, seed=i, duration_ms=10) for i in range(4)]
        ordered = costmodel.order_longest_first(jobs, model)
        assert [job.tag for job in ordered] == [job.tag for job in jobs]


class TestChunkSizing:
    def test_small_plans_unchunked(self):
        assert executor_mod._chunk_size(8, workers=4) == 1

    def test_large_plans_chunk_and_cap(self):
        assert executor_mod._chunk_size(64, workers=2) == 8
        assert executor_mod._chunk_size(10_000, workers=2) == executor_mod.CHUNK_CAP
