"""Tests for the workload synchronisation helpers (Barrier, TokenRing)."""

from repro.guest.actions import Compute, Emit
from repro.sim.time import ms, us
from repro.workloads.sync import Barrier, TokenRing

from helpers import make_domain, make_hv, spawn_task


def _run_threads(programs, vcpus=None, duration_ms=50, num_pcpus=4):
    sim, hv = make_hv(num_pcpus=num_pcpus)
    domain = make_domain(hv, vcpus=vcpus or len(programs))
    for index, factory in enumerate(programs):
        spawn_task(domain.vcpus[index % len(domain.vcpus)], factory, "t%d" % index)
    hv.start()
    sim.run(until=ms(duration_ms))
    return sim, hv, domain


class TestBarrier:
    def test_all_parties_advance_together(self):
        barrier = Barrier(3)
        rounds = {i: 0 for i in range(3)}

        def member(index):
            def gen():
                while True:
                    yield Compute(us(20 * (index + 1)))  # uneven arrival
                    yield from barrier.arrive()
                    rounds[index] += 1

            return gen

        _run_threads([member(i) for i in range(3)])
        assert barrier.generations > 5
        values = list(rounds.values())
        # No member can be more than one generation ahead.
        assert max(values) - min(values) <= 1

    def test_single_party_barrier_never_blocks(self):
        barrier = Barrier(1)
        done = {"n": 0}

        def solo():
            while True:
                yield Compute(us(10))
                yield from barrier.arrive()
                done["n"] += 1

        _run_threads([solo])
        assert done["n"] > 100
        assert barrier.generations == done["n"]

    def test_waitq_empty_between_generations(self):
        barrier = Barrier(2)

        def member():
            while True:
                yield Compute(us(15))
                yield from barrier.arrive()

        _run_threads([member, member])
        assert barrier.waitq.waiting <= 1


class TestTokenRing:
    def test_tokens_circulate_without_deadlock(self):
        ring = TokenRing(3)
        progress = [0, 0, 0]

        def stage(index):
            def gen():
                while True:
                    yield Compute(us(30))
                    yield from ring.pass_token(index)
                    progress[index] += 1

            return gen

        _run_threads([stage(i) for i in range(3)])
        assert min(progress) > 20
        # Stages stay within a token of one another.
        assert max(progress) - min(progress) <= 3

    def test_extra_tokens_increase_concurrency(self):
        ring = TokenRing(2, tokens_per_stage=2)
        total = {"n": 0}

        def stage(index):
            def gen():
                while True:
                    yield Compute(us(30))
                    yield from ring.pass_token(index)
                    total["n"] += 1

            return gen

        _run_threads([stage(0), stage(1)])
        assert total["n"] > 40

    def test_ring_of_one_is_self_sustaining(self):
        ring = TokenRing(1)
        laps = {"n": 0}

        def stage():
            while True:
                yield Compute(us(10))
                yield from ring.pass_token(0)
                laps["n"] += 1

        _run_threads([stage])
        assert laps["n"] > 100


class TestEmitOrdering:
    def test_emits_observe_program_order(self):
        order = []

        def program():
            for index in range(5):
                yield Compute(us(10))
                yield Emit(lambda _n, i=index: order.append(i))

        _run_threads([lambda: program()], vcpus=1, duration_ms=5)
        assert order == [0, 1, 2, 3, 4]
