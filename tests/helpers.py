"""Shared fixtures/builders for the test suite."""

from repro.guest.actions import Compute
from repro.guest.task import GuestTask
from repro.hypervisor.hypervisor import Hypervisor
from repro.sim.engine import Simulator
from repro.sim.time import ms, us


def make_hv(num_pcpus=4, **kwargs):
    """A hypervisor on a fresh simulator (not started)."""
    sim = Simulator()
    hv = Hypervisor(sim, num_pcpus=num_pcpus, **kwargs)
    return sim, hv


def make_domain(hv, name="vm", vcpus=2, weight=256):
    return hv.create_domain(name, vcpus, weight=weight)


def spawn_task(vcpu, program_factory, name="task"):
    """Create + register a guest task on a vCPU."""
    task = GuestTask(name, vcpu, program_factory)
    vcpu.guest_cpu.add_task(task)
    return task


def spin_program(chunk_us=100.0, symbol=None):
    """An endless compute loop."""

    def factory():
        def gen():
            while True:
                yield Compute(us(chunk_us), symbol=symbol)

        return gen()

    return factory


def counted_compute(counter, chunk_us=50.0):
    """Endless compute that bumps ``counter['n']`` per completed chunk."""

    def factory():
        def gen():
            while True:
                yield Compute(us(chunk_us))
                counter["n"] += 1

        return gen()

    return factory


def start_and_run(sim, hv, duration_ms=10):
    hv.start()
    sim.run(until=ms(duration_ms))
    return sim.now
