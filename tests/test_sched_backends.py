"""Backend-specific behaviour of the repro.sched registry and the four
alternative backends (credit2, cosched, balance, shortslice)."""

import pytest

from repro.errors import ConfigError
from repro.sched import (
    BOOST,
    OVER,
    UNDER,
    BalanceScheduler,
    CoScheduler,
    Credit2Scheduler,
    CreditScheduler,
    ShortSliceScheduler,
    registry,
)
from repro.sim.engine import Simulator
from repro.sim.time import us


class _FakePCpu:
    def __init__(self, index):
        self.index = index
        self.info = type("Info", (), {"index": index})()
        self.current = None
        self.preempt_requested = False
        self.tickled = 0

    def tickle(self):
        self.tickled += 1

    def request_preempt(self):
        self.preempt_requested = True

    def __repr__(self):
        return "pcpu%d" % self.index


class _FakeVcpu:
    def __init__(self, name, domain=None, credits=1000):
        self.name = name
        self.domain = domain
        self.credits = credits
        self.priority = None
        self.affinity = None
        self.yield_flag = False
        self.last_pcpu = None
        self.runq_pcpu = None

    def __repr__(self):
        return self.name


class _FakeDomain:
    def __init__(self, name, weight=256):
        self.name = name
        self.weight = weight
        self.vcpus = []

    def vcpu(self, name, credits=1000):
        vcpu = _FakeVcpu(name, self, credits=credits)
        self.vcpus.append(vcpu)
        return vcpu


class _Pool:
    name = "normal"

    def __init__(self, pcpus):
        self.pcpus = pcpus


def _make(cls, num_pcpus=2, **kwargs):
    scheduler = cls(Simulator(), slice_jitter=0, **kwargs)
    pcpus = [_FakePCpu(i) for i in range(num_pcpus)]
    scheduler.pool = _Pool(pcpus)
    for pcpu in pcpus:
        scheduler.register_pcpu(pcpu)
    return scheduler, pcpus


class TestRegistry:
    def test_known_backends_registered(self):
        assert registry.available() == [
            "balance",
            "cosched",
            "credit",
            "credit2",
            "shortslice",
        ]

    def test_get_returns_class(self):
        assert registry.get("credit") is CreditScheduler
        assert registry.get("credit2") is Credit2Scheduler
        assert registry.get("cosched") is CoScheduler
        assert registry.get("balance") is BalanceScheduler
        assert registry.get("shortslice") is ShortSliceScheduler

    def test_unknown_name_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            registry.get("warp9")

    def test_describe_pairs(self):
        described = dict(registry.describe())
        assert set(described) == set(registry.available())
        assert all(described.values())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):

            @registry.register
            class Dupe(CreditScheduler):  # noqa: F811
                name = "credit"


class TestShortSlice:
    def test_is_credit_with_100us_slice(self):
        scheduler, _ = _make(ShortSliceScheduler)
        assert isinstance(scheduler, CreditScheduler)
        assert scheduler.slice == us(100)

    def test_explicit_slice_still_wins(self):
        scheduler, _ = _make(ShortSliceScheduler, slice_ns=us(500))
        assert scheduler.slice == us(500)


class TestCredit2:
    def test_no_boost_priority(self):
        scheduler, pcpus = _make(Credit2Scheduler)
        vcpu = _FakeVcpu("v", _FakeDomain("d"))
        scheduler.enqueue(vcpu, boost=True)
        assert vcpu.priority != BOOST
        assert vcpu.priority == UNDER

    def test_wake_never_preempts_midslice(self):
        scheduler, pcpus = _make(Credit2Scheduler, num_pcpus=1)
        hog = _FakeVcpu("hog", _FakeDomain("d2"), credits=-1)
        hog.priority = OVER
        pcpus[0].current = hog
        waker = _FakeVcpu("waker", _FakeDomain("d1"), credits=1000)
        waker.last_pcpu = pcpus[0]
        scheduler.enqueue(waker, boost=True)
        assert not pcpus[0].preempt_requested

    def test_pick_highest_credit_first(self):
        scheduler, pcpus = _make(Credit2Scheduler, num_pcpus=1)
        domain = _FakeDomain("d")
        mid = domain.vcpu("mid", credits=500)
        rich = domain.vcpu("rich", credits=900)
        poor = domain.vcpu("poor", credits=100)
        for vcpu in (mid, rich, poor):
            vcpu.last_pcpu = pcpus[0]
            scheduler.enqueue(vcpu)
        assert scheduler.pick(pcpus[0]) is rich
        assert scheduler.pick(pcpus[0]) is mid
        assert scheduler.pick(pcpus[0]) is poor

    def test_weighted_burn(self):
        scheduler, _ = _make(Credit2Scheduler)
        heavy = _FakeDomain("heavy", weight=512)
        light = _FakeDomain("light", weight=256)
        hv = heavy.vcpu("h", credits=10_000)
        lv = light.vcpu("l", credits=10_000)
        scheduler.charge(hv, 1000)
        scheduler.charge(lv, 1000)
        assert hv.credits == 10_000 - 500   # 1000 * 256 / 512
        assert lv.credits == 10_000 - 1000  # 1000 * 256 / 256

    def test_equal_refill_across_weights(self):
        scheduler, pcpus = _make(Credit2Scheduler)
        heavy = _FakeDomain("heavy", weight=512)
        light = _FakeDomain("light", weight=256)
        heavy.vcpu("h", credits=0)
        light.vcpu("l", credits=0)
        scheduler.account([heavy, light], num_pcpus=len(pcpus))
        assert heavy.vcpus[0].credits == light.vcpus[0].credits

    def test_dual_queue_steal(self):
        scheduler, pcpus = _make(Credit2Scheduler, num_pcpus=2)
        vcpu = _FakeVcpu("v", _FakeDomain("d"))
        vcpu.last_pcpu = pcpus[0]   # queue 0
        scheduler.enqueue(vcpu)
        assert scheduler.pick(pcpus[1]) is vcpu   # odd pCPU steals
        assert scheduler.steals == 1


class TestCoSched:
    def test_only_gang_domain_picked(self):
        scheduler, pcpus = _make(CoScheduler)
        first, second = _FakeDomain("dom0"), _FakeDomain("dom1")
        a = first.vcpu("a")
        b = second.vcpu("b")
        scheduler.enqueue(a)
        scheduler.enqueue(b)
        assert scheduler.pick(pcpus[0]) is a
        pcpus[0].current = a
        assert scheduler.pick(pcpus[1]) is None
        assert scheduler.gang_idles == 1

    def test_rotation_after_window(self):
        scheduler, pcpus = _make(CoScheduler)
        first, second = _FakeDomain("dom0"), _FakeDomain("dom1")
        a = first.vcpu("a")
        b = second.vcpu("b")
        scheduler.enqueue(a)
        scheduler.enqueue(b)
        assert scheduler.pick(pcpus[0]) is a
        pcpus[0].current = a
        scheduler._gang_until = 0   # close the window
        assert scheduler.pick(pcpus[1]) is b
        # The straggler from the previous gang is preempted on rotation.
        assert pcpus[0].preempt_requested

    def test_gang_members_descheduled_with_window(self):
        scheduler, pcpus = _make(CoScheduler)
        domain = _FakeDomain("dom0")
        vcpu = domain.vcpu("a")
        scheduler.enqueue(vcpu)
        assert scheduler.pick(pcpus[0]) is vcpu
        remaining = scheduler.slice_for(vcpu)
        assert 0 < remaining <= scheduler.slice

    def test_empty_pool_picks_none(self):
        scheduler, pcpus = _make(CoScheduler)
        assert scheduler.pick(pcpus[0]) is None
        assert scheduler.gang_idles == 0


class TestBalance:
    def test_diverts_when_sibling_queued_at_home(self):
        scheduler, pcpus = _make(BalanceScheduler)
        domain = _FakeDomain("dom0")
        sibling = domain.vcpu("s")
        sibling.last_pcpu = pcpus[0]
        scheduler.enqueue(sibling)
        mover = domain.vcpu("m")
        mover.last_pcpu = pcpus[0]
        scheduler.enqueue(mover)
        assert mover.runq_pcpu is pcpus[1]

    def test_tolerates_running_sibling_at_home(self):
        # Migration resistance: a *running* sibling will vacate within a
        # slice; affinity wins.
        scheduler, pcpus = _make(BalanceScheduler)
        domain = _FakeDomain("dom0")
        runner = domain.vcpu("r")
        pcpus[0].current = runner
        stayer = domain.vcpu("s")
        stayer.last_pcpu = pcpus[0]
        scheduler.enqueue(stayer)
        assert stayer.runq_pcpu is pcpus[0]

    def test_falls_back_to_credit_when_no_free_pcpu(self):
        scheduler, pcpus = _make(BalanceScheduler)
        domain = _FakeDomain("dom0")
        for index, pcpu in enumerate(pcpus):
            planted = domain.vcpu("q%d" % index)
            planted.last_pcpu = pcpu
            scheduler.enqueue(planted)
        mover = domain.vcpu("m")
        mover.last_pcpu = pcpus[0]
        scheduler.enqueue(mover)
        # Every pCPU has a queued sibling: plain credit placement
        # (work conservation beats balance).
        assert mover.runq_pcpu is not None

    def test_steal_stays_plain_credit(self):
        # Balance changes placement only; stealing is credit1's (a
        # stealing pCPU has no current and an empty queue, so a
        # sibling-aware destination check could never fire anyway).
        scheduler, pcpus = _make(BalanceScheduler)
        domain = _FakeDomain("dom0")
        vcpu = domain.vcpu("v")
        vcpu.last_pcpu = pcpus[0]
        scheduler.enqueue(vcpu)
        assert scheduler.pick(pcpus[1]) is vcpu
        assert scheduler.steals == 1
