"""``repro serve`` end to end: validation, admission, lifecycle,
streams, metrics, determinism, and a concurrent soak.

Every HTTP test runs against a real server on a real socket (port 0,
event loop on a background thread) with the cache pointed at a tmp
dir — no mocked transport anywhere. Workers default to 1 so jobs run
inline in the dispatcher thread; the concurrency under test is the
service's (admission, streams, many clients), not the pool's, which
has its own suite.
"""

import http.client
import json
import threading
import time

import pytest

from repro.obs import telemetry
from repro.runner.jobs import SimJob, run_job
from repro.serve import ServeConfig, ValidationError, start_in_thread
from repro.serve.admission import AdmissionController, Rejection
from repro.serve.jobs import TERMINAL, compile_experiment, compile_job
from repro.sim.time import ms


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.set_enabled(True)
    yield
    telemetry.reset()


@pytest.fixture
def server(tmp_path):
    handle = start_in_thread(
        ServeConfig(port=0, workers=1, cache_dir=str(tmp_path / "cache"))
    )
    yield handle
    handle.stop()


JOB = {
    "tag": "point",
    "scenario": "solo",
    "scenario_kwargs": {"workload_kind": "gmake"},
    "seed": 11,
    "duration_ns": ms(4),
}


class Client:
    """A tiny http.client wrapper; one connection per request keeps
    tests independent of keep-alive behaviour (covered separately)."""

    def __init__(self, handle, name=None):
        self.handle = handle
        self.name = name

    def request(self, method, path, body=None, headers=None):
        headers = dict(headers or {})
        if self.name:
            headers["X-Repro-Client"] = self.name
        conn = http.client.HTTPConnection(
            self.handle.host, self.handle.port, timeout=120
        )
        try:
            conn.request(
                method, path,
                body=json.dumps(body) if body is not None else None,
                headers=headers,
            )
            resp = conn.getresponse()
            data = resp.read()
        finally:
            conn.close()
        payload = None
        if resp.getheader("Content-Type", "").startswith("application/json"):
            payload = json.loads(data)
        return resp.status, dict(resp.getheaders()), payload if payload is not None else data

    def stream_events(self, job_id, sse=False):
        """Consume ``/jobs/<id>/events`` until the stream closes;
        returns the decoded event dicts (heartbeats skipped)."""
        headers = {"Accept": "text/event-stream"} if sse else {}
        if self.name:
            headers["X-Repro-Client"] = self.name
        conn = http.client.HTTPConnection(
            self.handle.host, self.handle.port, timeout=120
        )
        try:
            conn.request("GET", "/jobs/%s/events" % job_id, headers=headers)
            resp = conn.getresponse()
            assert resp.status == 200
            body = resp.read().decode("utf-8")
        finally:
            conn.close()
        events = []
        for line in body.splitlines():
            line = line.strip()
            if sse:
                if not line.startswith("data:"):
                    continue
                line = line[len("data:"):].strip()
            if not line or line.startswith(":"):
                continue
            event = json.loads(line)
            if event.get("event") != "heartbeat":
                events.append(event)
        return events, resp

    def wait_terminal(self, job_id, timeout=60):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, _, body = self.request("GET", "/jobs/%s" % job_id)
            assert status == 200
            if body["state"] in TERMINAL:
                return body
            time.sleep(0.02)
        raise AssertionError("submission %s never reached a terminal state" % job_id)


class TestValidation:
    """compile_* must reject anything a registry does not know —
    submission-time 400s, never worker-side crashes."""

    def test_minimal_job_compiles(self):
        work = compile_job(dict(JOB))
        assert len(work.jobs) == 1
        assert work.jobs[0].scenario == "solo"

    @pytest.mark.parametrize(
        "patch, match",
        [
            ({"scenario": "warp"}, "unknown scenario"),
            ({"duration_ns": None}, "must be an integer"),
            ({"duration_ns": 0}, ">= 1"),
            ({"duration_ns": True}, "must be an integer"),
            ({"seed": "42"}, "must be an integer"),
            ({"warmup_ns": -1}, ">= 0"),
            ({"tag": ""}, "non-empty"),
            ({"surprise": 1}, "unknown field"),
            ({"policy": {"mode": "psychic"}}, "unknown policy mode"),
            ({"overrides": {"quantum": 9}}, "unknown override"),
            ({"overrides": {"scheduler": "warp"}}, "unknown scheduler"),
            ({"scenario_kwargs": {"workload_kind": "bitcoin"}}, "unknown workload"),
            ({"faults": "nope"}, "unknown fault plan"),
            ({"trace": {"x": 1}}, "'trace' must be"),
            ({"duration_ns": 20_000_000_000}, "service limit"),
        ],
    )
    def test_bad_job_fields_rejected(self, patch, match):
        payload = dict(JOB)
        payload.update(patch)
        with pytest.raises(ValidationError, match=match):
            compile_job(payload)

    def test_builtin_fault_plan_resolved_at_submission(self):
        work = compile_job(dict(JOB, faults="slow-ipi"))
        assert work.jobs[0].faults is not None
        assert isinstance(work.jobs[0].faults, dict)

    def test_experiment_requires_known_name(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            compile_experiment({"experiment": "fig99"})

    def test_experiment_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown field"):
            compile_experiment({"experiment": "fig7", "turbo": True})

    def test_experiment_plan_carries_scheduler_override(self):
        work = compile_experiment(
            {"experiment": "fig7", "scale": 0.02, "scheduler": "shortslice"}
        )
        assert all(
            job.overrides.get("scheduler") == "shortslice" for job in work.jobs
        )

    def test_experiment_bad_scheduler_rejected(self):
        with pytest.raises(ValidationError, match="unknown scheduler"):
            compile_experiment({"experiment": "fig7", "scheduler": "warp"})

    def test_driver_rejects_faults(self):
        with pytest.raises(ValidationError, match="does not accept 'faults'"):
            compile_experiment({"experiment": "fleet", "faults": "slow-ipi"})

    def test_driver_rejects_unknown_policy(self):
        with pytest.raises(ValidationError, match="unknown placement policy"):
            compile_experiment({"experiment": "fleet", "policies": ["psychic"]})

    def test_driver_compiles_without_a_plan(self):
        work = compile_experiment({"experiment": "fleet", "epochs": 2})
        assert work.jobs is None
        assert work.driver is not None


class TestAdmissionController:
    def test_queue_full_rejects_429(self):
        controller = AdmissionController(max_queue_depth=2)
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(Rejection) as exc:
            controller.admit("b")
        assert exc.value.status == 429
        assert exc.value.retry_after >= 1

    def test_client_cap_is_per_client(self):
        controller = AdmissionController(max_inflight_per_client=1)
        controller.admit("a")
        with pytest.raises(Rejection):
            controller.admit("a")
        controller.admit("b")  # other clients unaffected

    def test_started_then_finished_releases_the_slot(self):
        controller = AdmissionController(max_inflight_per_client=1)
        controller.admit("a")
        controller.started("a")
        assert controller.queued == 0
        with pytest.raises(Rejection):
            controller.admit("a")  # still in flight
        controller.finished("a")
        controller.admit("a")

    def test_draining_rejects_503(self):
        controller = AdmissionController()
        controller.draining = True
        with pytest.raises(Rejection) as exc:
            controller.admit("a")
        assert exc.value.status == 503

    def test_retry_after_tracks_prediction_clamped(self):
        backlog = {"seconds": 0.0}
        controller = AdmissionController(
            predicted_backlog_seconds=lambda: backlog["seconds"]
        )
        assert controller.retry_after() == 1  # floor
        backlog["seconds"] = 7.4
        assert controller.retry_after() == 7
        backlog["seconds"] = 1e9
        assert controller.retry_after() == 600  # ceiling

    def test_rejections_are_counted(self):
        before = telemetry.snapshot()["counters"].get(
            "serve.admission.rejected_queue_full", 0
        )
        controller = AdmissionController(max_queue_depth=1)
        controller.admit("a")
        with pytest.raises(Rejection):
            controller.admit("b")
        after = telemetry.snapshot()["counters"]["serve.admission.rejected_queue_full"]
        assert after == before + 1


class TestHttpApi:
    def test_healthz(self, server):
        status, _, body = Client(server).request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 1

    def test_experiment_listing_flags_drivers(self, server):
        status, _, body = Client(server).request("GET", "/experiments")
        assert status == 200
        rows = {row["name"]: row["driver"] for row in body["experiments"]}
        assert rows["fig7"] is False
        assert rows["fleet"] is True

    def test_unknown_route_404(self, server):
        assert Client(server).request("GET", "/warp")[0] == 404

    def test_unknown_submission_404(self, server):
        assert Client(server).request("GET", "/jobs/j-999999")[0] == 404

    def test_bad_json_body_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        conn.request("POST", "/jobs", body="{nope")
        resp = conn.getresponse()
        data = resp.read()
        conn.close()
        assert resp.status == 400
        assert b"invalid JSON" in data

    def test_method_not_allowed(self, server):
        assert Client(server).request("DELETE", "/experiments")[0] == 405

    def test_invalid_job_is_a_400_not_a_failed_submission(self, server):
        client = Client(server)
        status, _, body = client.request("POST", "/jobs", dict(JOB, scenario="warp"))
        assert status == 400
        assert "unknown scenario" in body["error"]
        assert client.request("GET", "/jobs")[2]["jobs"] == []

    def test_cold_job_lifecycle_and_byte_identity(self, server):
        client = Client(server)
        status, headers, body = client.request("POST", "/jobs", JOB)
        assert status == 202
        assert headers["X-Repro-Cache"] == "miss"
        job_id = body["id"]
        assert body["links"]["events"] == "/jobs/%s/events" % job_id

        final = client.wait_terminal(job_id)
        assert final["state"] == "done"
        status, _, result = client.request("GET", "/jobs/%s/result" % job_id)
        assert status == 200

        # The service answer must be byte-identical to running the same
        # spec directly — same payload dict, same canonical JSON.
        local = run_job(SimJob(**{k: v for k, v in JOB.items()}))
        assert result["result"]["payload"] == local

    def test_repeat_submission_is_a_cache_hit_with_result_inline(self, server):
        client = Client(server)
        _, _, first = client.request("POST", "/jobs", JOB)
        client.wait_terminal(first["id"])
        pool_before = telemetry.snapshot()["counters"].get("pool.jobs_completed", 0)

        status, headers, body = client.request("POST", "/jobs", JOB)
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        assert body["state"] == "done"
        assert body["cache"] == "hit"
        assert "payload" in body["result"]
        # The fast path never touches the pool.
        pool_after = telemetry.snapshot()["counters"].get("pool.jobs_completed", 0)
        assert pool_after == pool_before

    def test_result_before_completion_is_409(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", JOB)
        # Terminal already? Fine — the 409 window is timing-dependent;
        # only assert the contract when we catch the submission early.
        status, headers, _ = client.request("GET", "/jobs/%s/result" % body["id"])
        if status == 409:
            assert "Retry-After" in headers
        else:
            assert status == 200
        client.wait_terminal(body["id"])

    def test_events_stream_ndjson(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", dict(JOB, seed=77))
        events, resp = client.stream_events(body["id"])
        assert resp.getheader("Content-Type") == "application/x-ndjson"
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert "running" in kinds
        assert [event["seq"] for event in events] == sorted(
            event["seq"] for event in events
        )
        done = events[-1]
        assert done["telemetry"]["engine.jobs_simulated"] >= 1

    def test_events_stream_sse(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", dict(JOB, seed=78))
        events, resp = client.stream_events(body["id"], sse=True)
        assert resp.getheader("Content-Type") == "text/event-stream"
        assert events[-1]["event"] == "done"

    def test_stream_replays_history_after_completion(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", dict(JOB, seed=79))
        client.wait_terminal(body["id"])
        events, _ = client.stream_events(body["id"])  # opened after the fact
        assert events[0]["event"] == "queued"
        assert events[-1]["event"] == "done"

    def test_experiment_submission_matches_direct_run(self, server, tmp_path):
        client = Client(server)
        spec = {"experiment": "fig7", "scale": 0.02, "seed": 42}
        _, headers, body = client.request("POST", "/experiments", spec)
        final = client.wait_terminal(body["id"], timeout=120)
        assert final["state"] == "done"
        _, _, served = client.request("GET", "/jobs/%s/result" % body["id"])

        from repro.experiments import fig7
        from repro.runner import execute

        jobs = fig7.plan(seed=42, scale_override=0.02)
        by_tag = execute(jobs, workers=1, cache=True,
                         cache_dir=str(tmp_path / "cache"))
        local = fig7.reduce(by_tag)
        assert served["result"]["results"] == json.loads(
            json.dumps(local, sort_keys=True)
        )
        assert served["result"]["formatted"] == fig7.format_result(local)

    def test_cancel_completed_submission_is_a_noop(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", JOB)
        client.wait_terminal(body["id"])
        status, _, after = client.request("POST", "/jobs/%s/cancel" % body["id"])
        assert status == 200
        assert after["state"] == "done"


class TestQueuedStates:
    """Deterministic queue-state tests: stop the dispatcher so
    submissions stay queued instead of racing it."""

    @pytest.fixture
    def parked(self, tmp_path):
        handle = start_in_thread(
            ServeConfig(port=0, workers=1, cache_dir=str(tmp_path / "cache"),
                        max_queue_depth=2, max_inflight=2)
        )
        handle.run(handle.app.manager.stop())  # park the dispatcher
        yield handle
        handle.stop()

    def test_cancel_queued_submission(self, parked):
        client = Client(parked, name="c1")
        _, _, body = client.request("POST", "/jobs", JOB)
        assert body["state"] == "queued"
        status, _, after = client.request("DELETE", "/jobs/%s" % body["id"])
        assert status == 200
        assert after["state"] == "cancelled"
        events, _ = client.stream_events(body["id"])
        assert [event["event"] for event in events] == ["queued", "cancelled"]

    def test_queue_depth_limit_yields_429_with_retry_after(self, parked):
        a, b, c = (Client(parked, name=n) for n in ("a", "b", "c"))
        assert a.request("POST", "/jobs", dict(JOB, seed=1))[0] == 202
        assert b.request("POST", "/jobs", dict(JOB, seed=2))[0] == 202
        status, headers, body = c.request("POST", "/jobs", dict(JOB, seed=3))
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "queue depth" in body["error"]

    def test_per_client_cap_yields_429(self, parked):
        client = Client(parked, name="greedy")
        assert client.request("POST", "/jobs", dict(JOB, seed=1))[0] == 202
        # max_inflight=2 but queue depth is also 2; use a dedicated
        # server knob-free check: second submit fills the queue, third
        # would hit the queue limit first, so assert the cap message on
        # a fresh parked server is covered by the unit tests; here we
        # assert the cap releases nothing while queued.
        assert client.request("POST", "/jobs", dict(JOB, seed=2))[0] == 202
        status, _, body = client.request("POST", "/jobs", dict(JOB, seed=3))
        assert status == 429

    def test_drain_refuses_new_work_with_503(self, parked):
        client = Client(parked, name="late")
        parked.app.admission.draining = True
        status, headers, body = client.request("POST", "/jobs", JOB)
        assert status == 503
        assert "Retry-After" in headers
        assert "draining" in body["error"]


class TestMetricsPath:
    def test_live_metrics_pass_validate_prom(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", JOB)
        client.wait_terminal(body["id"])
        status, headers, text = client.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        telemetry.validate_prom(text.decode("utf-8"))
        assert "serve_requests" in text.decode("utf-8")
        assert "serve_admission_admitted" in text.decode("utf-8")

    def test_wall_metrics_follow_suffix_contract(self, server):
        client = Client(server)
        _, _, body = client.request("POST", "/jobs", JOB)
        client.wait_terminal(body["id"])
        snap = telemetry.snapshot(include_wall=False)
        names = (
            list(snap["counters"]) + list(snap["gauges"]) + list(snap["histograms"])
        )
        # Wall-derived serve metrics are excluded from the determinism
        # surface by suffix; nothing wall-ish may hide under a bare name.
        assert not any(name.endswith(telemetry.WALL_SUFFIXES) for name in names)
        full = telemetry.snapshot(include_wall=True)
        assert "serve.request_latency_us" in full["histograms"]
        assert "serve.queue_wait_us" in full["histograms"]

    def test_telemetry_endpoint_is_json(self, server):
        status, _, snap = Client(server).request("GET", "/telemetry")
        assert status == 200
        assert snap["meta"]["format"] == telemetry.FORMAT

    def test_identical_request_sequences_dump_identically(self, tmp_path):
        """The determinism contract extends to the service: the same
        request sequence against a fresh server + fresh cache produces
        a byte-identical non-wall telemetry dump."""

        def run_sequence(root):
            telemetry.reset()
            telemetry.set_enabled(True)
            handle = start_in_thread(
                ServeConfig(port=0, workers=1, cache_dir=str(root / "cache"))
            )
            try:
                client = Client(handle, name="seq")
                for seed in (21, 22, 21):  # third one is a cache hit
                    _, _, body = client.request(
                        "POST", "/jobs", dict(JOB, seed=seed)
                    )
                    if body["state"] not in TERMINAL:
                        client.stream_events(body["id"])
                client.request("GET", "/metrics")
                return telemetry.REGISTRY.dumps(include_wall=False)
            finally:
                handle.stop()

        first = run_sequence(tmp_path / "a")
        second = run_sequence(tmp_path / "b")
        assert first == second


class TestDrain:
    def test_drain_finishes_inflight_and_persists_telemetry(self, tmp_path):
        cache_dir = tmp_path / "cache"
        handle = start_in_thread(
            ServeConfig(port=0, workers=1, cache_dir=str(cache_dir))
        )
        try:
            client = Client(handle)
            _, _, body = client.request("POST", "/jobs", JOB)
            handle.drain()
            assert handle.app.admission.draining
            status, _, final = client.request("GET", "/jobs/%s" % body["id"])
            assert status == 200  # reads still served while draining
            assert final["state"] == "done"
            assert (cache_dir / "meta" / "telemetry.json").exists()
        finally:
            handle.stop()


@pytest.mark.slow
class TestSoak:
    def test_concurrent_mixed_clients_soak(self, tmp_path):
        """The acceptance soak: 8 concurrent clients for ≥30 s mixing
        cold, repeat, and invalid submissions plus event streams. Zero
        stuck submissions, every stream ends terminal, rejections are
        counted — never surfaced as errors."""
        handle = start_in_thread(
            ServeConfig(port=0, workers=1, cache_dir=str(tmp_path / "cache"),
                        max_queue_depth=32, max_inflight=4)
        )
        stop_at = time.time() + 31.0
        errors = []
        stats = {"cold": 0, "hit": 0, "invalid": 0, "rejected": 0, "streams": 0}
        lock = threading.Lock()
        submitted = []

        def client_loop(index):
            client = Client(handle, name="soak-%d" % index)
            round_no = 0
            try:
                while time.time() < stop_at:
                    round_no += 1
                    # Cold work: a seed this client has never used.
                    cold = dict(JOB, seed=1000 + index * 10_000 + round_no,
                                duration_ns=ms(1))
                    status, headers, body = client.request("POST", "/jobs", cold)
                    if status in (202, 200):
                        with lock:
                            submitted.append(body["id"])
                            stats["cold"] += 1
                        if round_no % 3 == 0:
                            events, _ = client.stream_events(body["id"])
                            assert events[-1]["event"] in TERMINAL
                            with lock:
                                stats["streams"] += 1
                        else:
                            client.wait_terminal(body["id"])
                    elif status == 429:
                        assert int(headers["Retry-After"]) >= 1
                        with lock:
                            stats["rejected"] += 1
                        time.sleep(0.05)
                    else:
                        raise AssertionError("unexpected status %d" % status)

                    # Repeat work: everyone resubmits the same point.
                    status, headers, body = client.request("POST", "/jobs", JOB)
                    if status == 200:
                        assert headers["X-Repro-Cache"] == "hit"
                        with lock:
                            stats["hit"] += 1
                    elif status == 202:
                        client.wait_terminal(body["id"])
                        with lock:
                            submitted.append(body["id"])
                    elif status == 429:
                        with lock:
                            stats["rejected"] += 1
                    else:
                        raise AssertionError("unexpected status %d" % status)

                    # Invalid work: must be a 400, never a submission.
                    status, _, _ = client.request(
                        "POST", "/jobs", dict(JOB, scenario="warp")
                    )
                    assert status == 400
                    with lock:
                        stats["invalid"] += 1
            except Exception as err:  # surfaced after join
                errors.append("client %d round %d: %r" % (index, round_no, err))

        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(8)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not any(thread.is_alive() for thread in threads), "client hung"
            assert errors == []

            # Nothing stuck: every submission the clients saw accepted
            # reaches a terminal state.
            client = Client(handle)
            deadline = time.time() + 60
            for job_id in submitted:
                status, _, body = client.request("GET", "/jobs/%s" % job_id)
                if status == 404:
                    continue  # evicted terminal history — fine
                while body["state"] not in TERMINAL:
                    assert time.time() < deadline, "stuck: %s" % job_id
                    time.sleep(0.05)
                    _, _, body = client.request("GET", "/jobs/%s" % job_id)

            counters = telemetry.snapshot()["counters"]
            rejected = sum(
                value for name, value in counters.items()
                if name.startswith("serve.admission.rejected")
            )
            assert rejected == stats["rejected"]
            assert stats["cold"] >= 8
            assert stats["hit"] >= 8
            assert stats["streams"] >= 1
            assert counters["serve.submissions.cache_fast_path"] >= stats["hit"]
        finally:
            handle.drain()
            handle.stop()
