"""Tests for guest primitives: actions, wait queues, tasks, contexts."""

import pytest

from repro.errors import WorkloadError
from repro.guest.actions import (
    Acquire,
    Compute,
    Emit,
    GYield,
    Release,
    Shootdown,
    Sleep,
    SmpCallSingle,
    Wake,
)
from repro.guest.spinlock import PAGE_ALLOC, SpinLock
from repro.guest.task import EXITED, RUNNABLE, ExecContext, GuestTask
from repro.guest.waitqueue import WaitQueue


class TestActions:
    def test_compute_tracks_remaining(self):
        action = Compute(1_000)
        action.consume(400)
        assert action.remaining == 600
        assert not action.done
        action.consume(600)
        assert action.done

    def test_compute_overconsume_clamps(self):
        action = Compute(100)
        action.consume(1_000)
        assert action.remaining == 0
        assert action.done

    def test_compute_negative_duration_rejected(self):
        with pytest.raises(WorkloadError):
            Compute(-1)

    def test_compute_user_vs_kernel(self):
        assert Compute(10).user
        assert not Compute(10, symbol="irq_enter").user

    def test_acquire_symbol_is_spin_slowpath(self):
        lock = SpinLock("l", PAGE_ALLOC)
        assert Acquire(lock).symbol == "native_queued_spin_lock_slowpath"

    def test_release_symbol_comes_from_lock_class(self):
        lock = SpinLock("l", PAGE_ALLOC)
        assert Release(lock).symbol == PAGE_ALLOC.unlock_symbol

    def test_shootdown_symbol(self):
        assert Shootdown().symbol == "smp_call_function_many"

    def test_smp_call_symbol(self):
        assert SmpCallSingle().symbol == "smp_call_function_single"

    def test_wake_defaults_async(self):
        assert not Wake(WaitQueue()).sync

    def test_emit_carries_callable(self):
        seen = []
        action = Emit(seen.append, cost=5, symbol="irq_exit")
        action.fn(123)
        assert seen == [123]
        assert action.cost == 5
        assert action.symbol == "irq_exit"

    def test_actions_start_not_done(self):
        lock = SpinLock("l", PAGE_ALLOC)
        for action in (Compute(1), Acquire(lock), Release(lock), Shootdown(),
                       Sleep(WaitQueue()), Wake(WaitQueue()), GYield(), Emit(lambda n: None)):
            assert not action.done


class TestWaitQueue:
    def test_banked_wakeup_consumed_before_sleep(self):
        queue = WaitQueue()
        assert queue.pop_sleeper() is None   # banks a token
        assert queue.banked == 1
        assert queue.try_consume()
        assert queue.banked == 0

    def test_try_consume_empty(self):
        assert not WaitQueue().try_consume()

    def test_fifo_sleeper_order(self):
        queue = WaitQueue()
        queue.add_sleeper("a")
        queue.add_sleeper("b")
        assert queue.pop_sleeper() == "a"
        assert queue.pop_sleeper() == "b"

    def test_pop_prefers_sleeper_over_banking(self):
        queue = WaitQueue()
        queue.add_sleeper("t")
        assert queue.pop_sleeper() == "t"
        assert queue.banked == 0

    def test_discard_sleeper(self):
        queue = WaitQueue()
        queue.add_sleeper("t")
        queue.discard_sleeper("t")
        assert queue.waiting == 0
        queue.discard_sleeper("t")  # idempotent

    def test_wake_all_drains_without_banking(self):
        queue = WaitQueue()
        queue.add_sleeper("a")
        queue.add_sleeper("b")
        assert queue.wake_all() == ["a", "b"]
        assert queue.banked == 0

    def test_token_conservation(self):
        queue = WaitQueue()
        for _ in range(5):
            queue.pop_sleeper()
        consumed = sum(1 for _ in range(10) if queue.try_consume())
        assert consumed == 5


class TestExecContext:
    def _ctx(self, actions):
        def gen():
            for action in actions:
                yield action

        return ExecContext(gen())

    def test_peek_returns_current_until_done(self):
        first = Compute(10)
        ctx = self._ctx([first, Compute(20)])
        assert ctx.peek() is first
        assert ctx.peek() is first
        first.done = True
        assert ctx.peek() is not first

    def test_exhaustion(self):
        only = Compute(10)
        ctx = self._ctx([only])
        ctx.peek().done = True
        assert ctx.peek() is None
        assert ctx.exhausted
        assert ctx.peek() is None  # stable

    def test_non_action_yield_rejected(self):
        def bad():
            yield "not an action"

        ctx = ExecContext(bad())
        with pytest.raises(WorkloadError):
            ctx.peek()


class _FakeVcpu:
    def __init__(self):
        self.guest_cpu = None


class TestGuestTask:
    def _task(self):
        vcpu = _FakeVcpu()

        def program():
            yield Compute(10)

        return GuestTask("t", vcpu, program)

    def test_initial_state_runnable(self):
        task = self._task()
        assert task.state == RUNNABLE
        assert task.runnable

    def test_charge_accumulates(self):
        task = self._task()
        task.charge(100)
        task.charge(50)
        assert task.ran_ns == 150
        assert task.total_ns == 150

    def test_exited_not_runnable(self):
        task = self._task()
        task.state = EXITED
        assert not task.runnable
