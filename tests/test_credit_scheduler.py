"""Tests for the credit scheduler (per-pCPU runqueues, priorities,
boost, yield flag, stealing, accounting)."""

import pytest

from repro.errors import SchedulerError
from repro.hypervisor.credit import BOOST, OVER, UNDER, CreditScheduler, MicroScheduler
from repro.sim.engine import Simulator
from repro.sim.time import ms


class _FakePCpu:
    def __init__(self, index):
        self.index = index
        self.info = type("Info", (), {"index": index})()
        self.current = None
        self.preempt_requested = False
        self.tickled = 0
        self.preempts = 0

    def tickle(self):
        self.tickled += 1

    def request_preempt(self):
        self.preempt_requested = True
        self.preempts += 1

    def __repr__(self):
        return "pcpu%d" % self.index


class _FakeVcpu:
    def __init__(self, name, credits=1):
        self.name = name
        self.credits = credits
        self.priority = None
        self.affinity = None
        self.yield_flag = False
        self.last_pcpu = None
        self.runq_pcpu = None

    def __repr__(self):
        return self.name


class _FakeDomain:
    def __init__(self, vcpus, weight=256):
        self.vcpus = vcpus
        self.weight = weight


class _Pool:
    name = "normal"

    def __init__(self, pcpus):
        self.pcpus = pcpus


def _scheduler(num_pcpus=2, **kwargs):
    sim = Simulator()
    scheduler = CreditScheduler(sim, slice_jitter=0, **kwargs)
    pcpus = [_FakePCpu(i) for i in range(num_pcpus)]
    scheduler.pool = _Pool(pcpus)
    for pcpu in pcpus:
        scheduler.register_pcpu(pcpu)
    return scheduler, pcpus


class TestEnqueuePick:
    def test_priority_from_credits(self):
        scheduler, pcpus = _scheduler()
        under = _FakeVcpu("u", credits=10)
        over = _FakeVcpu("o", credits=-10)
        scheduler.enqueue(under)
        scheduler.enqueue(over)
        assert under.priority == UNDER
        assert over.priority == OVER

    def test_boost_requires_credits(self):
        scheduler, _ = _scheduler()
        rich = _FakeVcpu("rich", credits=10)
        poor = _FakeVcpu("poor", credits=-1)
        scheduler.enqueue(rich, boost=True)
        scheduler.enqueue(poor, boost=True)
        assert rich.priority == BOOST
        assert poor.priority == OVER

    def test_pick_priority_order(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        over = _FakeVcpu("o", credits=-1)
        under = _FakeVcpu("u", credits=1)
        boost = _FakeVcpu("b", credits=1)
        scheduler.enqueue(over)
        scheduler.enqueue(under)
        scheduler.enqueue(boost, boost=True)
        assert scheduler.pick(pcpus[0]) is boost
        assert scheduler.pick(pcpus[0]) is under
        assert scheduler.pick(pcpus[0]) is over
        assert scheduler.pick(pcpus[0]) is None

    def test_enqueue_prefers_idle_pcpu_and_tickles(self):
        scheduler, pcpus = _scheduler()
        scheduler.add_idle(pcpus[1])
        vcpu = _FakeVcpu("v")
        scheduler.enqueue(vcpu)
        assert pcpus[1].tickled == 1
        assert vcpu.runq_pcpu is pcpus[1]

    def test_placement_prefers_last_pcpu(self):
        scheduler, pcpus = _scheduler()
        vcpu = _FakeVcpu("v")
        vcpu.last_pcpu = pcpus[1]
        scheduler.enqueue(vcpu)
        assert vcpu.runq_pcpu is pcpus[1]

    def test_placement_least_loaded_without_history(self):
        scheduler, pcpus = _scheduler()
        first = _FakeVcpu("a")
        first.last_pcpu = pcpus[0]
        scheduler.enqueue(first)
        second = _FakeVcpu("b")
        scheduler.enqueue(second)
        assert second.runq_pcpu is pcpus[1]

    def test_boost_preempts_running_lower_priority(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        hog = _FakeVcpu("hog", credits=-1)
        hog.priority = OVER
        pcpus[0].current = hog
        waker = _FakeVcpu("waker", credits=10)
        waker.last_pcpu = pcpus[0]
        scheduler.enqueue(waker, boost=True)
        assert pcpus[0].preempt_requested

    def test_under_does_not_preempt_midslice(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        hog = _FakeVcpu("hog", credits=-1)
        hog.priority = OVER
        pcpus[0].current = hog
        scheduler.enqueue(_FakeVcpu("u", credits=10))
        assert not pcpus[0].preempt_requested

    def test_affinity_respected_on_pick(self):
        scheduler, pcpus = _scheduler()
        pinned = _FakeVcpu("pinned")
        pinned.affinity = frozenset({1})
        scheduler.enqueue(pinned)
        assert scheduler.pick(pcpus[0]) is None or scheduler.pick(pcpus[0]) is not pinned
        assert pinned.runq_pcpu is pcpus[1]
        assert scheduler.pick(pcpus[1]) is pinned

    def test_affinity_unsatisfiable_raises(self):
        scheduler, _ = _scheduler()
        ghost = _FakeVcpu("ghost")
        ghost.affinity = frozenset({99})
        with pytest.raises(SchedulerError):
            scheduler.enqueue(ghost)

    def test_remove_from_queue(self):
        scheduler, pcpus = _scheduler()
        vcpu = _FakeVcpu("v")
        scheduler.enqueue(vcpu)
        assert scheduler.remove(vcpu)
        assert not scheduler.remove(vcpu)
        assert scheduler.pick(pcpus[0]) is None


class TestStealing:
    def test_steal_when_local_empty(self):
        scheduler, pcpus = _scheduler()
        vcpu = _FakeVcpu("v")
        vcpu.last_pcpu = pcpus[0]
        scheduler.enqueue(vcpu)
        assert scheduler.pick(pcpus[1]) is vcpu
        assert scheduler.steals == 1

    def test_local_preferred_over_steal(self):
        scheduler, pcpus = _scheduler()
        local = _FakeVcpu("local")
        local.last_pcpu = pcpus[0]
        remote = _FakeVcpu("remote")
        remote.last_pcpu = pcpus[1]
        scheduler.enqueue(local)
        scheduler.enqueue(remote)
        assert scheduler.pick(pcpus[0]) is local
        assert scheduler.steals == 0

    def test_steal_honours_affinity(self):
        scheduler, pcpus = _scheduler()
        pinned = _FakeVcpu("pinned")
        pinned.affinity = frozenset({1})
        scheduler.enqueue(pinned)
        assert scheduler.pick(pcpus[0]) is None


class TestYieldFlag:
    def test_yielded_vcpu_passed_over_once_same_priority(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        yielder = _FakeVcpu("y", credits=1)
        peer = _FakeVcpu("p", credits=1)
        scheduler.requeue(yielder, yielded=True)
        scheduler.requeue(peer)
        assert scheduler.pick(pcpus[0]) is peer
        assert not yielder.yield_flag  # consumed by being skipped
        assert scheduler.pick(pcpus[0]) is yielder

    def test_yielded_under_still_beats_over(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        yielder = _FakeVcpu("y", credits=1)
        hog = _FakeVcpu("hog", credits=-1)
        scheduler.requeue(yielder, yielded=True)
        scheduler.requeue(hog)
        # csched yield semantics: defer within the priority class only.
        assert scheduler.pick(pcpus[0]) is yielder

    def test_yielded_vcpu_runs_when_alone(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        yielder = _FakeVcpu("y", credits=1)
        scheduler.requeue(yielder, yielded=True)
        assert scheduler.pick(pcpus[0]) is yielder
        assert not yielder.yield_flag


class TestAccounting:
    def test_refill_splits_by_weight(self):
        scheduler, _ = _scheduler()
        heavy = _FakeDomain([_FakeVcpu("h", credits=0)], weight=512)
        light = _FakeDomain([_FakeVcpu("l", credits=0)], weight=256)
        scheduler.account([heavy, light], num_pcpus=2)
        assert heavy.vcpus[0].credits > light.vcpus[0].credits

    def test_credit_cap(self):
        scheduler, _ = _scheduler()
        vcpu = _FakeVcpu("v", credits=0)
        domain = _FakeDomain([vcpu])
        for _ in range(10):
            scheduler.account([domain], num_pcpus=4)
        assert vcpu.credits == scheduler.credit_cap

    def test_charge_burns_credits(self):
        scheduler, _ = _scheduler()
        vcpu = _FakeVcpu("v", credits=1000)
        scheduler.charge(vcpu, 300)
        assert vcpu.credits == 700

    def test_rebucket_promotes_refilled_queued_vcpu(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        starved = _FakeVcpu("s", credits=-1)
        scheduler.enqueue(starved)
        assert starved.priority == OVER
        starved.credits = ms(10)
        scheduler.account([_FakeDomain([starved])], num_pcpus=1)
        assert starved.priority == UNDER

    def test_best_waiting_priority(self):
        scheduler, pcpus = _scheduler(num_pcpus=1)
        assert scheduler.best_waiting_priority(pcpus[0]) is None
        scheduler.enqueue(_FakeVcpu("o", credits=-1))
        assert scheduler.best_waiting_priority(pcpus[0]) == OVER
        scheduler.enqueue(_FakeVcpu("u", credits=1))
        assert scheduler.best_waiting_priority(pcpus[0]) == UNDER

    def test_slice_jitter_bounds(self):
        import random

        sim = Simulator()
        scheduler = CreditScheduler(sim, rng=random.Random(1), slice_jitter=0.1)
        vcpu = _FakeVcpu("v")
        for _ in range(50):
            slice_ns = scheduler.slice_for(vcpu)
            assert ms(27) <= slice_ns <= ms(33)

    def test_no_jitter_without_rng(self):
        scheduler, _ = _scheduler()
        assert scheduler.slice_for(_FakeVcpu("v")) == scheduler.slice


class TestMicroScheduler:
    def _micro(self, cores=2):
        sim = Simulator()
        scheduler = MicroScheduler(sim, slice_ns=100_000)
        pcpus = [_FakePCpu(i) for i in range(cores)]
        for pcpu in pcpus:
            scheduler.register_pcpu(pcpu)
        return scheduler, pcpus

    def test_assign_and_pick(self):
        scheduler, pcpus = self._micro()
        vcpu = _FakeVcpu("v")
        assert scheduler.assign(vcpu)
        picked = scheduler.pick(pcpus[0]) or scheduler.pick(pcpus[1])
        assert picked is vcpu

    def test_runqueue_length_limit_one(self):
        scheduler, pcpus = self._micro(cores=1)
        assert scheduler.assign(_FakeVcpu("a"))
        assert not scheduler.assign(_FakeVcpu("b"))

    def test_free_slots(self):
        scheduler, _ = self._micro(cores=2)
        assert scheduler.free_slots() == 2
        scheduler.assign(_FakeVcpu("a"))
        assert scheduler.free_slots() == 1

    def test_idle_pcpu_tickled_on_assign(self):
        scheduler, pcpus = self._micro(cores=1)
        scheduler.add_idle(pcpus[0])
        scheduler.assign(_FakeVcpu("v"))
        assert pcpus[0].tickled == 1

    def test_direct_enqueue_rejected(self):
        scheduler, _ = self._micro()
        with pytest.raises(SchedulerError):
            scheduler.enqueue(_FakeVcpu("v"))

    def test_remove_pending(self):
        scheduler, pcpus = self._micro(cores=1)
        vcpu = _FakeVcpu("v")
        scheduler.assign(vcpu)
        assert scheduler.remove(vcpu)
        assert scheduler.free_slots() == 1

    def test_unregister_returns_stranded(self):
        scheduler, pcpus = self._micro(cores=1)
        vcpu = _FakeVcpu("v")
        scheduler.assign(vcpu)
        assert scheduler.unregister_pcpu(pcpus[0]) is vcpu
