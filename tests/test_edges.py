"""Edge-case tests: error hierarchy, cpupool bookkeeping, determinism
of full scenarios, and executor corner conditions."""

import pytest

from repro import errors
from repro.experiments.scenarios import corun_scenario, mixed_io_scenario
from repro.guest.actions import Compute, Sleep
from repro.guest.waitqueue import WaitQueue
from repro.hypervisor.cpupool import CpuPool
from repro.hypervisor.credit import MicroScheduler
from repro.sim.engine import Simulator
from repro.sim.time import ms, us

from helpers import make_domain, make_hv, spawn_task, spin_program


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "SimulationError",
            "ConfigError",
            "SchedulerError",
            "GuestError",
            "WorkloadError",
            "SymbolTableError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestCpuPool:
    def _pool(self):
        sim = Simulator()
        return CpuPool("p", MicroScheduler(sim, slice_ns=us(100)))

    class _PCpu:
        def __init__(self, index):
            self.info = type("I", (), {"index": index})()
            self.current = None

    def test_add_and_remove(self):
        pool = self._pool()
        pcpu = self._PCpu(0)
        pool.add_pcpu(pcpu)
        assert len(pool) == 1
        assert pool.remove_pcpu(pcpu) is None
        assert len(pool) == 0

    def test_double_add_rejected(self):
        pool = self._pool()
        pcpu = self._PCpu(0)
        pool.add_pcpu(pcpu)
        with pytest.raises(errors.SchedulerError):
            pool.add_pcpu(pcpu)

    def test_remove_unknown_rejected(self):
        pool = self._pool()
        with pytest.raises(errors.SchedulerError):
            pool.remove_pcpu(self._PCpu(0))

    def test_slice_property_delegates(self):
        pool = self._pool()
        assert pool.slice == us(100)


class TestScenarioDeterminism:
    def test_identical_runs_identical_results(self):
        first = corun_scenario("exim", seed=5).build().run(ms(80))
        second = corun_scenario("exim", seed=5).build().run(ms(80))
        assert first.rate("exim") == second.rate("exim")
        assert first.total_yields() == second.total_yields()
        assert first.hv_counters == second.hv_counters

    def test_io_scenario_deterministic(self):
        a = mixed_io_scenario(seed=5).build().run(ms(100))
        b = mixed_io_scenario(seed=5).build().run(ms(100))
        assert (
            a.workload("iperf").extra["packets"]
            == b.workload("iperf").extra["packets"]
        )


class TestExecutorEdges:
    def test_vcpu_with_only_sleeping_tasks_halts_and_recovers(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        queue = WaitQueue()
        woken = {"n": 0}

        def sleeper():
            while True:
                yield Sleep(queue)
                yield Compute(us(10))
                woken["n"] += 1

        task = spawn_task(domain.vcpus[0], lambda: sleeper())
        hv.start()
        sim.run(until=ms(2))
        assert domain.vcpus[0].state == "blocked"
        # External wake through the guest scheduler + hypervisor.
        domain.vcpus[0].guest_cpu.enqueue(task)
        hv.wake_vcpu(domain.vcpus[0])
        sim.run(until=sim.now + ms(1))
        assert woken["n"] == 1

    def test_zero_length_compute_completes(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        done = {"n": 0}

        def program():
            while True:
                yield Compute(0)
                yield Compute(us(10))
                done["n"] += 1

        spawn_task(domain.vcpus[0], lambda: program())
        hv.start()
        sim.run(until=ms(1))
        assert done["n"] > 0

    def test_many_domains_share_fairly(self):
        sim, hv = make_hv(num_pcpus=2)
        domains = [make_domain(hv, name="vm%d" % i, vcpus=1) for i in range(4)]
        for domain in domains:
            spawn_task(domain.vcpus[0], spin_program())
        hv.start()
        sim.run(until=ms(300))
        ran = [d.vcpus[0].total_ran for d in domains]
        assert min(ran) > 0
        assert min(ran) / max(ran) > 0.5

    def test_affinity_restricts_execution(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=1)
        domain.pin_all((1,))
        spawn_task(domain.vcpus[0], spin_program())
        hv.start()
        sim.run(until=ms(100))  # past several slices so busy_ns accrues
        assert hv.pcpus[1].busy_ns > 0
        assert hv.pcpus[0].busy_ns == 0
