"""Tests for the observability layer: histograms, deterministic
latency merges, runstate accounting, trace schema/export, and the
``repro analyze`` round trip."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import fig7
from repro.experiments.scenarios import corun_scenario
from repro.metrics.histogram import Histogram, HistogramSet
from repro.metrics.latency import LatencyStat
from repro.obs import analyze
from repro.obs.runstate import RunstateAccount, steal_report, validate, validate_result
from repro.obs.schema import TRACE_SCHEMA
from repro.runner import execute
from repro.sim.engine import Simulator
from repro.sim.time import ms
from repro.sim.trace import Tracer, load_jsonl, write_jsonl


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0

    def test_percentiles_deterministic(self):
        hist = Histogram()
        for value in range(1, 1001):
            hist.record(value)
        # log2 buckets: percentiles land on bucket bounds clamped to
        # observed min/max — stable regardless of insertion order.
        shuffled = Histogram()
        for value in range(1000, 0, -1):
            shuffled.record(value)
        assert hist.snapshot() == shuffled.snapshot()
        assert hist.min == 1 and hist.max == 1000
        assert hist.percentile(100) == 1000

    def test_merge_commutative(self):
        a, b = Histogram(), Histogram()
        for value in (1, 5, 900, 70_000):
            a.record(value)
        for value in (3, 3, 64, 2**20):
            b.record(value)
        ab = Histogram()
        ab.merge(a)
        ab.merge(b)
        ba = Histogram()
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot()["buckets"] == ba.snapshot()["buckets"]
        assert ab.percentile(95) == ba.percentile(95)
        assert ab.count == 8

    def test_histogram_set_lazy(self):
        hs = HistogramSet()
        assert len(hs) == 0
        hs.record("spin_wait", 100)
        hs.record("spin_wait", 200)
        assert hs.names() == ["spin_wait"]
        assert hs.snapshot()["spin_wait"]["count"] == 2
        hs.reset()
        assert len(hs) == 0


# ----------------------------------------------------------------------
# deterministic latency merge (the reservoir order-sensitivity fix)
# ----------------------------------------------------------------------
class TestLatencyMergeDeterminism:
    def _filled(self, values, reservoir=64):
        stat = LatencyStat(reservoir=reservoir)
        for value in values:
            stat.record(value)
        return stat

    def test_merge_is_order_independent(self):
        # Overflow the reservoir so the merge must re-trim the pool —
        # the old implementation sampled with an RNG here, making
        # a.merge(b) != b.merge(a).
        left = list(range(0, 2000, 2))
        right = list(range(1, 2001, 2))
        ab = self._filled(left)
        ab.merge(self._filled(right))
        ba = self._filled(right)
        ba.merge(self._filled(left))
        assert ab._sample == ba._sample
        for q in (50, 95, 99):
            assert ab.percentile(q) == ba.percentile(q)
        assert ab.count == ba.count == 2000

    def test_merge_repeatable(self):
        runs = []
        for _ in range(2):
            stat = self._filled(range(500))
            stat.merge(self._filled(range(500, 1000)))
            runs.append(stat.snapshot())
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# runstate accounting
# ----------------------------------------------------------------------
class TestRunstateAccount:
    def test_conservation_by_construction(self):
        account = RunstateAccount(0, "runnable")
        account.transition(100, "running")
        account.transition(350, "blocked")
        account.transition(400, "runnable")
        snap = account.snapshot(1000)
        ok, diff = validate(snap)
        assert ok and diff == 0
        assert snap["running"] == 250
        assert snap["runnable"] == 100 + 600
        assert snap["blocked"] == 50
        assert snap["elapsed"] == 1000

    def test_reset_rebases_window(self):
        account = RunstateAccount(0, "running")
        account.transition(500, "runnable")
        account.reset(700)
        snap = account.snapshot(1200)
        assert snap == {
            "running": 0,
            "runnable": 500,
            "blocked": 0,
            "offline": 0,
            "elapsed": 500,
        }
        assert account.stolen(1200) == 500

    def test_conservation_across_registry(self):
        """The invariant must hold for every experiment in the registry.
        One representative job per plan (deduplicated across plans)
        keeps this tractable while touching every scenario family."""
        from repro.experiments import registry
        from repro.experiments.results import RunResult
        from repro.runner.jobs import run_job

        seen = set()
        for name in registry.available():
            module = registry.get(name)
            if registry.is_driver(module):
                continue  # no static plan (fleet); covered by test_fleet
            job = module.plan(seed=5, scale_override=0.02)[0]
            if job.canonical() in seen:
                continue
            seen.add(job.canonical())
            result = RunResult.from_dict(run_job(job))
            assert result.runstates, name
            assert validate_result(result) == [], name

    def test_scenario_conservation_invariant(self):
        system = corun_scenario("gmake", seed=3).build()
        result = system.run(ms(30), warmup_ns=ms(10))
        assert result.runstates  # populated even without tracing
        assert validate_result(result) == []
        report = steal_report(result)
        for domain in ("vm1", "vm2"):
            rollup = report[domain]
            assert sum(rollup[s] for s in ("running", "runnable", "blocked", "offline")) == rollup["elapsed"]
        # 2:1 overcommit: somebody's time must be getting stolen.
        assert result.steal_time("vm1") + result.steal_time("vm2") > 0


# ----------------------------------------------------------------------
# trace schema + export machinery
# ----------------------------------------------------------------------
class TestTracerSchema:
    def test_known_kind_with_wrong_fields_rejected_in_debug(self):
        tracer = Tracer(Simulator(), enabled=True, debug=True)
        with pytest.raises(ConfigError):
            tracer.emit("yield", vcpu="v0")  # missing domain/cause

    def test_schema_not_validated_outside_debug(self):
        tracer = Tracer(Simulator(), enabled=True, debug=False)
        tracer.emit("yield", vcpu="v0")  # hot path skips validation
        assert tracer.counts["yield"] == 1

    def test_want_returns_bound_emitter_or_none(self):
        tracer = Tracer(Simulator(), enabled=True, kinds=("yield",))
        assert tracer.want("virq_inject") is None
        assert Tracer(Simulator(), enabled=False).want("yield") is None
        emit = tracer.want("yield")
        emit(vcpu="v0", domain="vm1", cause="ipi")
        assert tracer.want("yield") is emit  # handle is cached
        record = next(iter(tracer))
        assert record.kind == "yield" and record.detail["cause"] == "ipi"
        assert tracer.counts["yield"] == 1 and tracer.seq == 1

    def test_want_emitter_validates_in_debug(self):
        tracer = Tracer(Simulator(), enabled=True, debug=True)
        emit = tracer.want("yield")
        with pytest.raises(ConfigError):
            emit(vcpu="v0")  # missing domain/cause

    def test_drop_accounting_invariant(self):
        # dropped + len(records) == seq, tracer-lifetime: ring overflow
        # and clear() both count their discarded records.
        tracer = Tracer(Simulator(), enabled=True, capacity=3)
        emit = tracer.want("probe")
        for _ in range(8):
            emit()
        assert tracer.dropped + len(tracer.records) == tracer.seq == 8
        assert tracer.dropped == 5
        tracer.clear()
        assert tracer.dropped + len(tracer.records) == tracer.seq == 8
        for _ in range(2):
            emit()
        assert tracer.dropped + len(tracer.records) == tracer.seq == 10

    def test_unknown_kind_allowed(self):
        tracer = Tracer(Simulator(), enabled=True)
        tracer.emit("adhoc_probe", anything="goes")
        assert tracer.counts["adhoc_probe"] == 1

    def test_kind_filter_and_meta_bypass(self):
        tracer = Tracer(Simulator(), enabled=True, kinds=("yield",))
        tracer.emit("yield", vcpu="v0", domain="vm1", cause="ipi")
        tracer.emit("virq_inject", vcpu="v0", domain="vm1")  # filtered
        tracer.record_meta("meta", scenario="s", duration_ns=1, pcpus=1, domains=["vm1"])
        kinds = [record.kind for record in tracer]
        assert kinds == ["yield", "meta"]
        with pytest.raises(ConfigError):
            tracer.record_meta("yield", vcpu="v0", domain="vm1", cause="ipi")

    def test_seq_monotonic_across_clear(self):
        tracer = Tracer(Simulator(), enabled=True)
        tracer.emit("probe")
        tracer.clear()
        tracer.emit("probe")
        assert [record.seq for record in tracer] == [2]

    def test_ring_capacity_drops_counted(self):
        tracer = Tracer(Simulator(), enabled=True, capacity=2)
        for _ in range(5):
            tracer.emit("probe")
        assert len(tracer) == 2 and tracer.dropped == 3

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(Simulator(), enabled=True)
        tracer.emit("yield", vcpu="v0", domain="vm1", cause="spinlock")
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), {"jobA": tracer.export()})
        records = load_jsonl(str(path))
        assert records == [
            {
                "seq": 1,
                "t": 0,
                "kind": "yield",
                "vcpu": "v0",
                "domain": "vm1",
                "cause": "spinlock",
                "job": "jobA",
            }
        ]

    def test_schema_fields_avoid_reserved_keys(self):
        from repro.obs.schema import RESERVED_KEYS

        for kind, fields in TRACE_SCHEMA.items():
            assert not (fields & RESERVED_KEYS), kind


# ----------------------------------------------------------------------
# the analyze round trip (the PR's acceptance criterion)
# ----------------------------------------------------------------------
def _traced_plan():
    jobs = fig7.plan(seed=11, scale_override=0.02, workloads=("dedup",))
    for job in jobs:
        job.trace = {"kinds": None}
    return jobs


class TestAnalyzeRoundTrip:
    def test_yield_decomposition_matches_counters_exactly(self, tmp_path):
        jobs = _traced_plan()
        results = execute(jobs, workers=1, cache=False)
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), {tag: results[tag].trace for tag in results})
        analyses = analyze.analyze_file(str(path))
        assert sorted(analyses) == sorted(results)
        for tag, result in results.items():
            decomposition = analyses[tag].yields
            for domain, causes in result.domain_yields.items():
                observed = decomposition.get(domain, {})
                for cause, count in causes.items():
                    assert observed.get(cause, 0) == count, (tag, domain, cause)
            # And nothing in the trace that the counters don't know of.
            for domain, causes in decomposition.items():
                for cause, count in causes.items():
                    assert result.domain_yields[domain][cause] == count

    def test_runstate_final_conserves(self, tmp_path):
        jobs = _traced_plan()
        results = execute(jobs, workers=1, cache=False)
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), {tag: results[tag].trace for tag in results})
        for analysis in analyze.analyze_file(str(path)).values():
            assert analysis.runstates
            assert analysis.violations == []
            assert analysis.meta is not None

    def test_trace_artifacts_identical_serial_parallel_cache(self, tmp_path):
        jobs = _traced_plan()

        def artifact(results, name):
            path = tmp_path / name
            write_jsonl(
                str(path), {tag: results[tag].trace for tag in sorted(results)}
            )
            return path.read_bytes()

        serial = artifact(execute(jobs, workers=1, cache=False), "serial.jsonl")
        parallel = artifact(execute(jobs, workers=2, cache=False), "parallel.jsonl")
        cold = artifact(
            execute(jobs, workers=1, cache=True, cache_dir=tmp_path / "cache"),
            "cold.jsonl",
        )
        warm = artifact(
            execute(jobs, workers=1, cache=True, cache_dir=tmp_path / "cache"),
            "warm.jsonl",
        )
        assert serial == parallel == cold == warm

    def test_traced_and_untraced_jobs_cache_separately(self):
        jobs = _traced_plan()
        plain = fig7.plan(seed=11, scale_override=0.02, workloads=("dedup",))
        specs = {job.canonical() for job in jobs}
        assert all(job.canonical() not in specs for job in plain)

    def test_diff_reports_identical_and_differing(self, tmp_path):
        jobs = _traced_plan()
        results = execute(jobs, workers=1, cache=False)
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        payload = {tag: results[tag].trace for tag in sorted(results)}
        write_jsonl(str(a), payload)
        write_jsonl(str(b), payload)
        assert "identical event counts" in analyze.diff_files(str(a), str(b))

    def test_trace_payload_survives_json(self):
        jobs = _traced_plan()
        results = execute(jobs, workers=1, cache=False)
        for result in results.values():
            assert result.trace
            assert result.trace == json.loads(json.dumps(result.trace))
            assert result.histograms == json.loads(json.dumps(result.histograms))
