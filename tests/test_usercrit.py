"""Tests for the §4.4 user-level critical-section extension."""

import pytest

from repro.core.policy import PolicySpec
from repro.core.usercrit import (
    USER_CRITICAL,
    UserAwareDetector,
    UserCriticalRegistry,
    enable_user_critical,
)
from repro.errors import SymbolTableError
from repro.guest.actions import Acquire, Compute
from repro.guest.spinlock import LockClass
from repro.sim.time import ms, us

from helpers import make_domain, make_hv, spawn_task, spin_program


class TestRegistry:
    def test_register_and_resolve(self):
        registry = UserCriticalRegistry()
        start = registry.register("r1")
        assert registry.resolve(start) == "r1"
        assert registry.resolve(start + 0x10) == "r1"

    def test_register_idempotent(self):
        registry = UserCriticalRegistry()
        assert registry.register("r") == registry.register("r")
        assert len(registry) == 1

    def test_distinct_regions_distinct_ranges(self):
        registry = UserCriticalRegistry()
        a = registry.register("a")
        b = registry.register("b")
        assert a != b
        assert registry.resolve(b) == "b"

    def test_resolve_outside_window(self):
        registry = UserCriticalRegistry()
        registry.register("a")
        assert registry.resolve(0x400000) is None
        assert registry.resolve(None) is None

    def test_addr_of_unregistered(self):
        with pytest.raises(SymbolTableError):
            UserCriticalRegistry().addr_of("ghost")

    def test_enable_attaches_once(self):
        _sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        first = enable_user_critical(domain)
        second = enable_user_critical(domain)
        assert first is second
        assert domain.kernel.user_critical is first


class TestUserAwareDetector:
    def _domain(self):
        _sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        registry = enable_user_critical(domain)
        registry.register("cs")
        return domain

    def test_detects_registered_user_region(self):
        domain = self._domain()
        vcpu = domain.vcpus[0]
        vcpu.current_symbol = "user:cs"
        detection = UserAwareDetector().inspect(vcpu)
        assert detection.critical
        assert detection.critical_class == USER_CRITICAL
        assert detection.symbol == "user:cs"

    def test_plain_user_ip_still_not_critical(self):
        domain = self._domain()
        vcpu = domain.vcpus[0]
        vcpu.current_symbol = None
        assert not UserAwareDetector().inspect(vcpu).critical

    def test_kernel_symbols_still_detected(self):
        domain = self._domain()
        vcpu = domain.vcpus[0]
        vcpu.current_symbol = "get_page_from_freelist"
        assert UserAwareDetector().inspect(vcpu).critical

    def test_base_detector_blind_to_user_regions(self):
        from repro.core.detection import CriticalServiceDetector

        domain = self._domain()
        vcpu = domain.vcpus[0]
        vcpu.current_symbol = "user:cs"
        assert not CriticalServiceDetector().inspect(vcpu).critical

    def test_domain_without_registry_unaffected(self):
        _sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        vcpu = domain.vcpus[0]
        vcpu.current_symbol = None
        assert not UserAwareDetector().inspect(vcpu).critical


class TestFutexMutex:
    def test_contended_user_mutex_sleeps_task_not_vcpu(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        registry = enable_user_critical(domain)
        registry.register("cs")
        lock_class = LockClass("um", "user:cs", "user:cs", user_level=True,
                               spin_symbol=None)
        lock = domain.kernel.lock(lock_class)
        bg_progress = {"n": 0}

        def holder():
            yield Acquire(lock)
            yield Compute(ms(5), symbol="user:cs")  # long CS
            # never releases within the test window

        def contender():
            yield Compute(us(5))
            yield Acquire(lock)

        def background():
            while True:
                yield Compute(us(50))
                bg_progress["n"] += 1

        spawn_task(domain.vcpus[0], lambda: holder(), "holder")
        spawn_task(domain.vcpus[0], lambda: contender(), "contender")
        spawn_task(domain.vcpus[0], lambda: background(), "bg")
        hv.start()
        # The guest round-robin slice is 6 ms; run long enough for the
        # holder's 5 ms critical section plus the contender's futex
        # sleep plus background turns.
        sim.run(until=ms(25))
        # The contender futex-slept; the vCPU kept running (bg made
        # progress) instead of parking the whole vCPU.
        assert bg_progress["n"] > 10

    def test_futex_wake_crosses_vcpus(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        registry = enable_user_critical(domain)
        registry.register("cs")
        lock_class = LockClass("um", "user:cs", "user:cs", user_level=True,
                               spin_symbol=None)
        lock = domain.kernel.lock(lock_class)
        done = {"a": 0, "b": 0}

        def looper(tag):
            def gen():
                while True:
                    yield Acquire(lock)
                    yield Compute(us(5), symbol="user:cs")
                    from repro.guest.actions import Release

                    yield Release(lock)
                    yield Compute(us(30))
                    done[tag] += 1

            return gen

        spawn_task(domain.vcpus[0], looper("a"), "a")
        spawn_task(domain.vcpus[1], looper("b"), "b")
        hv.start()
        sim.run(until=ms(20))
        assert done["a"] > 50 and done["b"] > 50


class TestDirectedAcceleration:
    """A holder engineered to be preempted mid-user-CS: only the
    user-aware policy rescues it."""

    def _run(self, user_critical):
        lock_class = LockClass("um", "user:cs", "user:cs", user_level=True,
                               spin_symbol=None)
        held = {"sections": 0}
        lock = None

        def holder():
            while True:
                yield Acquire(lock)
                yield Compute(us(200), symbol="user:cs")
                from repro.guest.actions import Release

                yield Release(lock)
                held["sections"] += 1
                yield Compute(us(100))

        def contender():
            while True:
                yield Compute(us(50))
                yield Acquire(lock)
                from repro.guest.actions import Release

                yield Release(lock)

        # 2 pCPUs total: one normal (heavily contended), one micro.
        sim, hv = make_hv(num_pcpus=2)
        vm1 = make_domain(hv, name="vm1", vcpus=2)
        registry = enable_user_critical(vm1)
        registry.register("cs")
        lock = vm1.kernel.lock(lock_class)
        vm2 = make_domain(hv, name="vm2", vcpus=1)
        spawn_task(vm1.vcpus[0], lambda: holder(), "holder")
        spawn_task(vm1.vcpus[1], lambda: contender(), "contender")
        spawn_task(vm2.vcpus[0], spin_program(), "hog")
        engine = PolicySpec.static(1, user_critical=user_critical).install(hv)
        hv.start()
        sim.run(until=ms(400))
        return held["sections"], engine.detector.hits, hv.stats.counters.get("migrations", 0)

    def test_user_aware_policy_detects_and_helps(self):
        blind_sections, blind_hits, _ = self._run(user_critical=False)
        aware_sections, aware_hits, aware_migr = self._run(user_critical=True)
        assert blind_hits == 0
        assert aware_hits > 0
        assert aware_migr > 0
        assert aware_sections >= blind_sections
