"""Tests for the metrics substrate."""

import pytest

from repro.metrics.counters import CounterSet
from repro.metrics.jitter import FlowMetrics
from repro.metrics.latency import LatencyStat
from repro.metrics.lockstat import LockStat
from repro.metrics.report import ratio, render_table


class TestLatencyStat:
    def test_empty(self):
        stat = LatencyStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.percentile(50) == 0.0

    def test_aggregates(self):
        stat = LatencyStat()
        for value in (10, 20, 30):
            stat.record(value)
        assert stat.count == 3
        assert stat.mean == 20
        assert stat.min == 10
        assert stat.max == 30

    def test_percentile_interpolation(self):
        stat = LatencyStat()
        for value in range(1, 101):
            stat.record(value)
        assert stat.percentile(0) == 1
        assert stat.percentile(100) == 100
        assert 49 <= stat.percentile(50) <= 52

    def test_reservoir_bounds_memory(self):
        stat = LatencyStat(reservoir=100)
        for value in range(10_000):
            stat.record(value)
        assert len(stat._sample) == 100
        assert stat.count == 10_000
        assert stat.min == 0 and stat.max == 9_999

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(10)
        b.record(30)
        a.merge(b)
        assert a.count == 2
        assert a.min == 10 and a.max == 30
        assert a.mean == 20

    def test_snapshot(self):
        stat = LatencyStat(name="x")
        stat.record(5)
        snap = stat.snapshot()
        assert snap == {
            "name": "x",
            "count": 1,
            "mean": 5.0,
            "min": 5,
            "max": 5,
            "p50": 5.0,
            "p95": 5.0,
            "p99": 5.0,
        }


class TestCounterSet:
    def test_inc_and_get(self):
        counters = CounterSet()
        counters.inc("a")
        counters.inc("a", 4)
        assert counters.get("a") == 5
        assert counters.get("missing") == 0
        assert counters.get("missing", 7) == 7

    def test_window_deltas(self):
        counters = CounterSet()
        counters.inc("x", 10)
        counters.mark_window()
        counters.inc("x", 3)
        counters.inc("y", 2)
        assert counters.window_delta("x") == 3
        assert counters.window_delta("y") == 2
        deltas = counters.window_deltas()
        assert deltas["x"] == 3 and deltas["y"] == 2

    def test_reset(self):
        counters = CounterSet()
        counters.inc("x", 5)
        counters.mark_window()
        counters.reset()
        assert counters.get("x") == 0
        assert counters.window_delta("x") == 0

    def test_as_dict_isolated_copy(self):
        counters = CounterSet()
        counters.inc("x")
        copy = counters.as_dict()
        copy["x"] = 99
        assert counters.get("x") == 1


class TestLockStat:
    def test_record_and_query(self):
        stats = LockStat()
        stats.record_wait("dentry", 2_000)
        stats.record_wait("dentry", 4_000)
        assert stats.mean_wait_us("dentry") == pytest.approx(3.0)
        assert stats.stat("dentry").count == 2

    def test_unknown_class(self):
        stats = LockStat()
        assert stats.stat("none") is None
        assert stats.mean_wait_us("none") == 0.0

    def test_classes_sorted(self):
        stats = LockStat()
        stats.record_wait("b", 1)
        stats.record_wait("a", 1)
        assert stats.classes() == ["a", "b"]

    def test_snapshot(self):
        stats = LockStat()
        stats.record_wait("rq", 100)
        assert stats.snapshot()["rq"]["count"] == 1


class TestFlowMetrics:
    def test_throughput_over_interval(self):
        flow = FlowMetrics()
        flow.on_delivery(now=0, sent_at=0, size=125_000)
        flow.on_delivery(now=1_000_000_000, sent_at=1_000_000_000, size=125_000)
        # 250 KB over 1 s = 2 Mbit/s
        assert flow.throughput_mbps() == pytest.approx(2.0)

    def test_throughput_explicit_duration(self):
        flow = FlowMetrics()
        flow.on_delivery(now=5, sent_at=0, size=1_250_000)
        assert flow.throughput_mbps(duration_ns=1_000_000_000) == pytest.approx(10.0)

    def test_zero_packets(self):
        flow = FlowMetrics()
        assert flow.throughput_mbps() == 0.0
        assert flow.jitter_ms == 0.0

    def test_constant_transit_zero_jitter(self):
        flow = FlowMetrics()
        for index in range(10):
            flow.on_delivery(now=index * 1_000_000 + 500, sent_at=index * 1_000_000, size=100)
        assert flow.jitter_ms == 0.0
        assert flow.final_jitter_ms == 0.0

    def test_varying_transit_positive_jitter(self):
        flow = FlowMetrics()
        transits = [0, 5_000_000, 0, 5_000_000]  # alternate 0 / 5 ms
        for index, transit in enumerate(transits):
            flow.on_delivery(now=index * 10_000_000 + transit, sent_at=index * 10_000_000, size=100)
        assert flow.jitter_ms == pytest.approx(5.0)
        assert flow.final_jitter_ms > 0

    def test_max_transit_tracked(self):
        flow = FlowMetrics()
        flow.on_delivery(now=9_000_000, sent_at=0, size=10)
        assert flow.max_transit == 9_000_000


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5
        assert lines[3].startswith("a")

    def test_float_formatting(self):
        text = render_table(["v"], [[0.12345], [123.456], [1.5]])
        assert "0.1234" in text or "0.1235" in text
        assert "123.5" in text
        assert "1.50" in text

    def test_ratio_safe(self):
        assert ratio(10, 5) == 2.0
        assert ratio(10, 0) == 0.0
