"""Additional executor corner cases."""

import pytest

from repro.guest.actions import Compute, Emit, Sleep, SmpCallSingle, Wake
from repro.guest.waitqueue import WaitQueue
from repro.sim.engine import Interrupt, Simulator
from repro.sim.time import ms, us

from helpers import make_domain, make_hv, spawn_task, spin_program


class TestWakeCorners:
    def test_wake_with_banked_token_is_local_noop(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        queue = WaitQueue()
        done = {"n": 0}

        def waker():
            while True:
                yield Wake(queue)
                yield Compute(us(20))
                done["n"] += 1

        spawn_task(domain.vcpus[0], lambda: waker())
        hv.start()
        sim.run(until=ms(2))
        assert done["n"] > 50
        assert queue.banked == done["n"] + 1 or queue.banked >= done["n"]
        # No reschedule IPIs: there was never a sleeper.
        assert hv.stats.counters.get("vipi_resched") == 0

    def test_same_vcpu_wake_skips_ipi(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        queue = WaitQueue()
        woken = {"n": 0}

        def sleeper():
            while True:
                yield Sleep(queue)
                woken["n"] += 1

        def waker():
            while True:
                yield Compute(us(50))
                yield Wake(queue)

        spawn_task(domain.vcpus[0], lambda: sleeper())
        spawn_task(domain.vcpus[0], lambda: waker())
        hv.start()
        sim.run(until=ms(10))
        assert woken["n"] > 20
        assert hv.stats.counters.get("vipi_resched") == 0


class TestSmpCallCorners:
    def test_single_vcpu_domain_call_is_noop(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        done = {"n": 0}

        def caller():
            while True:
                yield Compute(us(20))
                yield SmpCallSingle()
                done["n"] += 1

        spawn_task(domain.vcpus[0], lambda: caller())
        hv.start()
        sim.run(until=ms(2))
        assert done["n"] > 20
        assert hv.stats.counters.get("vipi_call") == 0

    def test_explicit_target_index(self):
        sim, hv = make_hv(num_pcpus=3)
        domain = make_domain(hv, vcpus=3)
        for vcpu in domain.vcpus[1:]:
            spawn_task(vcpu, spin_program(chunk_us=20))
        acks = {"n": 0}

        def caller():
            while True:
                yield Compute(us(30))
                yield SmpCallSingle(target_index=2)
                acks["n"] += 1

        spawn_task(domain.vcpus[0], lambda: caller())
        hv.start()
        sim.run(until=ms(5))
        assert acks["n"] > 10
        assert hv.stats.counters.get("vipi_call") >= acks["n"]


class TestPoolChangeDuringRun:
    def test_resize_mid_flight_preserves_progress(self):
        sim, hv = make_hv(num_pcpus=4)
        domain = make_domain(hv, vcpus=4)
        counters = []
        for vcpu in domain.vcpus:
            counter = {"n": 0}
            counters.append(counter)
            from helpers import counted_compute

            spawn_task(vcpu, counted_compute(counter))
        hv.start()
        sim.run(until=ms(20))
        hv.set_micro_cores(2)
        sim.run(until=sim.now + ms(20))
        hv.set_micro_cores(0)
        sim.run(until=sim.now + ms(20))
        # Everyone kept making progress through both transitions.
        snapshot = [c["n"] for c in counters]
        sim.run(until=sim.now + ms(20))
        assert all(c["n"] > s for c, s in zip(counters, snapshot))
        assert len(hv.micro_pool) == 0
        assert len(hv.normal_pool) == 4

    def test_repeated_resizes_are_stable(self):
        sim, hv = make_hv(num_pcpus=4)
        domain = make_domain(hv, vcpus=2)
        for vcpu in domain.vcpus:
            spawn_task(vcpu, spin_program())
        hv.start()
        for count in (1, 2, 1, 0, 2, 0):
            hv.set_micro_cores(count)
            sim.run(until=sim.now + ms(5))
        assert len(hv.micro_pool) == 0
        assert sorted(p.info.index for p in hv.normal_pool.pcpus) == [0, 1, 2, 3]


class TestComputePartialProgress:
    def test_long_compute_survives_many_preemptions(self):
        sim, hv = make_hv(num_pcpus=1)
        vm1 = make_domain(hv, name="vm1", vcpus=1)
        vm2 = make_domain(hv, name="vm2", vcpus=1)
        finished = {}

        def long_job():
            yield Compute(ms(50), symbol="do_syscall_64")  # kernel: full speed
            yield Emit(lambda now: finished.setdefault("at", now))
            while True:
                yield Compute(us(100))

        spawn_task(vm1.vcpus[0], lambda: long_job())
        spawn_task(vm2.vcpus[0], spin_program())
        hv.start()
        sim.run(until=ms(250))
        # 50 ms of work at ~50% share -> finishes around 100 ms, despite
        # being sliced into many slices.
        assert "at" in finished
        assert ms(80) <= finished["at"] <= ms(200)


class TestPeekCompactInteraction:
    """``Simulator.peek()`` releases cancelled heads as a side effect,
    and ``_compact()`` can fire mid-run from inside a callback. Both
    must keep ``_garbage`` exact and never lose a live event."""

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_peek_releases_cancelled_far_heads_exactly(self, backend):
        sim = Simulator(far_queue=backend)
        victims = [sim.schedule(10 + i, lambda _a: None) for i in range(3)]
        sim.schedule(50, lambda _a: None)
        for handle in victims:
            handle.cancel()
        assert sim._garbage == 3
        # peek() walks past the three cancelled heads, releasing each.
        assert sim.peek() == 50
        assert sim._garbage == 0
        assert sim.pending() == 1
        # Idempotent: a second peek finds a clean head.
        assert sim.peek() == 50
        assert sim._garbage == 0

    def test_peek_releases_cancelled_lane_heads_exactly(self):
        sim = Simulator()
        head = sim.schedule(0, lambda _a: None)
        sim.schedule(0, lambda _a: None)
        head.cancel()
        assert sim._garbage == 1
        assert sim.peek() == 0  # the surviving zero-delay entry
        assert sim._garbage == 0
        assert sim.pending() == 1

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_peek_skips_stale_timer_waits_without_garbage(self, backend):
        # Handle-free timer waits (a process yielding a bare int) are
        # invalidated by revoking the arm token, never via cancel(), so
        # they must not contribute to _garbage -- and peek() must not
        # decrement it when it releases one.
        sim = Simulator(far_queue=backend)

        def sleeper():
            try:
                yield 10
            except Interrupt:
                pass

        proc = sim.process(sleeper())
        sim.schedule(50, lambda _a: None)
        sim.run(until=0)  # start the process; timer armed at t=10
        proc.interrupt()
        assert sim._garbage == 0
        sim.run(until=0)  # drain the interrupt resume at t=0
        # peek() walks past the stale t=10 entry without touching the
        # garbage counter (it was never counted).
        assert sim.peek() == 50
        assert sim._garbage == 0

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_midrun_compaction_keeps_later_same_time_events(self, backend):
        # A callback cancels enough handles to trigger _compact() while
        # the run loop is mid-drain at this instant. Later same-time
        # events -- a far sibling already popped into the lane and two
        # zero-delay follow-ups scheduled by the callback itself -- must
        # all still fire, in order.
        sim = Simulator(far_queue=backend)
        fired = []
        victims = [sim.schedule(100 + i, lambda _a: None) for i in range(20)]
        doomed = {}

        def boom(_arg):
            sim.schedule(0, fired.append, "follow-up-1")
            doomed["handle"] = sim.schedule(0, fired.append, "doomed")
            sim._schedule_now(fired.append, "follow-up-2")
            doomed["handle"].cancel()
            for handle in victims:
                handle.cancel()  # 21 cancellations -> compaction fires
            fired.append("boom")

        sim.schedule(5, boom)
        sim.schedule(5, fired.append, "sibling")
        sim.run()
        assert fired == ["boom", "sibling", "follow-up-1", "follow-up-2"]
        assert sim._garbage == 0
        assert sim.pending() == 0
