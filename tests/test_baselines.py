"""The ``baselines`` experiment: plan shape, reduction, rendering, and
tri-path (serial == parallel == cache-replay) determinism.

Full-scale paper-shaped ordering assertions live in
``benchmarks/test_baselines.py``.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import baselines, registry
from repro.runner import SimJob, execute
from repro.runner.jobs import run_job

SCALE = 0.02  # clamps to the 10 ms duration floor — fast but real


def _norm(value):
    def convert(x):
        if isinstance(x, dict):
            return {str(k): convert(v) for k, v in x.items()}
        if isinstance(x, (list, tuple)):
            return [convert(v) for v in x]
        return x

    return json.dumps(convert(value), sort_keys=True)


class TestPlan:
    def test_full_matrix(self):
        jobs = baselines.plan(scale_override=SCALE)
        assert len(jobs) == len(baselines.SCHEMES) * 4 * len(baselines.CORUNNERS)
        tags = {job.tag for job in jobs}
        assert "credit:gmake:swaptions" in tags
        assert "micro_pool:vips:memclone" in tags

    def test_scheduler_override_only_for_backend_schemes(self):
        jobs = {job.tag: job for job in baselines.plan(scale_override=SCALE)}
        assert "scheduler" not in jobs["credit:gmake:swaptions"].overrides
        assert "scheduler" not in jobs["micro_pool:gmake:swaptions"].overrides
        assert jobs["cosched:gmake:swaptions"].overrides["scheduler"] == "cosched"
        assert jobs["shortslice:exim:memclone"].overrides["scheduler"] == "shortslice"

    def test_micro_pool_uses_static_policy(self):
        jobs = {job.tag: job for job in baselines.plan(scale_override=SCALE)}
        assert jobs["micro_pool:gmake:swaptions"].policy["mode"] == "static"
        assert jobs["credit:gmake:swaptions"].policy["mode"] == "baseline"

    def test_both_corunner_kinds_present(self):
        # One co-runner alone cannot probe both stories: pure-CPU
        # swaptions exposes the short-slice throughput tax but never
        # blocks, so vCPUs never migrate and balance is vacuously
        # identical to credit; blocky memclone provokes the stealing and
        # sibling stacking the contention metrics need (see baselines.py).
        jobs = baselines.plan(scale_override=SCALE)
        kinds = {job.scenario_kwargs["corunner_kind"] for job in jobs}
        assert kinds == set(baselines.CORUNNERS)
        assert baselines.CPU_CORUNNER == "swaptions"
        assert baselines.BLOCKY_CORUNNER != "swaptions"


class TestReduceAndRender:
    @pytest.fixture(scope="class")
    def reduced(self):
        jobs = baselines.plan(
            scale_override=SCALE,
            schemes=("credit", "cosched", "shortslice"),
            workloads=("gmake",),
        )
        return baselines.reduce(execute(jobs, workers=1, cache=False))

    def test_per_scheme_entries(self, reduced):
        for scheme in ("credit", "cosched", "shortslice"):
            entry = reduced[scheme]
            for key in (
                "target_x",
                "corunner_x",
                "yields",
                "lock_wait_us",
                "tlb_sync_us",
                "sibling_wait_us",
                "gang_idles",
                "steal_ns",
            ):
                assert key in entry
        assert reduced["credit"]["target_x"] == 1.0
        assert reduced["credit"]["corunner_x"] == 1.0

    def test_checks_present(self, reduced):
        checks = reduced["checks"]
        assert "shortslice_taxes_corunner" in checks
        assert "cosched_gang_idles" in checks
        assert all(isinstance(v, bool) for v in checks.values())

    def test_gang_idles_only_under_cosched(self, reduced):
        assert reduced["cosched"]["gang_idles"] > 0
        assert reduced["credit"]["gang_idles"] == 0
        assert reduced["shortslice"]["gang_idles"] == 0

    def test_render(self, reduced):
        text = baselines.format_result(reduced)
        assert "Baselines" in text
        assert "paper-shaped ordering" in text
        for scheme in ("credit", "cosched", "shortslice"):
            assert scheme in text


class TestDeterminism:
    def test_serial_parallel_cache_identical(self, tmp_path):
        def plan():
            return baselines.plan(
                scale_override=SCALE,
                schemes=("credit", "credit2", "balance"),
                workloads=("gmake",),
            )

        serial = baselines.reduce(execute(plan(), workers=1, cache=False))
        parallel = baselines.reduce(execute(plan(), workers=3, cache=False))
        cold = baselines.reduce(
            execute(plan(), workers=1, cache=True, cache_dir=tmp_path)
        )
        warm = baselines.reduce(
            execute(plan(), workers=1, cache=True, cache_dir=tmp_path)
        )
        assert _norm(serial) == _norm(parallel)
        assert _norm(serial) == _norm(cold)
        assert _norm(serial) == _norm(warm)


class TestRegistryWiring:
    def test_baselines_listed(self):
        assert "baselines" in registry.available()

    def test_registry_scheduler_kwarg_validated_up_front(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            registry.run("baselines", scheduler="warp9")

    def test_normal_slice_override_removed(self):
        # The pre-sched ablation hack must be gone: jobs carrying it are
        # rejected instead of silently ignored.
        job = SimJob(
            tag="x",
            scenario="corun",
            scenario_kwargs={"workload_kind": "gmake"},
            duration_ns=10_000_000,
            overrides={"normal_slice": 100_000},
        )
        with pytest.raises(ConfigError, match="unknown scenario overrides"):
            run_job(job)
