"""Property-based tests (hypothesis) for core data structures and
invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.spinlock import PAGE_ALLOC, PARKED, SPINNING, WAITING, SpinLock
from repro.guest.symbols import SymbolTable, build_table
from repro.guest.waitqueue import WaitQueue
from repro.metrics.counters import CounterSet
from repro.metrics.latency import LatencyStat
from repro.sim.engine import Simulator
from repro.sim.rng import RngHub


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_callbacks_observe_monotonic_time(self, delays):
        sim = Simulator()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda _a: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(
        st.lists(st.integers(min_value=1, max_value=1_000), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_run_until_never_overshoots(self, delays, limit):
        sim = Simulator()
        fired = []
        total = 0
        for delay in delays:
            total += delay
            sim.schedule(total, lambda _a: fired.append(sim.now))
        sim.run(until=limit)
        assert all(t <= limit for t in fired)
        assert sim.now == max(limit, 0) or sim.now <= limit

    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_process_timeout_sum(self, waits):
        sim = Simulator()

        def proc():
            for wait in waits:
                yield sim.timeout(wait)

        p = sim.process(proc())
        sim.run()
        assert p.state == "finished"
        assert sim.now == sum(waits)


class TestLatencyStatProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_min_mean_max_ordering(self, values):
        stat = LatencyStat()
        for value in values:
            stat.record(value)
        assert stat.min <= stat.mean <= stat.max
        assert stat.count == len(values)
        assert stat.min == min(values)
        assert stat.max == max(values)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_percentiles_monotone_and_bounded(self, values):
        stat = LatencyStat()
        for value in values:
            stat.record(value)
        p25, p50, p99 = (stat.percentile(q) for q in (25, 50, 99))
        assert stat.min <= p25 <= p50 <= p99 <= stat.max


class TestSymbolTableProperties:
    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=16),
            min_size=1,
            max_size=40,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_and_total_lookup(self, names):
        table = build_table(names)
        parsed = SymbolTable.from_system_map(table.to_system_map())
        for name in names:
            addr = table.addr_of(name)
            assert parsed.resolve_name(addr) == name
            assert table.resolve_name(addr + 0x3FF) == name
            assert table.resolve_name(addr - 1) in (None, *names)


class TestWaitQueueProperties:
    @given(st.lists(st.sampled_from(["wake", "sleep"]), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_wakeups_never_lost_or_invented(self, ops):
        queue = WaitQueue()
        wakes = delivered = sleeps = 0
        sleeping = 0
        for op in ops:
            if op == "wake":
                wakes += 1
                task = queue.pop_sleeper()
                if task is not None:
                    delivered += 1
                    sleeping -= 1
            else:
                sleeps += 1
                if not queue.try_consume():
                    queue.add_sleeper(object())
                    sleeping += 1
                else:
                    delivered += 1
        # Every wake either woke a sleeper, was consumed, or is banked.
        assert delivered + queue.banked == wakes
        assert queue.waiting == sleeping


class TestCounterProperties:
    @given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(1, 100)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_window_delta_equals_increment_sum(self, increments):
        counters = CounterSet()
        counters.inc("a", 5)
        counters.mark_window()
        expected = {}
        for name, amount in increments:
            counters.inc(name, amount)
            expected[name] = expected.get(name, 0) + amount
        for name in "abc":
            assert counters.window_delta(name) == expected.get(name, 0)


class TestSpinlockProperties:
    class _Vcpu:
        def __init__(self, ident):
            self.ident = ident

        def notify(self, cause):
            pass

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_single_holder_invariant(self, script):
        """Random acquire/release/park/spin transitions never produce two
        simultaneous owners and never lose the lock."""

        class _Kernel:
            def pv_kick(self, vcpu):
                pass

        lock = SpinLock("l", PAGE_ALLOC, kernel=_Kernel())
        vcpus = [self._Vcpu(i) for i in range(4)]
        owner = None
        for step, choice in enumerate(script):
            vcpu = vcpus[choice]
            if owner is None and lock.try_acquire(vcpu):
                owner = vcpu
                continue
            if vcpu is owner:
                grantee = lock.release(vcpu)
                owner = None
                if grantee is not None:
                    lock.finish_grant(grantee)
                    owner = grantee
                continue
            waiter = lock.add_waiter(vcpu)
            waiter.state = (SPINNING, PARKED, WAITING)[step % 3]
        if owner is not None:
            assert lock.owned_by(owner)
        assert lock.waiter_count() <= len(vcpus)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_streams_deterministic(self, seed, name):
        a = RngHub(seed).stream(name).random()
        b = RngHub(seed).stream(name).random()
        assert a == b
