"""Tests for time units, RNG streams, and the tracer."""

from repro.sim.engine import Simulator
from repro.sim.rng import RngHub, derive_seed
from repro.sim.time import MS, SEC, US, fmt, ms, seconds, to_ms, to_seconds, to_us, us
from repro.sim.trace import Tracer


class TestTime:
    def test_unit_constants(self):
        assert US == 1_000
        assert MS == 1_000_000
        assert SEC == 1_000_000_000

    def test_conversions_roundtrip(self):
        assert us(2.5) == 2_500
        assert ms(1.5) == 1_500_000
        assert seconds(0.25) == 250_000_000
        assert to_us(us(7)) == 7.0
        assert to_ms(ms(9)) == 9.0
        assert to_seconds(seconds(3)) == 3.0

    def test_conversions_are_integers(self):
        assert isinstance(us(0.1), int)
        assert isinstance(ms(0.001), int)

    def test_fmt_picks_unit(self):
        assert fmt(500) == "500ns"
        assert fmt(1_500) == "1.500us"
        assert fmt(30 * MS) == "30.000ms"
        assert fmt(2 * SEC) == "2.000s"
        assert fmt(None) == "forever"


class TestRng:
    def test_same_name_same_stream_object(self):
        hub = RngHub(1)
        assert hub.stream("a") is hub.stream("a")

    def test_streams_reproducible_across_hubs(self):
        first = RngHub(7).stream("x").random()
        second = RngHub(7).stream("x").random()
        assert first == second

    def test_different_names_differ(self):
        hub = RngHub(7)
        assert hub.stream("x").random() != hub.stream("y").random()

    def test_different_seeds_differ(self):
        assert RngHub(1).stream("x").random() != RngHub(2).stream("x").random()

    def test_derive_seed_stable(self):
        assert derive_seed(5, "name") == derive_seed(5, "name")
        assert derive_seed(5, "name") != derive_seed(6, "name")

    def test_fork_isolates_namespaces(self):
        hub = RngHub(3)
        child = hub.fork("vm1")
        assert child.stream("t").random() != hub.stream("t").random()

    def test_adding_stream_does_not_perturb_existing(self):
        hub1 = RngHub(11)
        a_first = [hub1.stream("a").random() for _ in range(3)]
        hub2 = RngHub(11)
        hub2.stream("b").random()  # interleave another consumer
        a_second = [hub2.stream("a").random() for _ in range(3)]
        assert a_first == a_second


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        tracer.emit("evt", x=1)
        assert len(tracer) == 0

    def test_records_time_and_payload(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        sim.schedule(50, lambda _a: tracer.emit("evt", x=1))
        sim.run()
        records = tracer.find("evt")
        assert len(records) == 1
        assert records[0].time == 50
        assert records[0].detail == {"x": 1}

    def test_kind_filter(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True, kinds={"keep"})
        tracer.emit("keep")
        tracer.emit("drop")
        assert len(tracer) == 1

    def test_bounded_capacity_drops_oldest(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True, capacity=3)
        for index in range(5):
            tracer.emit("evt", i=index)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [r.detail["i"] for r in tracer] == [2, 3, 4]

    def test_clear(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        tracer.emit("evt")
        tracer.clear()
        assert len(tracer) == 0
        # The cleared record counts as dropped: dropped + len == seq
        # stays exact across the warmup boundary.
        assert tracer.dropped == 1
        assert tracer.dropped + len(tracer) == tracer.seq
