"""Integration tests for the pCPU executor: action semantics under
real scheduling."""

from repro.guest.actions import Acquire, Compute, Emit, GYield, Release, Shootdown, Sleep, Wake
from repro.guest.spinlock import PAGE_ALLOC
from repro.guest.waitqueue import WaitQueue
from repro.hw.ple import PleConfig
from repro.sim.time import ms, us

from helpers import make_domain, make_hv, spawn_task, spin_program


class TestComputeExecution:
    def test_compute_advances_work(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        done = {"n": 0}

        def program():
            while True:
                yield Compute(us(100))
                done["n"] += 1

        spawn_task(domain.vcpus[0], lambda: program())
        hv.start()
        sim.run(until=ms(10))
        # ~10ms of CPU, 100us chunks at cold-to-warm cache speed.
        assert 60 <= done["n"] <= 100

    def test_kernel_compute_full_speed(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        done = {"n": 0}

        def program():
            while True:
                yield Compute(us(100), symbol="do_syscall_64")
                done["n"] += 1

        spawn_task(domain.vcpus[0], lambda: program())
        hv.start()
        sim.run(until=ms(10))
        # Kernel work is not slowed by cache warmth.
        assert done["n"] >= 95

    def test_slice_expiry_rotates_vcpus(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=2)
        spawn_task(domain.vcpus[0], spin_program())
        spawn_task(domain.vcpus[1], spin_program())
        hv.start()
        sim.run(until=ms(100))
        ran = [v.total_ran for v in domain.vcpus]
        assert min(ran) > 0
        assert min(ran) / max(ran) > 0.5  # roughly fair

    def test_emit_side_effect_runs_at_sim_time(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        stamps = []

        def program():
            yield Compute(us(50), symbol="do_syscall_64")
            yield Emit(stamps.append, cost=us(1), symbol="do_syscall_64")
            while True:
                yield Compute(us(100))

        spawn_task(domain.vcpus[0], lambda: program())
        hv.start()
        sim.run(until=ms(1))
        assert len(stamps) == 1
        assert stamps[0] >= us(51)

    def test_task_exit_leaves_vcpu_idle(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)

        def program():
            yield Compute(us(10))

        task = spawn_task(domain.vcpus[0], lambda: program())
        hv.start()
        sim.run(until=ms(5))
        assert task.state == "exited"
        assert domain.vcpus[0].state == "blocked"


class TestLockExecution:
    def test_uncontended_lock_section(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        lock = domain.kernel.lock(PAGE_ALLOC)
        done = {"n": 0}

        def program():
            while True:
                yield Acquire(lock)
                yield Compute(us(2), symbol=lock.cs_symbol)
                yield Release(lock)
                yield Compute(us(50))
                done["n"] += 1

        spawn_task(domain.vcpus[0], lambda: program())
        hv.start()
        sim.run(until=ms(5))
        assert done["n"] > 40
        assert not lock.held

    def test_mutual_exclusion_invariant(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        lock = domain.kernel.lock(PAGE_ALLOC)
        inside = {"count": 0, "max": 0, "violations": 0}

        def enter(_now):
            inside["count"] += 1
            inside["max"] = max(inside["max"], inside["count"])
            if inside["count"] > 1:
                inside["violations"] += 1

        def leave(_now):
            inside["count"] -= 1

        def program():
            while True:
                yield Acquire(lock)
                yield Emit(enter, symbol=lock.cs_symbol)
                yield Compute(us(3), symbol=lock.cs_symbol)
                yield Emit(leave, symbol=lock.cs_symbol)
                yield Release(lock)
                yield Compute(us(10))

        for vcpu in domain.vcpus:
            spawn_task(vcpu, lambda: program())
        hv.start()
        sim.run(until=ms(20))
        assert inside["violations"] == 0
        assert inside["max"] == 1

    def test_contended_lock_makes_progress_with_preemption(self):
        """Two VMs × 2 vCPUs on 2 pCPUs; the lock-holder gets preempted
        but every waiter eventually acquires."""
        sim, hv = make_hv(num_pcpus=2)
        vm1 = make_domain(hv, name="vm1", vcpus=2)
        vm2 = make_domain(hv, name="vm2", vcpus=2)
        lock = vm1.kernel.lock(PAGE_ALLOC)
        done = {"n": 0}

        def locker():
            while True:
                yield Acquire(lock)
                yield Compute(us(3), symbol=lock.cs_symbol)
                yield Release(lock)
                yield Compute(us(30))
                done["n"] += 1

        for vcpu in vm1.vcpus:
            spawn_task(vcpu, lambda: locker())
        for vcpu in vm2.vcpus:
            spawn_task(vcpu, spin_program())
        hv.start()
        sim.run(until=ms(200))
        assert done["n"] > 100
        assert lock.waiter_count() <= 2

    def test_lock_wait_recorded_for_contended_acquisition(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        lock = domain.kernel.lock(PAGE_ALLOC)

        def hot():
            while True:
                yield Acquire(lock)
                yield Compute(us(20), symbol=lock.cs_symbol)
                yield Release(lock)

        for vcpu in domain.vcpus:
            spawn_task(vcpu, lambda: hot())
        hv.start()
        sim.run(until=ms(10))
        stat = domain.kernel.lockstat.stat("page_alloc")
        assert stat is not None and stat.count > 0


class TestPleAndPark:
    def test_long_wait_triggers_ple_yield(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=2)
        lock = domain.kernel.lock(PAGE_ALLOC)

        def holder():
            yield Acquire(lock)
            yield Compute(ms(50), symbol=lock.cs_symbol)  # very long CS
            yield Release(lock)
            while True:
                yield Compute(us(100))

        def waiter():
            yield Compute(us(5))
            yield Acquire(lock)
            yield Release(lock)
            while True:
                yield Compute(us(100))

        spawn_task(domain.vcpus[0], lambda: holder())
        spawn_task(domain.vcpus[1], lambda: waiter())
        hv.start()
        sim.run(until=ms(200))
        assert hv.stats.counters.get("yield_spinlock") >= 1
        assert not lock.held

    def test_ple_disabled_spins_to_slice_end(self):
        sim, hv = make_hv(num_pcpus=1, ple=PleConfig(enabled=False))
        domain = make_domain(hv, vcpus=2)
        lock = domain.kernel.lock(PAGE_ALLOC)

        def holder():
            yield Acquire(lock)
            yield Compute(ms(50), symbol=lock.cs_symbol)
            yield Release(lock)

        def waiter():
            yield Compute(us(5))
            yield Acquire(lock)
            yield Release(lock)

        spawn_task(domain.vcpus[0], lambda: holder())
        spawn_task(domain.vcpus[1], lambda: waiter())
        hv.start()
        sim.run(until=ms(200))
        assert hv.stats.counters.get("yield_spinlock") == 0


class TestSleepWakeExecution:
    def test_cross_vcpu_wake_via_resched_ipi(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        queue = WaitQueue()
        woken = []

        def sleeper():
            yield Sleep(queue)
            yield Emit(woken.append)
            while True:
                yield Compute(us(100))

        def waker():
            yield Compute(us(50))
            yield Wake(queue)
            while True:
                yield Compute(us(100))

        spawn_task(domain.vcpus[0], lambda: sleeper(), name="sleeper")
        spawn_task(domain.vcpus[1], lambda: waker(), name="waker")
        hv.start()
        sim.run(until=ms(5))
        assert len(woken) == 1
        assert woken[0] < ms(1)  # wake arrives within the IPI path latency
        assert hv.stats.counters.get("vipi_resched") == 1

    def test_sync_wake_waits_for_ack(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        queue = WaitQueue()
        marks = []

        def sleeper():
            yield Sleep(queue)
            while True:
                yield Compute(us(100))

        def waker():
            yield Compute(us(10))
            yield Wake(queue, sync=True)
            yield Emit(lambda now: marks.append(now))
            while True:
                yield Compute(us(100))

        spawn_task(domain.vcpus[0], lambda: sleeper())
        spawn_task(domain.vcpus[1], lambda: waker())
        hv.start()
        sim.run(until=ms(5))
        # The waker resumed only after the recipient processed the IPI.
        assert marks and marks[0] >= us(10) + hv.costs.ipi_deliver + hv.costs.ipi_handle

    def test_gyield_rotates_guest_tasks(self):
        sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        order = []

        def chatty(tag):
            def gen():
                while True:
                    yield Compute(us(10))
                    yield Emit(lambda now, t=tag: order.append(t))
                    yield GYield()

            return gen

        spawn_task(domain.vcpus[0], chatty("a"))
        spawn_task(domain.vcpus[0], chatty("b"))
        hv.start()
        sim.run(until=ms(1))
        assert "a" in order and "b" in order
        # Strict alternation thanks to GYield.
        assert all(x != y for x, y in zip(order, order[1:]))


class TestShootdownExecution:
    def test_shootdown_completes_with_running_targets(self):
        sim, hv = make_hv(num_pcpus=4)
        domain = make_domain(hv, vcpus=3)
        completions = []

        def initiator():
            yield Compute(us(20))
            yield Shootdown()
            yield Emit(completions.append)
            while True:
                yield Compute(us(100))

        spawn_task(domain.vcpus[0], lambda: initiator())
        for vcpu in domain.vcpus[1:]:
            spawn_task(vcpu, spin_program())
        hv.start()
        sim.run(until=ms(5))
        assert len(completions) == 1
        assert domain.kernel.tlb.sync_latency.count == 1
        assert domain.kernel.tlb.sync_latency.mean < us(100)

    def test_shootdown_with_preempted_target_is_slow(self):
        sim, hv = make_hv(num_pcpus=1)  # 3 vCPUs share one pCPU
        domain = make_domain(hv, vcpus=3)

        def initiator():
            yield Compute(us(20))
            yield Shootdown()
            while True:
                yield Compute(us(100))

        spawn_task(domain.vcpus[0], lambda: initiator())
        for vcpu in domain.vcpus[1:]:
            spawn_task(vcpu, spin_program())
        hv.start()
        sim.run(until=ms(200))
        stats = domain.kernel.tlb.sync_latency
        assert stats.count >= 1
        assert stats.mean > us(500)
        assert hv.stats.counters.get("yield_ipi", 0) >= 1
