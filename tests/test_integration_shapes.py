"""Integration tests asserting the paper's headline qualitative results
at reduced (but statistically sufficient) scale.

These are the invariants a reviewer would check first; the benchmarks
re-verify them at full scale with printed tables.
"""


from repro.core.policy import PolicySpec
from repro.experiments.common import dynamic_policy
from repro.experiments.scenarios import (
    corun_scenario,
    mixed_io_scenario,
    solo_io_scenario,
    solo_scenario,
)
from repro.sim.time import ms

DURATION = ms(200)
WARMUP = ms(100)


def _corun(kind, policy=None, **kw):
    return corun_scenario(kind, policy=policy, **kw).build().run(DURATION, warmup_ns=WARMUP)


class TestVtdBaselinePathologies:
    def test_consolidation_inflates_yields(self):
        solo = solo_scenario("dedup").build().run(ms(120), warmup_ns=WARMUP)
        corun = _corun("dedup")
        solo_rate = solo.total_yields("vm1") / 0.12
        corun_rate = corun.total_yields("vm1") / 0.2
        assert corun_rate > 5 * solo_rate

    def test_corun_degrades_lock_bound_throughput_beyond_fair_share(self):
        solo = solo_scenario("exim").build().run(ms(120), warmup_ns=WARMUP)
        corun = _corun("exim")
        # 2:1 overcommit fair share would be 2x; VTD makes it far worse.
        assert solo.rate("exim") / max(corun.rate("exim"), 1) > 4

    def test_tlb_sync_millisecond_scale_under_corun(self):
        corun = _corun("dedup")
        stats = corun.tlb_stats["vm1"]
        assert stats["count"] > 0
        assert stats["mean"] > ms(1)

    def test_tlb_sync_microsecond_scale_solo(self):
        solo = solo_scenario("dedup").build().run(ms(120), warmup_ns=WARMUP)
        stats = solo.tlb_stats["vm1"]
        assert stats["count"] > 0
        assert stats["mean"] < 200_000  # < 0.2 ms

    def test_gmake_lock_waits_inflate_under_corun(self):
        solo = solo_scenario("gmake").build().run(ms(120), warmup_ns=WARMUP)
        corun = _corun("gmake")
        solo_waits = [s["mean"] for s in solo.lockstats["vm1"].values() if s["count"]]
        corun_waits = [s["mean"] for s in corun.lockstats["vm1"].values() if s["count"]]
        assert solo_waits and corun_waits
        assert max(corun_waits) > 10 * max(solo_waits)


class TestMicroSlicedImprovements:
    def test_exim_improves_with_one_micro_core(self):
        base = _corun("exim")
        micro = _corun("exim", policy=PolicySpec.static(1))
        assert micro.rate("exim") > 1.5 * base.rate("exim")
        assert micro.hv_counters.get("migrations", 0) > 0

    def test_vips_single_core_counterproductive_three_better(self):
        base = _corun("vips")
        st1 = _corun("vips", policy=PolicySpec.static(1))
        st3 = _corun("vips", policy=PolicySpec.static(3))
        assert st1.rate("vips") < base.rate("vips")
        assert st3.rate("vips") > st1.rate("vips")

    def test_dedup_three_cores_strong_improvement(self):
        base = _corun("dedup")
        st3 = _corun("dedup", policy=PolicySpec.static(3))
        assert st3.rate("dedup") > 1.5 * base.rate("dedup")

    def test_micro_slicing_cuts_tlb_sync_latency(self):
        base = _corun("vips")
        st3 = _corun("vips", policy=PolicySpec.static(3))
        assert st3.tlb_stats["vm1"]["mean"] < 0.5 * base.tlb_stats["vm1"]["mean"]

    def test_corunner_cost_is_bounded(self):
        base = _corun("exim")
        micro = _corun("exim", policy=PolicySpec.static(1))
        # The paper reports ~10% swaptions cost for exim+1 core.
        assert micro.rate("swaptions") > 0.6 * base.rate("swaptions")

    def test_dynamic_improves_over_baseline(self):
        base = corun_scenario("exim").build().run(ms(400), warmup_ns=WARMUP)
        dyn = corun_scenario("exim", policy=dynamic_policy()).build().run(
            ms(400), warmup_ns=WARMUP
        )
        assert dyn.rate("exim") > 1.2 * base.rate("exim")

    def test_dynamic_releases_cores_when_idle(self):
        dyn = corun_scenario("sjeng", policy=dynamic_policy()).build().run(
            ms(400), warmup_ns=WARMUP
        )
        assert dyn.micro_cores <= 1

    def test_unaffected_workload_overhead_small(self):
        base = _corun("blackscholes")
        dyn = corun_scenario("blackscholes", policy=dynamic_policy()).build().run(
            DURATION, warmup_ns=WARMUP
        )
        assert dyn.rate("blackscholes") > 0.9 * base.rate("blackscholes")


class TestIoShapes:
    def test_mixed_corun_hurts_io(self):
        solo = solo_io_scenario().build().run(ms(300), warmup_ns=WARMUP)
        mixed = mixed_io_scenario().build().run(ms(300), warmup_ns=WARMUP)
        solo_io = solo.workload("iperf").extra
        mixed_io = mixed.workload("iperf").extra
        assert mixed_io["throughput_mbps"] < 0.8 * solo_io["throughput_mbps"]
        assert mixed_io["jitter_ms"] > 10 * max(solo_io["jitter_ms"], 0.001)

    def test_micro_slicing_recovers_io(self):
        mixed = mixed_io_scenario().build().run(ms(300), warmup_ns=WARMUP)
        micro = mixed_io_scenario(policy=PolicySpec.static(1)).build().run(
            ms(300), warmup_ns=WARMUP
        )
        base_io = mixed.workload("iperf").extra
        micro_io = micro.workload("iperf").extra
        assert micro_io["throughput_mbps"] > 1.2 * base_io["throughput_mbps"]
        assert micro_io["jitter_ms"] < 0.5 * base_io["jitter_ms"]

    def test_udp_drops_only_under_mixed_baseline(self):
        mixed = mixed_io_scenario(mode="udp").build().run(ms(300), warmup_ns=WARMUP)
        micro = mixed_io_scenario(mode="udp", policy=PolicySpec.static(1)).build().run(
            ms(300), warmup_ns=WARMUP
        )
        assert mixed.workload("iperf").extra["dropped"] > 0
        assert micro.workload("iperf").extra["dropped"] == 0


class TestGuestTransparency:
    def test_detection_uses_only_hypervisor_visible_state(self):
        """The policy must work for a guest with a custom (but provided)
        symbol table — the mechanism reads IPs, not guest internals."""
        micro = _corun("exim", policy=PolicySpec.static(1))
        assert micro.hv_counters.get("migrations", 0) > 0

    def test_guest_kernel_never_calls_scheduler_directly(self):
        import inspect

        import repro.guest.kernel as kernel_mod

        source = inspect.getsource(kernel_mod)
        for forbidden in ("normal_pool", "micro_pool", "accelerate", "enqueue("):
            assert forbidden not in source
