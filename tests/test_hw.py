"""Tests for the hardware models."""

import pytest

from repro.errors import ConfigError
from repro.hw.cache import CacheState
from repro.hw.costs import CacheModel, CostModel
from repro.hw.nic import Nic, Packet
from repro.hw.ple import PleConfig
from repro.hw.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.time import ms, us


class TestTopology:
    def test_default_is_twelve_pcpus(self):
        assert len(Topology()) == 12

    def test_indices_sequential(self):
        topo = Topology(num_pcpus=4)
        assert [p.index for p in topo] == [0, 1, 2, 3]

    def test_socket_assignment(self):
        topo = Topology(num_pcpus=8, sockets=2)
        assert topo.socket_of(0) == 0
        assert topo.socket_of(7) == 1

    def test_zero_pcpus_rejected(self):
        with pytest.raises(ConfigError):
            Topology(num_pcpus=0)

    def test_uneven_socket_split_rejected(self):
        with pytest.raises(ConfigError):
            Topology(num_pcpus=5, sockets=2)

    def test_indexing(self):
        topo = Topology(num_pcpus=3)
        assert topo[2].index == 2


class TestCacheModel:
    def test_starts_cold(self):
        cache = CacheState(CacheModel())
        assert cache.warmth == 0.0

    def test_warms_while_running(self):
        model = CacheModel()
        cache = CacheState(model)
        cache.on_schedule_in(0)
        speed_start = cache.speed(0)
        speed_later = cache.speed(ms(5))
        assert speed_later > speed_start
        assert speed_later <= 1.0

    def test_cold_speed_floor(self):
        model = CacheModel(max_penalty=0.3)
        cache = CacheState(model)
        assert cache.speed(0) == pytest.approx(0.7)

    def test_decays_when_descheduled(self):
        model = CacheModel()
        cache = CacheState(model)
        cache.on_schedule_in(0)
        cache.on_schedule_out(ms(10))
        warm = cache.warmth
        cache.speed(ms(40))  # 30 ms off CPU
        assert cache.warmth < warm

    def test_fully_warm_approaches_full_speed(self):
        cache = CacheState(CacheModel())
        cache.on_schedule_in(0)
        assert cache.speed(ms(50)) == pytest.approx(1.0, abs=1e-6)

    def test_time_never_runs_backwards(self):
        cache = CacheState(CacheModel())
        cache.on_schedule_in(100)
        cache.speed(100)  # same instant: no change, no crash
        assert cache.warmth == pytest.approx(0.0)


class TestPle:
    def test_default_window(self):
        assert PleConfig().spin_budget() == us(3)

    def test_disabled_returns_none(self):
        assert PleConfig(enabled=False).spin_budget() is None

    def test_custom_window(self):
        assert PleConfig(window=us(25)).spin_budget() == us(25)


class TestCostModel:
    def test_defaults_are_microsecond_scale(self):
        costs = CostModel()
        assert us(0.5) <= costs.ctx_switch <= us(10)
        assert costs.vmexit < costs.ctx_switch

    def test_cache_model_attached(self):
        assert isinstance(CostModel().cache, CacheModel)


class TestNic:
    def _packet(self, seq=1, size=1500):
        return Packet("flow", size, seq, 0)

    def test_receive_queues_packet(self):
        sim = Simulator()
        nic = Nic(sim)
        assert nic.receive(self._packet())
        assert nic.pending == 1

    def test_irq_raised_after_latency(self):
        sim = Simulator()
        nic = Nic(sim, irq_latency=us(2))
        fired = []
        nic.attach_irq_sink(lambda n: fired.append(sim.now))
        nic.receive(self._packet())
        sim.run()
        assert fired == [us(2)]

    def test_irq_coalescing_single_interrupt_for_burst(self):
        sim = Simulator()
        nic = Nic(sim)
        fired = []
        nic.attach_irq_sink(lambda n: fired.append(sim.now))
        for seq in range(5):
            nic.receive(self._packet(seq))
        sim.run()
        assert len(fired) == 1

    def test_drain_returns_fifo_and_rearms(self):
        sim = Simulator()
        nic = Nic(sim)
        fired = []
        nic.attach_irq_sink(lambda n: fired.append(sim.now))
        nic.receive(self._packet(1))
        sim.run()
        taken = nic.drain()
        assert [p.seq for p in taken] == [1]
        nic.receive(self._packet(2))
        sim.run()
        assert len(fired) == 2  # re-armed after a full drain

    def test_drain_budget(self):
        sim = Simulator()
        nic = Nic(sim)
        for seq in range(5):
            nic.receive(self._packet(seq))
        taken = nic.drain(budget=2)
        assert len(taken) == 2
        assert nic.pending == 3

    def test_partial_drain_keeps_irq_pending(self):
        sim = Simulator()
        nic = Nic(sim)
        fired = []
        nic.attach_irq_sink(lambda n: fired.append(sim.now))
        for seq in range(4):
            nic.receive(self._packet(seq))
        sim.run()
        nic.drain(budget=2)
        sim.run()
        # Remaining packets re-raise an interrupt.
        assert len(fired) == 2

    def test_ring_overflow_drops(self):
        sim = Simulator()
        nic = Nic(sim, ring_size=2)
        assert nic.receive(self._packet(1))
        assert nic.receive(self._packet(2))
        assert not nic.receive(self._packet(3))
        assert nic.dropped == 1
        assert nic.delivered == 2
