"""Tests for the guest kernel symbol table."""

import pytest

from repro.errors import SymbolTableError
from repro.guest.symbols import (
    DEFAULT_KERNEL_SYMBOLS,
    KERNEL_TEXT_BASE,
    USER_IP,
    Symbol,
    SymbolTable,
    build_table,
    default_guest_table,
)


class TestSymbolTable:
    def test_build_table_layout_deterministic(self):
        one = build_table(["a", "b", "c"])
        two = build_table(["a", "b", "c"])
        assert [s.address for s in one] == [s.address for s in two]

    def test_addr_of_known_symbol(self):
        table = build_table(["first", "second"])
        assert table.addr_of("first") == KERNEL_TEXT_BASE

    def test_addr_of_unknown_symbol(self):
        table = build_table(["only"])
        with pytest.raises(SymbolTableError):
            table.addr_of("missing")

    def test_lookup_start_middle_and_end(self):
        table = build_table(["f"], size=0x100)
        base = table.addr_of("f")
        assert table.resolve_name(base) == "f"
        assert table.resolve_name(base + 0x80) == "f"
        assert table.resolve_name(base + 0xFF) == "f"
        assert table.resolve_name(base + 0x100) is None

    def test_lookup_user_address_is_none(self):
        table = default_guest_table()
        assert table.resolve_name(USER_IP) is None
        assert table.lookup(None) is None

    def test_lookup_below_first_symbol(self):
        table = SymbolTable([Symbol("f", KERNEL_TEXT_BASE + 0x1000)])
        assert table.resolve_name(KERNEL_TEXT_BASE + 0x10) is None

    def test_duplicate_symbol_rejected(self):
        table = build_table(["dup"])
        with pytest.raises(SymbolTableError):
            table.add(Symbol("dup", KERNEL_TEXT_BASE + 0x100000))

    def test_overlapping_symbols_rejected(self):
        table = SymbolTable([Symbol("a", 0xFFFFFFFF81000000, size=0x200)])
        with pytest.raises(SymbolTableError):
            table.add(Symbol("b", 0xFFFFFFFF81000100, size=0x200))

    def test_contains(self):
        table = build_table(["x"])
        assert "x" in table
        assert "y" not in table

    def test_default_table_has_all_declared_symbols(self):
        table = default_guest_table()
        assert len(table) == len(DEFAULT_KERNEL_SYMBOLS)
        for name in DEFAULT_KERNEL_SYMBOLS:
            assert table.resolve_name(table.addr_of(name)) == name


class TestSystemMapFormat:
    def test_roundtrip(self):
        table = build_table(["alpha", "beta", "gamma"])
        text = table.to_system_map()
        parsed = SymbolTable.from_system_map(text)
        for name in ("alpha", "beta", "gamma"):
            assert parsed.addr_of(name) == table.addr_of(name)

    def test_format_is_system_map_like(self):
        table = build_table(["sym"])
        line = table.to_system_map().strip()
        addr_text, type_text, name = line.split()
        assert int(addr_text, 16) == KERNEL_TEXT_BASE
        assert type_text == "T"
        assert name == "sym"

    def test_parse_unsorted_input(self):
        text = "ffffffff81000400 T late\nffffffff81000000 T early\n"
        table = SymbolTable.from_system_map(text)
        assert table.addr_of("early") < table.addr_of("late")

    def test_parse_infers_size_from_gap(self):
        text = "ffffffff81000000 T tight\nffffffff81000040 T next\n"
        table = SymbolTable.from_system_map(text)
        assert table.lookup(0xFFFFFFFF81000020).name == "tight"
        assert table.lookup(0xFFFFFFFF81000040).name == "next"

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(SymbolTableError):
            SymbolTable.from_system_map("not a symbol line\n")

    def test_parse_rejects_bad_address(self):
        with pytest.raises(SymbolTableError):
            SymbolTable.from_system_map("zzzz T name\n")

    def test_parse_skips_blank_lines(self):
        table = SymbolTable.from_system_map("\nffffffff81000000 T a\n\n")
        assert "a" in table
