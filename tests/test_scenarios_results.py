"""Tests for scenario building, the System runner, and RunResult."""

import pytest

from repro.core.policy import PolicySpec
from repro.experiments.results import RunResult
from repro.experiments.scenarios import (
    Scenario,
    corun_scenario,
    mixed_io_scenario,
    solo_io_scenario,
    solo_scenario,
)
from repro.sim.time import ms
from repro.workloads.cpu_bound import SwaptionsWorkload


class TestScenarioBuilding:
    def test_solo_scenario_shape(self):
        scenario = solo_scenario("gmake")
        assert len(scenario.vms) == 1
        assert scenario.vms[0].vcpus == 12

    def test_corun_scenario_shape(self):
        scenario = corun_scenario("gmake")
        assert [vm.name for vm in scenario.vms] == ["vm1", "vm2"]
        assert scenario.vms[1].workloads[0].kind == "swaptions"

    def test_mixed_io_pins_both_vms(self):
        scenario = mixed_io_scenario()
        assert all(vm.pin_to == (0,) for vm in scenario.vms)
        assert all(vm.vcpus == 1 for vm in scenario.vms)

    def test_build_installs_workloads(self):
        system = corun_scenario("gmake").build()
        assert set(system.workloads) == {"vm1:gmake", "vm2:swaptions"}

    def test_build_applies_policy(self):
        system = corun_scenario("gmake", policy=PolicySpec.static(2)).build()
        assert system.hv.micro_core_count() == 2

    def test_workload_spec_instance_passthrough(self):
        workload = SwaptionsWorkload(name="mine")
        scenario = Scenario(name="custom")
        scenario.add_vm("vm1", vcpus=2).add_instance(workload)
        system = scenario.build()
        assert system.workloads["vm1:mine"] is workload

    def test_custom_vm_weights(self):
        scenario = Scenario()
        scenario.add_vm("heavy", vcpus=1, weight=512).add("lookbusy")
        scenario.add_vm("light", vcpus=1, weight=128).add("lookbusy")
        system = scenario.build()
        weights = {d.name: d.weight for d in system.hv.domains}
        assert weights == {"heavy": 512, "light": 128}

    def test_seed_controls_workload_randomness(self):
        r1 = solo_scenario("gmake", seed=7).build().run(ms(30))
        r2 = solo_scenario("gmake", seed=7).build().run(ms(30))
        r3 = solo_scenario("gmake", seed=8).build().run(ms(30))
        assert r1.rate("gmake") == r2.rate("gmake")
        assert r1.rate("gmake") != r3.rate("gmake")


class TestSystemRun:
    def test_run_collects_result(self):
        result = solo_scenario("gmake").build().run(ms(30))
        assert isinstance(result, RunResult)
        assert result.rate("gmake") > 0
        assert result.duration_ns == ms(30)

    def test_run_continues_incrementally(self):
        system = solo_scenario("gmake").build()
        system.run(ms(20))
        before = system.sim.now
        system.run(ms(20))
        assert system.sim.now == before + ms(20)

    def test_warmup_discards_measurements(self):
        cold = solo_scenario("gmake").build().run(ms(50))
        warm = solo_scenario("gmake").build().run(ms(50), warmup_ns=ms(50))
        # Warm run measures steady state only; progress counted over the
        # same window length.
        assert warm.rate("gmake") > 0
        assert abs(warm.rate("gmake") - cold.rate("gmake")) / cold.rate("gmake") < 0.5

    def test_reset_measurements_zeroes_state(self):
        system = corun_scenario("gmake").build()
        system.run(ms(40))
        system.reset_measurements()
        assert system.workloads["vm1:gmake"].progress() == 0
        assert system.hv.stats.counters.get("yield") == 0
        result = system.result(ms(1))
        assert result.total_yields() == 0


class TestRunResult:
    def _result(self):
        return corun_scenario("gmake").build().run(ms(40))

    def test_workload_lookup_by_suffix(self):
        result = self._result()
        assert result.workload("gmake").key == "vm1:gmake"

    def test_workload_lookup_unknown(self):
        result = self._result()
        with pytest.raises(KeyError):
            result.workload("nope")

    def test_domain_yields_present(self):
        result = self._result()
        assert set(result.domain_yields) == {"vm1", "vm2"}
        for causes in result.domain_yields.values():
            assert set(causes) == {"ipi", "spinlock", "halt", "other"}

    def test_total_yields_sum(self):
        result = self._result()
        assert result.total_yields() >= result.total_yields("vm1")

    def test_utilization_bounded(self):
        result = self._result()
        assert 0.0 <= result.utilization <= 1.0

    def test_io_scenarios_report_flow_extras(self):
        result = solo_io_scenario().build().run(ms(60))
        extra = result.workload("iperf").extra
        assert {"throughput_mbps", "jitter_ms", "packets", "dropped"} <= set(extra)
