"""Serial, parallel, and cache-replayed execution must be bit-identical.

The whole point of the job-plan refactor is that an experiment's result
is a pure function of its job specs: the same plan must reduce to the
same result whether it ran inline, fanned out over worker processes, or
replayed from the on-disk cache.
"""

import json

import pytest

from repro.experiments import fig4, table1
from repro.runner import execute
from repro.runner import executor as executor_mod

SCALE = 0.02  # clamp every duration to the 10 ms floor — fast but real


def _norm(value):
    """Canonical JSON text (tuples and lists compare equal)."""

    def convert(x):
        if isinstance(x, dict):
            return {str(k): convert(v) for k, v in x.items()}
        if isinstance(x, (list, tuple)):
            return [convert(v) for v in x]
        return x

    return json.dumps(convert(value), sort_keys=True)


@pytest.fixture
def small_fig4_plan():
    return fig4.plan(seed=11, scale_override=SCALE, workloads=("gmake",), core_counts=(0, 1))


@pytest.fixture
def small_table1_plan():
    return table1.plan(seed=11, scale_override=SCALE, schemes=("baseline", "microsliced"))


class TestTriPathIdentity:
    def test_fig4_serial_parallel_cache_identical(self, small_fig4_plan, tmp_path):
        serial = fig4.reduce(execute(small_fig4_plan, workers=1, cache=False))
        parallel = fig4.reduce(execute(small_fig4_plan, workers=4, cache=False))
        cold = fig4.reduce(
            execute(small_fig4_plan, workers=1, cache=True, cache_dir=tmp_path)
        )
        warm = fig4.reduce(
            execute(small_fig4_plan, workers=1, cache=True, cache_dir=tmp_path)
        )
        assert _norm(serial) == _norm(parallel)
        assert _norm(serial) == _norm(cold)
        assert _norm(serial) == _norm(warm)

    def test_table1_serial_parallel_cache_identical(self, small_table1_plan, tmp_path):
        serial = table1.reduce(execute(small_table1_plan, workers=1, cache=False))
        parallel = table1.reduce(execute(small_table1_plan, workers=4, cache=False))
        cold = table1.reduce(
            execute(small_table1_plan, workers=1, cache=True, cache_dir=tmp_path)
        )
        warm = table1.reduce(
            execute(small_table1_plan, workers=1, cache=True, cache_dir=tmp_path)
        )
        assert _norm(serial) == _norm(parallel)
        assert _norm(serial) == _norm(cold)
        assert _norm(serial) == _norm(warm)

    def test_warm_cache_never_resimulates(self, small_fig4_plan, tmp_path, monkeypatch):
        cold = execute(small_fig4_plan, workers=1, cache=True, cache_dir=tmp_path)

        def boom(_job):
            raise AssertionError("cache hit expected — run_job must not be called")

        monkeypatch.setattr(executor_mod, "run_job", boom)
        warm = execute(small_fig4_plan, workers=1, cache=True, cache_dir=tmp_path)
        assert sorted(warm) == sorted(cold)
        for tag in cold:
            assert _norm(warm[tag].to_dict()) == _norm(cold[tag].to_dict())


class TestReduceOrderIndependence:
    def test_fig4_reduce_handles_completion_order(self, small_fig4_plan):
        # An executor returning results in completion order (baseline
        # last) must reduce identically to plan order.
        results = execute(small_fig4_plan, workers=1, cache=False)
        reversed_results = dict(reversed(list(results.items())))
        assert _norm(fig4.reduce(results)) == _norm(fig4.reduce(reversed_results))


class TestPlanHygiene:
    def test_duplicate_tags_rejected(self, small_fig4_plan):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            execute(small_fig4_plan + [small_fig4_plan[0]], workers=1, cache=False)

    def test_plan_jobs_are_picklable(self, small_table1_plan):
        import pickle

        for job in small_table1_plan:
            clone = pickle.loads(pickle.dumps(job))
            assert clone.canonical() == job.canonical()
