"""Tests for Algorithm 1 (adaptive controller) and the policy specs."""

import pytest

from repro.core.adaptive import AdaptiveController
from repro.core.microslice import MicroSliceEngine
from repro.core.policy import BASELINE, DYNAMIC, STATIC, PolicySpec
from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.time import ms


class _FakeStats:
    def __init__(self, windows):
        self.windows = list(windows)
        self.marks = 0

    def mark_window(self):
        self.marks += 1

    def window_events(self):
        if self.windows:
            return self.windows.pop(0)
        return {"ipi": 0, "ple": 0, "irq": 0}


class _FakeHv:
    def __init__(self, windows):
        self.sim = Simulator()
        self.stats = _FakeStats(windows)
        self.core_history = []

    def set_micro_cores(self, count):
        self.core_history.append((self.sim.now, count))


def _drive(windows, until_ms=3000, **kwargs):
    hv = _FakeHv(windows)
    controller = AdaptiveController(**kwargs)
    controller.start(hv)
    hv.sim.run(until=ms(until_ms))
    return hv, controller


def _events(ipi=0, ple=0, irq=0):
    return {"ipi": ipi, "ple": ple, "irq": irq}


class TestAlgorithm1:
    def test_idle_system_stays_at_zero(self):
        hv, controller = _drive([_events()] * 50)
        assert all(count == 0 for _t, count in hv.core_history)
        assert controller.num_ucores == 0

    def test_idle_system_uses_epoch_interval(self):
        hv, controller = _drive([_events()] * 50, until_ms=2000)
        # One profile window (10 ms), then epoch-length sleeps: far
        # fewer decisions than profiling continuously would make.
        assert len(hv.core_history) <= 4

    def test_ple_dominant_early_terminates_at_one_core(self):
        windows = [_events(ple=500), _events(ple=450)]
        hv, controller = _drive(windows, until_ms=50)
        # First profile window sees PLE-dominant load -> 1 core, stop.
        assert controller.num_ucores == 1
        assert not controller.profile_mode

    def test_irq_dominant_early_terminates_at_one_core(self):
        windows = [_events(irq=300)]
        hv, controller = _drive(windows, until_ms=50)
        assert controller.num_ucores == 1

    def test_ipi_dominant_sweeps_to_limit(self):
        windows = [
            _events(ipi=1000),           # at 0 cores -> urgent, ipi dominant
            _events(ipi=800),            # at 1
            _events(ipi=300),            # at 2
            _events(ipi=500),            # at 3 (limit) -> pick best (2)
        ]
        hv, controller = _drive(windows, until_ms=60, limit=3)
        assert controller.num_ucores == 2
        assert not controller.profile_mode
        counts = [c for _t, c in hv.core_history]
        assert counts[:5] == [0, 1, 2, 3, 2]

    def test_best_choice_prefers_fewer_cores_on_tie(self):
        windows = [
            _events(ipi=1000),
            _events(ipi=400),
            _events(ipi=400),
            _events(ipi=400),
        ]
        hv, controller = _drive(windows, until_ms=60, limit=3)
        assert controller.num_ucores == 1

    def test_reprofiles_each_epoch(self):
        windows = [_events(ple=100)] * 10
        hv, controller = _drive(windows, until_ms=500, epoch_interval=ms(100))
        settles = [c for _t, c in hv.core_history if c == 1]
        assert len(settles) >= 2  # settled at 1 core in multiple epochs

    def test_urgent_threshold_filters_noise(self):
        windows = [_events(ple=1)] * 20
        hv, controller = _drive(windows, until_ms=100, urgent_threshold=5)
        assert controller.num_ucores == 0

    def test_decision_history_recorded(self):
        hv, controller = _drive([_events(ple=100)], until_ms=50)
        assert controller.decisions
        assert controller.decisions[0][1] == 0


class TestPolicySpec:
    def test_baseline_installs_null_policy(self):
        from helpers import make_hv

        _sim, hv = make_hv(num_pcpus=2)
        assert PolicySpec.baseline().install(hv) is None
        assert not hv.policy.active

    def test_static_requires_core_count(self):
        with pytest.raises(ConfigError):
            PolicySpec.static(0)

    def test_static_installs_engine_and_cores(self):
        from helpers import make_hv

        sim, hv = make_hv(num_pcpus=4)
        engine = PolicySpec.static(2).install(hv)
        assert isinstance(engine, MicroSliceEngine)
        assert hv.micro_core_count() == 2

    def test_dynamic_attaches_controller(self):
        from helpers import make_hv

        _sim, hv = make_hv(num_pcpus=4)
        engine = PolicySpec.dynamic(limit=2).install(hv)
        assert isinstance(engine.controller, AdaptiveController)
        assert engine.controller.limit == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            PolicySpec("bogus")

    def test_modes_exposed(self):
        assert PolicySpec.baseline().mode == BASELINE
        assert PolicySpec.static(1).mode == STATIC
        assert PolicySpec.dynamic().mode == DYNAMIC


class TestMicroSliceEngineHooks:
    def _system(self):
        from helpers import make_domain, make_hv, spawn_task, spin_program

        sim, hv = make_hv(num_pcpus=3)
        vm1 = make_domain(hv, name="vm1", vcpus=2)
        vm2 = make_domain(hv, name="vm2", vcpus=2)
        for vcpu in vm1.vcpus + vm2.vcpus:
            spawn_task(vcpu, spin_program())
        engine = PolicySpec.static(1).install(hv)
        hv.start()
        sim.run(until=ms(2))
        # Guarantee at least one queued vm1 vCPU: preempt any vm1 vCPU
        # currently running in the normal pool and let the deschedule
        # land.
        for _ in range(10):
            queued = [v for v in vm1.vcpus if v.state == "runnable" and v.pcpu is None
                      and v.pool is hv.normal_pool]
            if queued:
                break
            for vcpu in vm1.vcpus:
                if vcpu.running and vcpu.pcpu.pool is hv.normal_pool:
                    vcpu.pcpu.request_preempt()
            sim.run(until=sim.now + ms(1))
        return sim, hv, vm1, engine

    def test_on_yield_accelerates_critical_sibling(self):
        sim, hv, vm1, engine = self._system()
        queued = [v for v in vm1.vcpus if v.state == "runnable" and v.pcpu is None]
        assert queued, "setup must leave a queued vm1 vCPU"
        other = [v for v in vm1.vcpus if v is not queued[0]][0]
        queued[0].current_symbol = "get_page_from_freelist"
        engine.on_yield(other, "spinlock", None)
        assert queued[0].pool is hv.micro_pool

    def test_on_yield_ignores_user_siblings(self):
        sim, hv, vm1, engine = self._system()
        queued = [v for v in vm1.vcpus if v.state == "runnable" and v.pcpu is None]
        assert queued, "setup must leave a queued vm1 vCPU"
        other = [v for v in vm1.vcpus if v is not queued[0]][0]
        queued[0].current_symbol = None
        engine.on_yield(other, "spinlock", None)
        assert queued[0].pool is hv.normal_pool

    def test_on_vipi_only_accelerates_resched(self):
        sim, hv, vm1, engine = self._system()
        queued = [v for v in vm1.vcpus if v.state == "runnable" and v.pcpu is None]
        assert queued, "setup must leave a queued vm1 vCPU"

        class _Op:
            kind = "tlb"

        engine.on_vipi(None, queued[0], _Op())
        assert queued[0].pool is hv.normal_pool
        _Op.kind = "resched"
        engine.on_vipi(None, queued[0], _Op())
        assert queued[0].pool is hv.micro_pool

    def test_on_virq_accelerates_preempted_recipient(self):
        sim, hv, vm1, engine = self._system()
        queued = [v for v in vm1.vcpus if v.state == "runnable" and v.pcpu is None]
        assert queued, "setup must leave a queued vm1 vCPU"
        engine.on_virq(queued[0])
        assert queued[0].pool is hv.micro_pool

    def test_hooks_noop_without_micro_cores(self):
        from helpers import make_domain, make_hv, spawn_task, spin_program

        sim, hv = make_hv(num_pcpus=2)
        vm1 = make_domain(hv, name="vm1", vcpus=2)
        for vcpu in vm1.vcpus:
            spawn_task(vcpu, spin_program())
        engine = MicroSliceEngine()
        hv.set_policy(engine)
        hv.start()
        sim.run(until=ms(1))
        engine.on_yield(vm1.vcpus[0], "spinlock", None)
        assert hv.stats.counters.get("migrations") == 0
