"""Tests for the prior-work comparator policies and micro-pool
residency."""

from repro.core.comparators import VTrsPolicy, VTurboPolicy
from repro.experiments.scenarios import corun_scenario, mixed_io_scenario
from repro.sim.time import ms

from helpers import make_domain, make_hv, spawn_task, spin_program


class TestResidency:
    def test_resident_vcpu_stays_in_micro_pool(self):
        sim, hv = make_hv(num_pcpus=3)
        domain = make_domain(hv, vcpus=1)
        spawn_task(domain.vcpus[0], spin_program(chunk_us=10))
        hv.start()
        hv.set_micro_cores(1)
        sim.run(until=ms(2))
        vcpu = domain.vcpus[0]
        assert hv.make_micro_resident(vcpu)
        # A running vCPU is pulled over at its next deschedule (up to a
        # full 30 ms normal slice away).
        sim.run(until=sim.now + ms(70))
        # Through many 100 us slices it never bounced home.
        assert vcpu.pool is hv.micro_pool
        assert vcpu.micro_resident
        assert vcpu.total_ran > ms(1)

    def test_release_returns_vcpu_to_normal_pool(self):
        sim, hv = make_hv(num_pcpus=3)
        domain = make_domain(hv, vcpus=1)
        spawn_task(domain.vcpus[0], spin_program(chunk_us=10))
        hv.start()
        hv.set_micro_cores(1)
        sim.run(until=ms(2))
        vcpu = domain.vcpus[0]
        hv.make_micro_resident(vcpu)
        sim.run(until=sim.now + ms(70))
        hv.release_micro_resident(vcpu)
        sim.run(until=sim.now + ms(5))
        assert vcpu.pool is hv.normal_pool
        assert not vcpu.micro_resident

    def test_resident_blocked_vcpu_wakes_into_micro_pool(self):
        sim, hv = make_hv(num_pcpus=3)
        domain = make_domain(hv, vcpus=1)
        hv.start()
        hv.set_micro_cores(1)
        sim.run(until=ms(2))  # idle guest blocks
        vcpu = domain.vcpus[0]
        assert vcpu.state == "blocked"
        hv.make_micro_resident(vcpu)
        hv.wake_vcpu(vcpu)
        assert vcpu.pool is hv.micro_pool


class TestVTurbo:
    def test_pins_io_vcpu_to_turbo_core(self):
        scenario = mixed_io_scenario(seed=1)
        system = scenario.build()
        system.hv.set_policy(VTurboPolicy(turbo_cores=1))
        system.run(ms(50))
        io_vcpu = system.hv.domains[0].kernel.net.irq_vcpu
        assert io_vcpu.micro_resident

    def test_improves_mixed_io_throughput(self):
        base = mixed_io_scenario(seed=1).build()
        base_io = base.run(ms(200), warmup_ns=ms(100)).workload("iperf").extra

        turbo = mixed_io_scenario(seed=1).build()
        turbo.hv.set_policy(VTurboPolicy(turbo_cores=1))
        turbo_io = turbo.run(ms(200), warmup_ns=ms(100)).workload("iperf").extra
        assert turbo_io["throughput_mbps"] > base_io["throughput_mbps"]

    def test_no_help_without_nics(self):
        system = corun_scenario("exim", seed=1).build()
        system.hv.set_policy(VTurboPolicy(turbo_cores=1))
        system.run(ms(50))
        assert system.hv.stats.counters.get("migrations") == 0
        assert not any(
            v.micro_resident for d in system.hv.domains for v in d.vcpus
        )


class TestVTrs:
    def test_classifies_noisy_vcpus_short(self):
        system = corun_scenario("vips", seed=1).build()
        policy = VTrsPolicy(pool_cores=2, epoch=ms(20), short_threshold=10)
        system.hv.set_policy(policy)
        system.run(ms(200))
        assert policy.classifications, "no vCPU was ever classified short"
        assert any(label == "short" for _t, _n, label in policy.classifications)

    def test_quiet_system_classifies_nothing(self):
        system = corun_scenario("swaptions", corunner_kind="swaptions", seed=1).build()
        policy = VTrsPolicy(pool_cores=1, epoch=ms(20), short_threshold=10)
        system.hv.set_policy(policy)
        system.run(ms(100))
        assert not any(label == "short" for _t, _n, label in policy.classifications)

    def test_reclassification_releases_idle_vcpus(self):
        sim, hv = make_hv(num_pcpus=3)
        domain = make_domain(hv, vcpus=2)
        for vcpu in domain.vcpus:
            spawn_task(vcpu, spin_program())
        policy = VTrsPolicy(pool_cores=1, epoch=ms(10), short_threshold=5)
        hv.set_policy(policy)
        hv.start()
        # Synthesise one noisy epoch, then silence.
        for _ in range(20):
            policy.on_yield(domain.vcpus[0], "spinlock", None)
        sim.run(until=ms(15))
        assert domain.vcpus[0].micro_resident
        sim.run(until=ms(40))
        assert not domain.vcpus[0].micro_resident
