"""Tracing integration: the xentrace-style buffer captures scheduling
decisions during real scenario runs."""

from repro.core.policy import PolicySpec
from repro.experiments.scenarios import corun_scenario
from repro.sim.time import ms


class TestScenarioTracing:
    def test_trace_disabled_by_default(self):
        system = corun_scenario("gmake").build()
        system.run(ms(30))
        assert len(system.tracer) == 0

    def test_deschedule_events_recorded(self):
        scenario = corun_scenario("gmake")
        scenario.trace = True
        system = scenario.build()
        system.run(ms(60))
        records = system.tracer.find("deschedule")
        assert records
        reasons = {r.detail["reason"] for r in records}
        assert "slice" in reasons or "preempt" in reasons

    def test_accelerate_events_recorded_with_policy(self):
        scenario = corun_scenario("exim", policy=PolicySpec.static(1))
        scenario.trace = True
        system = scenario.build()
        system.run(ms(150))
        accelerations = system.tracer.find("accelerate")
        assert accelerations
        # Every record names a vm1 or vm2 vCPU.
        assert all(r.detail["vcpu"].startswith("vm") for r in accelerations)

    def test_trace_times_monotonic(self):
        scenario = corun_scenario("gmake")
        scenario.trace = True
        system = scenario.build()
        system.run(ms(60))
        times = [r.time for r in system.tracer]
        assert times == sorted(times)
