"""Runner-stack telemetry: registry semantics, Prometheus export,
instrumentation coverage (cache / cost model / pool / engine), live
progress, persistence, and the machine-readable analyze output.

The load-bearing contract: telemetry is a write-only side channel.
Deterministic metrics (counts) must be byte-identical across identical
runs; wall-derived metrics are namespaced by suffix (``_seconds``,
``_us``, ``_pct``) and excluded from that comparison mechanically.
"""

import io
import json

import pytest

from repro import cli
from repro.obs import analyze, telemetry
from repro.runner import SimJob, cache, costmodel, execute
from repro.sim.time import ms


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts from a zeroed, enabled process registry (other
    tests in the session legitimately bump the shared counters)."""
    telemetry.reset()
    telemetry.set_enabled(True)
    yield
    telemetry.reset()


def _job(**overrides):
    spec = dict(
        tag="point",
        scenario="solo",
        scenario_kwargs={"workload_kind": "gmake"},
        seed=7,
        duration_ns=ms(12),
        warmup_ns=0,
    )
    spec.update(overrides)
    return SimJob(**spec)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = telemetry.Registry(enabled=True)
        reg.counter("a.count").inc()
        reg.counter("a.count").inc(3)
        reg.gauge("a.size").set(2)
        reg.gauge("a.size").max(5)
        reg.gauge("a.size").max(1)  # lower: ignored
        reg.observe("a.lat_us", 100)
        snap = reg.snapshot()
        assert snap["counters"]["a.count"] == 4
        assert snap["gauges"]["a.size"] == 5
        assert snap["histograms"]["a.lat_us"]["count"] == 1
        assert snap["meta"]["format"] == telemetry.FORMAT

    def test_disabled_registry_records_nothing(self):
        reg = telemetry.Registry(enabled=False)
        reg.counter("a.count").inc()
        reg.gauge("a.size").set(9)
        reg.observe("a.lat_us", 100)
        snap = reg.snapshot()
        assert snap["counters"]["a.count"] == 0
        assert snap["gauges"]["a.size"] == 0
        # A disabled observe never even creates the histogram.
        assert "a.lat_us" not in snap["histograms"]

    def test_invalid_metric_name_rejected(self):
        reg = telemetry.Registry(enabled=True)
        with pytest.raises(ValueError):
            reg.counter("has spaces")
        with pytest.raises(ValueError):
            reg.histogram("")

    def test_wall_suffix_classification(self):
        assert telemetry.is_wall("engine.job_wall_seconds")
        assert telemetry.is_wall("pool.queue_wait_us")
        assert telemetry.is_wall("costmodel.x.err_pct")
        assert not telemetry.is_wall("cache.hits")

    def test_snapshot_can_exclude_wall_metrics(self):
        reg = telemetry.Registry(enabled=True)
        reg.counter("a.count").inc()
        reg.counter("a.busy_seconds").inc(1.5)
        reg.observe("a.lat_us", 10)
        snap = reg.snapshot(include_wall=False)
        assert "a.count" in snap["counters"]
        assert "a.busy_seconds" not in snap["counters"]
        assert "a.lat_us" not in snap["histograms"]

    def test_merge_is_order_insensitive(self):
        def delta(seed):
            reg = telemetry.Registry(enabled=True)
            reg.counter("jobs").inc(seed)
            reg.gauge("size").set(seed)
            for value in range(seed, seed + 4):
                reg.observe("lat_us", value * 7)
            return reg.snapshot()

        a, b = delta(3), delta(11)
        left = telemetry.Registry(enabled=True)
        right = telemetry.Registry(enabled=True)
        left.merge(a)
        left.merge(b)
        right.merge(b)
        right.merge(a)
        assert left.dumps() == right.dumps()
        assert left.snapshot()["counters"]["jobs"] == 14
        assert left.snapshot()["gauges"]["size"] == 11  # max, not sum

    def test_histogram_totals_merge_exactly(self):
        reg = telemetry.Registry(enabled=True)
        values = [3, 5, 7, 1000003]
        for value in values:
            reg.observe("lat_us", value)
        shipped = reg.take_snapshot()
        parent = telemetry.Registry(enabled=True)
        parent.merge(shipped)
        assert parent.snapshot()["histograms"]["lat_us"]["total"] == sum(values)

    def test_take_snapshot_resets_but_keeps_handles(self):
        reg = telemetry.Registry(enabled=True)
        handle = reg.counter("jobs")
        handle.inc(5)
        first = reg.take_snapshot()
        assert first["counters"]["jobs"] == 5
        handle.inc(2)  # the cached handle must still be live
        assert reg.snapshot()["counters"]["jobs"] == 2


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestProm:
    def test_prom_name_sanitised(self):
        name = telemetry.prom_name("costmodel.corun|baseline|plain|healthy.observations")
        assert name == "repro_costmodel_corun_baseline_plain_healthy_observations"

    def test_render_validates_against_grammar(self):
        reg = telemetry.Registry(enabled=True)
        reg.counter("cache.hits").inc(7)
        reg.gauge("pool.size").set(2)
        for value in (3, 50, 900, 70000):
            reg.observe("pool.queue_wait_us", value)
        text = telemetry.render_prom(reg.snapshot())
        assert telemetry.validate_prom(text) == []
        assert "# TYPE repro_cache_hits counter" in text
        assert 'repro_pool_queue_wait_us_bucket{le="+Inf"} 4' in text
        assert "repro_pool_queue_wait_us_sum 70953" in text

    def test_validator_catches_problems(self):
        assert telemetry.validate_prom("repro_orphan 1") != []
        broken_hist = "\n".join(
            [
                "# TYPE repro_lat histogram",
                'repro_lat_bucket{le="1"} 5',
                'repro_lat_bucket{le="2"} 3',  # not cumulative
            ]
        )
        problems = telemetry.validate_prom(broken_hist)
        assert any("cumulative" in p for p in problems)
        assert any("+Inf" in p for p in problems)
        assert telemetry.validate_prom("!! not a metric line") != []


# ----------------------------------------------------------------------
# persistence (`repro telemetry` outlives the run process)
# ----------------------------------------------------------------------
class TestPersistence:
    def test_persist_load_roundtrip(self, tmp_path):
        telemetry.counter("cache.hits").inc(3)
        path = telemetry.persist(cache_dir=tmp_path)
        assert path is not None
        loaded = telemetry.load_persisted(cache_dir=tmp_path)
        assert loaded["counters"]["cache.hits"] == 3

    def test_persist_disabled_is_a_noop(self, tmp_path):
        telemetry.set_enabled(False)
        assert telemetry.persist(cache_dir=tmp_path) is None
        assert telemetry.load_persisted(cache_dir=tmp_path) is None

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert telemetry.load_persisted(cache_dir=tmp_path) is None
        target = telemetry.snapshot_path(tmp_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("{not json", encoding="utf-8")
        assert telemetry.load_persisted(cache_dir=tmp_path) is None


# ----------------------------------------------------------------------
# cache instrumentation (the formerly warn-only paths now count)
# ----------------------------------------------------------------------
class TestCacheTelemetry:
    def test_hits_misses_and_bytes(self, tmp_path):
        job = _job()
        key = cache.job_key(job)
        assert cache.load(key, tmp_path) is None
        cache.store(key, job, {"payload": True}, tmp_path)
        assert cache.load(key, tmp_path) == {"payload": True}
        snap = telemetry.snapshot()
        assert snap["counters"]["cache.misses"] == 1
        assert snap["counters"]["cache.hits"] == 1
        assert snap["counters"]["cache.stores"] == 1
        assert snap["counters"]["cache.hit_bytes"] > 0
        assert snap["counters"]["cache.hit_bytes"] == snap["counters"]["cache.store_bytes"]

    def test_corrupt_and_poisoned_entries_counted(self, tmp_path):
        key = cache.job_key(_job())
        tmp_path.mkdir(exist_ok=True)
        cache.entry_path(key, tmp_path).write_text("{torn", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.load(key, tmp_path) is None
        cache.entry_path(key, tmp_path).write_text(
            json.dumps({"format": cache.FORMAT, "key": "wrong", "result": {}}),
            encoding="utf-8",
        )
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert cache.load(key, tmp_path) is None
        snap = telemetry.snapshot()
        assert snap["counters"]["cache.corrupt_entries"] == 1
        assert snap["counters"]["cache.poisoned_entries"] == 1
        assert snap["counters"]["cache.misses"] == 2

    def test_sweep_counts_and_latch_reset(self, tmp_path):
        job = _job()
        tmp_path.mkdir(exist_ok=True)
        stale = tmp_path / "deadbeef.tmp.12345"
        stale.write_text("leak", encoding="utf-8")
        removed = cache.sweep_stale_tmp(tmp_path, max_age_seconds=0)
        assert removed == 1
        snap = telemetry.snapshot()
        assert snap["counters"]["cache.sweep_runs"] == 1
        assert snap["counters"]["cache.sweep_removed"] == 1

        # The once-per-process latch: the first store sweeps, later
        # stores do not — until the latch is reset explicitly.
        cache.reset_sweep_latch()
        cache.store(cache.job_key(job), job, {"n": 1}, tmp_path)
        runs_after_first = telemetry.snapshot()["counters"]["cache.sweep_runs"]
        cache.store(cache.job_key(_job(seed=8)), _job(seed=8), {"n": 2}, tmp_path)
        assert telemetry.snapshot()["counters"]["cache.sweep_runs"] == runs_after_first
        cache.reset_sweep_latch()
        cache.store(cache.job_key(_job(seed=9)), _job(seed=9), {"n": 3}, tmp_path)
        assert telemetry.snapshot()["counters"]["cache.sweep_runs"] == runs_after_first + 1


# ----------------------------------------------------------------------
# cost-model prediction-error tracking
# ----------------------------------------------------------------------
class TestCostModelTelemetry:
    def test_observation_counter_and_error_histograms(self):
        model = costmodel.CostModel()
        job = _job()
        key = costmodel.feature(job)
        model.observe(job, 0.25)
        model.observe(job, 0.30)
        snap = telemetry.snapshot()
        assert snap["counters"]["costmodel.%s.observations" % key] == 2
        assert snap["histograms"]["costmodel.%s.abs_err_us" % key]["count"] == 2
        assert snap["histograms"]["costmodel.%s.err_pct" % key]["count"] == 2
        # Error metrics are wall-derived by name; the counter is not.
        assert telemetry.is_wall("costmodel.%s.abs_err_us" % key)
        assert not telemetry.is_wall("costmodel.%s.observations" % key)

    def test_nonpositive_walltime_not_observed(self):
        model = costmodel.CostModel()
        model.observe(_job(), 0.0)
        key = costmodel.feature(_job())
        # The handle may exist (zeroed) from earlier tests in this
        # process; what matters is that nothing was counted.
        snap = telemetry.snapshot()
        assert snap["counters"].get("costmodel.%s.observations" % key, 0) == 0


# ----------------------------------------------------------------------
# run-level coverage: determinism, pool merge, progress
# ----------------------------------------------------------------------
def _plan():
    return [_job(tag="a"), _job(tag="b", seed=8)]


class TestRunTelemetry:
    def test_snapshot_deterministic_modulo_wall(self, tmp_path):
        execute(_plan(), workers=1, cache=False, cache_dir=tmp_path)
        first = telemetry.REGISTRY.dumps(include_wall=False)
        full = telemetry.snapshot()
        telemetry.reset()
        execute(_plan(), workers=1, cache=False, cache_dir=tmp_path)
        second = telemetry.REGISTRY.dumps(include_wall=False)
        assert first == second
        # Wall metrics exist but are excluded from the contract.
        assert "engine.job_wall_seconds" in full["counters"]
        assert "engine.job_wall_seconds" not in json.loads(first)["counters"]

    def test_engine_counters_after_serial_run(self, tmp_path):
        execute(_plan(), workers=1, cache=False, cache_dir=tmp_path)
        snap = telemetry.snapshot()
        assert snap["counters"]["engine.jobs_simulated"] == 2
        assert snap["counters"]["engine.events_simulated"] > 0
        assert snap["counters"]["runner.batches"] == 1
        assert snap["counters"]["runner.jobs_planned"] == 2
        assert snap["counters"]["runner.jobs_unique"] == 2

    def test_pooled_run_merges_worker_deltas(self, tmp_path):
        execute(_plan(), workers=2, cache=False, cache_dir=tmp_path)
        snap = telemetry.snapshot()
        # The simulations happened in worker processes; their registry
        # deltas came back over the result pipe and merged here.
        assert snap["counters"]["engine.jobs_simulated"] == 2
        assert snap["counters"]["engine.events_simulated"] > 0
        assert snap["counters"]["pool.jobs_completed"] == 2
        assert snap["counters"]["pool.jobs_dispatched"] == 2
        assert snap["counters"]["pool.jobs_failed"] == 0

    def test_run_persists_snapshot_for_cli(self, tmp_path):
        execute(_plan(), workers=1, cache=False, cache_dir=tmp_path)
        loaded = telemetry.load_persisted(cache_dir=tmp_path)
        assert loaded is not None
        assert loaded["counters"]["engine.jobs_simulated"] == 2

    def test_progress_events_cold_and_warm(self, tmp_path):
        events = []

        def progress(event, tag, done, total):
            events.append((event, tag, done, total))

        execute(_plan(), workers=1, cache=True, cache_dir=tmp_path, progress=progress)
        assert [e[0] for e in events] == ["start", "done", "start", "done"]
        assert events[-1][2:] == (2, 2)  # done == total at the end
        events.clear()
        execute(_plan(), workers=1, cache=True, cache_dir=tmp_path, progress=progress)
        assert [e[0] for e in events] == ["hit", "hit"]
        assert events[-1][2:] == (2, 2)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestCli:
    def test_telemetry_json(self, tmp_path, capsys):
        telemetry.counter("cache.hits").inc(5)
        path = telemetry.persist(cache_dir=tmp_path)
        assert cli.main(["telemetry", "--file", str(path)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["counters"]["cache.hits"] == 5

    def test_telemetry_prom(self, tmp_path, capsys):
        telemetry.counter("cache.hits").inc(5)
        telemetry.observe("pool.queue_wait_us", 42)
        path = telemetry.persist(cache_dir=tmp_path)
        assert cli.main(["telemetry", "--file", str(path), "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert telemetry.validate_prom(text) == []
        assert "repro_cache_hits 5" in text

    def test_telemetry_missing_snapshot_fails(self, tmp_path, capsys):
        assert cli.main(["telemetry", "--file", str(tmp_path / "nope.json")]) == 2
        assert "no telemetry snapshot" in capsys.readouterr().err

    def test_progress_line_non_tty(self):
        stream = io.StringIO()
        line = cli._ProgressLine(stream=stream)
        line("start", "job-a", 0, 3)   # suppressed off-TTY
        line("done", "job-a", 1, 3)
        line("hit", "job-b", 2, 3)
        line.close()
        out = stream.getvalue().splitlines()
        assert out == ["[1/3] done      job-a", "[2/3] cache hit job-b"]

    def test_progress_line_tty_rewrites_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        line = cli._ProgressLine(stream=stream)
        line("start", "job-a", 0, 2)
        line("done", "job-a", 1, 2)
        line.close()
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# repro analyze --json
# ----------------------------------------------------------------------
class TestAnalyzeJson:
    def _trace_file(self, tmp_path):
        from repro.experiments import fig7
        from repro.sim.trace import write_jsonl

        jobs = fig7.plan(seed=11, scale_override=0.02, workloads=("dedup",))
        for job in jobs:
            job.trace = {"kinds": None}
        results = execute(jobs, workers=1, cache=False, cache_dir=tmp_path)
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), {tag: results[tag].trace for tag in sorted(results)})
        return path

    def test_report_dict_mirrors_analysis(self, tmp_path):
        path = self._trace_file(tmp_path)
        analyses = analyze.analyze_file(str(path))
        report = analyze.report_dict(analyses)
        assert sorted(report) == sorted(analyses)
        for job, data in report.items():
            assert data["event_counts"] == analyses[job].event_counts()
            assert data["meta"] is not None
            assert data["conservation_violations"] == []
            assert data["runstates"]
        # JSON-native and byte-stable for one input file.
        once = json.dumps(report, sort_keys=True)
        again = json.dumps(analyze.report_dict(analyze.analyze_file(str(path))),
                           sort_keys=True)
        assert once == again

    def test_diff_dict_identical_files(self, tmp_path):
        path = self._trace_file(tmp_path)
        diff = analyze.diff_dict(str(path), str(path))
        assert diff and all(deltas == {} for deltas in diff.values())

    def test_cli_analyze_json(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert cli.main(["analyze", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert all("event_counts" in data for data in report.values())
        assert cli.main(["analyze", str(path), "--json", "--diff", str(path)]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert all(deltas == {} for deltas in diff.values())
