"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_policy, build_parser, main
from repro.core.policy import BASELINE, DYNAMIC, STATIC
from repro.errors import ReproError


class TestPolicyParsing:
    def test_baseline(self):
        assert _parse_policy("baseline").mode == BASELINE

    def test_static(self):
        spec = _parse_policy("static:3")
        assert spec.mode == STATIC
        assert spec.micro_cores == 3

    def test_dynamic(self):
        assert _parse_policy("dynamic").mode == DYNAMIC

    def test_garbage_rejected(self):
        with pytest.raises(ReproError):
            _parse_policy("turbo")

    def test_static_without_count_rejected(self):
        with pytest.raises((ReproError, ValueError)):
            _parse_policy("static:")


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["run", "table2"],
            ["corun", "gmake", "--policy", "static:1"],
            ["solo", "exim"],
        ):
            assert parser.parse_args(argv) is not None

    def test_unknown_experiment_rejected_by_argparse(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "swaptions" in out

    def test_solo_run(self, capsys):
        assert main(["solo", "swaptions", "--duration-ms", "20"]) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out
        assert "yields by cause" in out

    def test_corun_with_policy(self, capsys):
        assert main(
            ["corun", "gmake", "--policy", "static:1", "--duration-ms", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "vm1:gmake" in out
        assert "micro-sliced cores at end: 1" in out

    def test_bad_policy_reports_error(self, capsys):
        code = main(["corun", "gmake", "--policy", "warp9", "--duration-ms", "10"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTraceAndAnalyze:
    def test_trace_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig7", "--trace", "--trace-out", "t.jsonl"])
        assert args.trace == "" and args.trace_out == "t.jsonl"
        args = parser.parse_args(["corun", "dedup", "--trace=yield,ipi_send"])
        assert args.trace == "yield,ipi_send"
        args = parser.parse_args(["solo", "exim", "--trace-kinds", "yield"])
        assert args.trace_kinds == "yield"
        assert parser.parse_args(["analyze", "t.jsonl", "--diff", "u.jsonl"]) is not None

    def test_scenario_trace_export_and_analyze(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["corun", "dedup", "--duration-ms", "20", "--trace",
             "--trace-out", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert path.exists()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runstate conservation: OK" in out
        assert "yield decomposition" in out
        assert main(["analyze", str(path), "--diff", str(path)]) == 0
        assert "identical event counts" in capsys.readouterr().out

    def test_analyze_truncated_trace_exits_nonzero(self, capsys, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text('{"kind": "meta"}\n{"kind": "yie', encoding="utf-8")
        assert main(["analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "malformed JSON" in err

    def test_analyze_missing_file_exits_nonzero(self, capsys):
        assert main(["analyze", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestSweepAndCompare:
    def test_sweep_prints_table(self, capsys):
        assert main(["sweep", "gmake", "--max-cores", "1", "--duration-ms", "40"]) == 0
        out = capsys.readouterr().out
        assert "Micro-sliced core sweep" in out
        assert "vs baseline" in out

    def test_compare_prints_three_policies(self, capsys):
        assert main(["compare", "gmake", "--duration-ms", "40"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "static:1" in out
        assert "dynamic" in out


class TestSharedSeedArgument:
    def test_every_sim_subcommand_takes_seed(self):
        parser = build_parser()
        for argv in (
            ["run", "table2"],
            ["corun", "gmake"],
            ["solo", "exim"],
            ["sweep", "gmake"],
            ["compare", "gmake"],
            ["fleet"],
        ):
            args = parser.parse_args(argv)
            assert args.seed == 42, argv
            args = parser.parse_args(argv + ["--seed", "7"])
            assert args.seed == 7, argv


class TestFleetCommand:
    _TINY = ["fleet", "--hosts", "2", "--epochs", "2", "--rate", "4",
             "--scale", "0.02", "--no-cache"]

    def test_list_enumerates_placements_and_fault_plans(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "placements:" in out
        assert "steal_aware" in out
        assert "fault plans:" in out
        assert "lossy-ipi" in out
        assert "fleet" in out  # the registered experiment

    def test_fleet_table_output(self, capsys):
        assert main(self._TINY + ["--policies", "first_fit"]) == 0
        out = capsys.readouterr().out
        assert "placement policy vs fleet-wide vIRQ" in out
        assert "first_fit" in out

    def test_fleet_json_is_sorted_and_parseable(self, capsys):
        import json as json_module

        assert main(self._TINY + ["--policies", "random,first_fit",
                                  "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert sorted(payload["policies"]) == ["first_fit", "random"]
        assert "checks" in payload

    def test_unknown_policy_exits_two(self, capsys):
        assert main(self._TINY + ["--policies", "warp"]) == 2
        assert "unknown placement policy" in capsys.readouterr().err
