"""Unit tests for the pv-qspinlock model (lock object level)."""

import pytest

from repro.errors import GuestError
from repro.guest.spinlock import (
    DENTRY,
    PAGE_ALLOC,
    PARKED,
    SPINNING,
    STANDARD_CLASSES,
    WAITING,
    LockClass,
    SpinLock,
)


class _FakeVcpu:
    """Minimal vCPU double recording notifications."""

    def __init__(self, name):
        self.name = name
        self.notifications = []

    def notify(self, cause):
        self.notifications.append(cause)

    def __repr__(self):
        return self.name


class _FakeKernel:
    def __init__(self):
        self.kicked = []

    def pv_kick(self, vcpu):
        self.kicked.append(vcpu)


@pytest.fixture
def lock():
    return SpinLock("page_alloc", PAGE_ALLOC, kernel=_FakeKernel())


class TestFastPath:
    def test_try_acquire_free_lock(self, lock):
        vcpu = _FakeVcpu("a")
        assert lock.try_acquire(vcpu)
        assert lock.owned_by(vcpu)
        assert lock.acquisitions == 1

    def test_try_acquire_held_lock_fails(self, lock):
        a, b = _FakeVcpu("a"), _FakeVcpu("b")
        lock.try_acquire(a)
        assert not lock.try_acquire(b)

    def test_try_acquire_fails_with_queued_waiters(self, lock):
        a, b, c = (_FakeVcpu(n) for n in "abc")
        lock.try_acquire(a)
        lock.add_waiter(b)
        lock.release(a)
        # b was granted; c must not steal via the fast path.
        assert not lock.try_acquire(c)

    def test_release_unheld_rejected(self, lock):
        with pytest.raises(GuestError):
            lock.release(_FakeVcpu("a"))

    def test_release_by_non_holder_rejected(self, lock):
        a, b = _FakeVcpu("a"), _FakeVcpu("b")
        lock.try_acquire(a)
        with pytest.raises(GuestError):
            lock.release(b)

    def test_uncontended_release_leaves_lock_free(self, lock):
        a = _FakeVcpu("a")
        lock.try_acquire(a)
        assert lock.release(a) is None
        assert not lock.held


class TestHandoff:
    def test_grant_to_spinning_waiter_notifies(self, lock):
        a, b = _FakeVcpu("a"), _FakeVcpu("b")
        lock.try_acquire(a)
        waiter = lock.add_waiter(b)
        waiter.state = SPINNING
        grantee = lock.release(a)
        assert grantee is b
        assert lock.owned_by(b)
        assert b.notifications == [("lock_granted", lock)]

    def test_grant_to_parked_waiter_kicks(self, lock):
        a, b = _FakeVcpu("a"), _FakeVcpu("b")
        lock.try_acquire(a)
        lock.add_waiter(b).state = PARKED
        lock.release(a)
        assert lock.kernel.kicked == [b]
        assert b.notifications == []

    def test_spinning_waiter_preferred_over_parked_head(self, lock):
        a, head, spinner = (_FakeVcpu(n) for n in ("a", "head", "spin"))
        lock.try_acquire(a)
        lock.add_waiter(head).state = PARKED
        lock.add_waiter(spinner).state = SPINNING
        assert lock.release(a) is spinner

    def test_parked_preferred_over_waiting_head(self, lock):
        a, head, parked = (_FakeVcpu(n) for n in ("a", "head", "park"))
        lock.try_acquire(a)
        lock.add_waiter(head).state = WAITING
        lock.add_waiter(parked).state = PARKED
        assert lock.release(a) is parked
        assert lock.kernel.kicked == [parked]

    def test_waiting_head_granted_as_last_resort(self, lock):
        a, head = _FakeVcpu("a"), _FakeVcpu("head")
        lock.try_acquire(a)
        lock.add_waiter(head).state = WAITING
        assert lock.release(a) is head
        # Still kicked (no-op for a runnable vCPU, as in Xen).
        assert lock.kernel.kicked == [head]

    def test_finish_grant_completes_acquisition(self, lock):
        a, b = _FakeVcpu("a"), _FakeVcpu("b")
        lock.try_acquire(a)
        lock.add_waiter(b).state = SPINNING
        lock.release(a)
        assert lock.granted_to(b)
        lock.finish_grant(b)
        assert lock.owned_by(b)
        assert lock.waiter_count() == 0
        assert lock.acquisitions == 2

    def test_finish_grant_without_grant_rejected(self, lock):
        b = _FakeVcpu("b")
        lock.add_waiter(b)
        with pytest.raises(GuestError):
            lock.finish_grant(b)

    def test_fifo_among_same_state_waiters(self, lock):
        a, b, c = (_FakeVcpu(n) for n in "abc")
        lock.try_acquire(a)
        lock.add_waiter(b).state = SPINNING
        lock.add_waiter(c).state = SPINNING
        assert lock.release(a) is b

    def test_add_waiter_idempotent(self, lock):
        b = _FakeVcpu("b")
        first = lock.add_waiter(b)
        second = lock.add_waiter(b)
        assert first is second
        assert lock.waiter_count() == 1
        assert lock.contended == 1

    def test_abandon_removes_waiter(self, lock):
        b = _FakeVcpu("b")
        lock.add_waiter(b)
        lock.abandon(b)
        assert lock.waiter_count() == 0

    def test_handoff_counter(self, lock):
        a, b = _FakeVcpu("a"), _FakeVcpu("b")
        lock.try_acquire(a)
        lock.add_waiter(b).state = SPINNING
        lock.release(a)
        assert lock.handoffs == 1


class TestLockClasses:
    def test_standard_classes_have_table3_symbols(self):
        from repro.core.whitelist import is_critical

        for lock_class in STANDARD_CLASSES:
            assert is_critical(lock_class.cs_symbol), lock_class
            assert is_critical(lock_class.unlock_symbol), lock_class

    def test_lock_class_is_hashable_value_object(self):
        assert DENTRY == LockClass("dentry", "__raw_spin_unlock", "__raw_spin_unlock")
        assert hash(DENTRY) == hash(LockClass("dentry", "__raw_spin_unlock", "__raw_spin_unlock"))
