"""Tests for the reader-writer semaphore model."""

import pytest

from repro.errors import GuestError
from repro.guest.actions import Compute, Emit
from repro.guest.rwsem import READ, WRITE, RwSemaphore
from repro.sim.time import ms, us

from helpers import make_domain, make_hv, spawn_task


class _Task:
    def __init__(self, name):
        self.name = name


def _drain(gen):
    """Exhaust a composite helper that should not sleep (returns its
    yielded actions)."""
    return list(gen)


class TestRwSemUnit:
    def test_uncontended_read(self):
        sem = RwSemaphore("s")
        task = _Task("r")
        assert _drain(sem.acquire(task, READ)) == []
        assert sem.held_by(task)
        assert sem.acquisitions[READ] == 1

    def test_multiple_readers_share(self):
        sem = RwSemaphore("s")
        readers = [_Task("r%d" % i) for i in range(3)]
        for task in readers:
            _drain(sem.acquire(task, READ))
        assert len(sem.readers) == 3

    def test_writer_excludes_readers(self):
        sem = RwSemaphore("s")
        writer, reader = _Task("w"), _Task("r")
        _drain(sem.acquire(writer, WRITE))
        actions = list(sem.acquire(reader, READ))
        assert actions  # had to sleep
        assert sem.waiter_count() == 1

    def test_reader_excludes_writer(self):
        sem = RwSemaphore("s")
        reader, writer = _Task("r"), _Task("w")
        _drain(sem.acquire(reader, READ))
        assert list(sem.acquire(writer, WRITE))
        assert sem.waiter_count() == 1

    def test_fifo_fairness_blocks_readers_behind_writer(self):
        sem = RwSemaphore("s")
        holder, writer, late_reader = _Task("h"), _Task("w"), _Task("lr")
        _drain(sem.acquire(holder, READ))
        list(sem.acquire(writer, WRITE))       # queued writer
        actions = list(sem.acquire(late_reader, READ))
        assert actions                          # must queue behind writer
        assert sem.waiter_count() == 2

    def test_release_wakes_head_writer_only(self):
        sem = RwSemaphore("s")
        holder, writer, reader = _Task("h"), _Task("w"), _Task("r")
        _drain(sem.acquire(holder, READ))
        list(sem.acquire(writer, WRITE))
        list(sem.acquire(reader, READ))
        wake_actions = list(sem.release(holder))
        assert sem.writer is writer
        assert reader not in sem.readers
        assert any(a.symbol == "rwsem_wake" for a in wake_actions if isinstance(a, Compute))

    def test_release_wakes_run_of_readers(self):
        sem = RwSemaphore("s")
        writer = _Task("w")
        readers = [_Task("r%d" % i) for i in range(3)]
        _drain(sem.acquire(writer, WRITE))
        for task in readers:
            list(sem.acquire(task, READ))
        list(sem.release(writer))
        assert set(sem.readers) == set(readers)
        assert sem.waiter_count() == 0

    def test_release_unheld_rejected(self):
        sem = RwSemaphore("s")
        with pytest.raises(GuestError):
            list(sem.release(_Task("x")))

    def test_reacquire_rejected(self):
        sem = RwSemaphore("s")
        task = _Task("t")
        _drain(sem.acquire(task, READ))
        with pytest.raises(GuestError):
            list(sem.acquire(task, READ))

    def test_downgrade(self):
        sem = RwSemaphore("s")
        writer, reader = _Task("w"), _Task("r")
        _drain(sem.acquire(writer, WRITE))
        list(sem.acquire(reader, READ))
        list(sem.downgrade(writer))
        assert writer in sem.readers
        assert reader in sem.readers
        assert sem.downgrades == 1

    def test_downgrade_without_write_hold_rejected(self):
        sem = RwSemaphore("s")
        with pytest.raises(GuestError):
            list(sem.downgrade(_Task("x")))

    def test_abandon_waiter(self):
        sem = RwSemaphore("s")
        holder, waiter = _Task("h"), _Task("q")
        _drain(sem.acquire(holder, WRITE))
        list(sem.acquire(waiter, READ))
        sem.abandon(waiter)
        assert sem.waiter_count() == 0


class TestRwSemExecution:
    def test_writers_and_readers_make_progress(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        sem = domain.kernel.rwsem("mmap_sem")
        done = {"read": 0, "write": 0}

        def reader_program(task_box):
            def gen():
                task = task_box[0]
                while True:
                    yield from sem.read_section(task, us(2))
                    yield Compute(us(20))
                    done["read"] += 1

            return gen()

        def writer_program(task_box):
            def gen():
                task = task_box[0]
                while True:
                    yield from sem.write_section(task, us(3))
                    yield Compute(us(50))
                    done["write"] += 1

            return gen()

        box_r, box_w = [None], [None]
        box_r[0] = spawn_task(domain.vcpus[0], lambda: reader_program(box_r), "reader")
        box_w[0] = spawn_task(domain.vcpus[1], lambda: writer_program(box_w), "writer")
        hv.start()
        sim.run(until=ms(20))
        assert done["read"] > 50
        assert done["write"] > 50
        assert not sem.held or sem.writer is None or not sem.readers

    def test_exclusion_invariant_under_scheduling(self):
        sim, hv = make_hv(num_pcpus=2)
        domain = make_domain(hv, vcpus=2)
        sem = domain.kernel.rwsem("mmap_sem")
        state = {"readers": 0, "writers": 0, "violations": 0}

        def enter(mode):
            def _fn(_now):
                state[mode] += 1
                if state["writers"] > 1 or (state["writers"] and state["readers"]):
                    state["violations"] += 1

            return _fn

        def leave(mode):
            return lambda _now: state.__setitem__(mode, state[mode] - 1)

        def program(box, mode):
            def gen():
                task = box[0]
                while True:
                    yield from sem.acquire(task, READ if mode == "readers" else WRITE)
                    yield Emit(enter(mode))
                    yield Compute(us(3))
                    yield Emit(leave(mode))
                    yield from sem.release(task)
                    yield Compute(us(10))

            return gen()

        boxes = [[None], [None]]
        boxes[0][0] = spawn_task(domain.vcpus[0], lambda: program(boxes[0], "readers"), "r")
        boxes[1][0] = spawn_task(domain.vcpus[1], lambda: program(boxes[1], "writers"), "w")
        hv.start()
        sim.run(until=ms(30))
        assert state["violations"] == 0

    def test_kernel_rwsem_registry(self):
        _sim, hv = make_hv(num_pcpus=1)
        domain = make_domain(hv, vcpus=1)
        assert domain.kernel.rwsem("a") is domain.kernel.rwsem("a")
        assert domain.kernel.rwsem("a") is not domain.kernel.rwsem("b")
        assert len(domain.kernel.all_rwsems()) == 2
