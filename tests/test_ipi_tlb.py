"""Tests for IPI transactions and the TLB shootdown protocol."""

from repro.guest.ipi import KIND_RESCHED, KIND_TLB, IpiOp

from helpers import make_domain, make_hv, spawn_task, spin_program


class _FakeVcpu:
    def __init__(self, name="v"):
        self.name = name
        self.notifications = []

    def notify(self, cause):
        self.notifications.append(cause)


class TestIpiOp:
    def test_single_target_completion(self):
        src, dst = _FakeVcpu("s"), _FakeVcpu("d")
        op = IpiOp(KIND_RESCHED, src, [dst], started_at=100)
        assert not op.complete
        assert op.ack(dst, 250)
        assert op.complete
        assert op.latency == 150

    def test_initiator_notified_on_completion(self):
        src, dst = _FakeVcpu("s"), _FakeVcpu("d")
        op = IpiOp(KIND_RESCHED, src, [dst], 0)
        op.ack(dst, 10)
        assert src.notifications == [("ipi_complete", op)]

    def test_multi_target_requires_all_acks(self):
        src = _FakeVcpu("s")
        targets = [_FakeVcpu("t%d" % i) for i in range(3)]
        op = IpiOp(KIND_TLB, src, targets, 0)
        op.ack(targets[0], 5)
        op.ack(targets[1], 9)
        assert not op.complete
        op.ack(targets[2], 20)
        assert op.complete
        assert op.latency == 20

    def test_duplicate_ack_ignored(self):
        src, dst = _FakeVcpu("s"), _FakeVcpu("d")
        other = _FakeVcpu("o")
        op = IpiOp(KIND_TLB, src, [dst, other], 0)
        assert op.ack(dst, 5)
        assert not op.ack(dst, 6)
        assert not op.complete

    def test_non_target_ack_ignored(self):
        src, dst = _FakeVcpu("s"), _FakeVcpu("d")
        op = IpiOp(KIND_TLB, src, [dst], 0)
        assert not op.ack(_FakeVcpu("stranger"), 5)
        assert not op.complete

    def test_on_complete_callback(self):
        seen = []
        src, dst = _FakeVcpu("s"), _FakeVcpu("d")
        op = IpiOp(KIND_TLB, src, [dst], 0, on_complete=seen.append)
        op.ack(dst, 3)
        assert seen == [op]

    def test_ids_unique(self):
        a = IpiOp(KIND_TLB, None, [], 0)
        b = IpiOp(KIND_TLB, None, [], 0)
        assert a.id != b.id


class TestTlbManager:
    def test_targets_skip_initiator_and_lazy(self):
        _sim, hv, domain = _domain_with_vcpus()
        initiator = domain.vcpus[0]
        domain.vcpus[2].lazy_tlb = True
        targets = domain.kernel.tlb.shootdown_targets(initiator)
        assert initiator not in targets
        assert domain.vcpus[2] not in targets
        assert domain.vcpus[1] in targets

    def test_empty_target_set_completes_instantly(self):
        _sim, hv, domain = _domain_with_vcpus(vcpus=1)
        op = domain.kernel.tlb.start(domain.vcpus[0], now=50)
        assert op.complete
        assert domain.kernel.tlb.sync_latency.count == 1
        assert domain.kernel.tlb.sync_latency.mean == 0

    def test_start_counts_messages(self):
        sim, hv, domain = _domain_with_vcpus(vcpus=4)
        domain.kernel.tlb.start(domain.vcpus[0], now=0)
        assert domain.kernel.tlb.issued == 1
        assert domain.kernel.tlb.ipi_messages == 3

    def test_latency_recorded_on_completion(self):
        sim, hv, domain = _domain_with_vcpus(vcpus=3)
        # Give every vCPU something to run, then start the hypervisor so
        # the flush work actually executes.
        for vcpu in domain.vcpus:
            spawn_task(vcpu, spin_program(chunk_us=20))
        hv.start()
        sim.run(until=1_000_000)  # let everyone get on a pCPU
        op = domain.kernel.tlb.start(domain.vcpus[0], now=sim.now)
        sim.run(until=sim.now + 5_000_000)
        assert op.complete
        assert domain.kernel.tlb.sync_latency.count == 1
        # With all targets running, acks land within tens of µs.
        assert domain.kernel.tlb.sync_latency.mean < 200_000


def _domain_with_vcpus(vcpus=3):
    sim, hv = make_hv(num_pcpus=4)
    domain = make_domain(hv, vcpus=vcpus)
    return sim, hv, domain
